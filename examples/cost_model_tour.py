"""A guided numerical tour of the analytical cost model.

Evaluates every layer of the paper's cost model — the derived
quantities of Figure 3 and section 4.1, the cardinalities of section
4.2, the storage and tree shapes of sections 4.3/5.5, query costs of
sections 5.6–5.8, and the update costs of section 6 — on the paper's
own Figure 4/11 application profile, printing each quantity next to its
equation number (see docs/equation_map.md for the full formula→code
index).

Run:  python examples/cost_model_tour.py
"""

from repro.asr import Decomposition, Extension
from repro.costmodel import (
    QueryCostModel,
    StorageModel,
    SystemParameters,
    UpdateCostModel,
    yao,
)
from repro.costmodel.derived import derived_for
from repro.workload import FIG11_PROFILE


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    profile = FIG11_PROFILE
    system = SystemParameters()
    quantities = derived_for(profile)
    n = profile.n

    section("application profile (Figure 3)")
    print(f"n = {n}")
    print(f"c_i    = {tuple(int(x) for x in profile.c)}")
    print(f"d_i    = {tuple(int(x) for x in profile.d)}")
    print(f"fan_i  = {tuple(int(x) for x in profile.fan)}")
    print(f"size_i = {tuple(int(x) for x in profile.size)}")
    print(f"shar_i = {tuple(round(profile.shar_(i), 3) for i in range(n))}  (derived)")
    print(f"e_i    = {tuple(round(profile.e_(i), 1) for i in range(1, n + 1))}")
    print(f"B+fan  = {system.btree_fanout}  (= ⌊{system.page_size}/"
          f"({system.pp_size}+{system.oid_size})⌋)")

    section("derived probabilities (Eqs. 1-12)")
    print(f"P_A_i      (Eq. 1)  = {tuple(round(quantities.p_a(i), 3) for i in range(n))}")
    print(f"P_H_i      (Eq. 2)  = {tuple(round(quantities.p_h(i), 3) for i in range(1, n + 1))}")
    print(f"RefBy(0,i) (Eq. 6)  = {tuple(round(quantities.refby(0, i), 1) for i in range(1, n + 1))}")
    print(f"Ref(i,n)   (Eq. 8)  = {tuple(round(quantities.ref(i, n), 1) for i in range(n))}")
    print(f"path(0,j)  (Eq. 10) = {tuple(round(quantities.path(0, j), 1) for j in range(1, n + 1))}")
    print(f"P_lb(i-1,i)(Eq. 11) = {tuple(round(quantities.p_lb(i - 1, i), 3) for i in range(1, n + 1))}")
    print(f"P_Path(l)  (Eq. 38) = {tuple(round(quantities.p_path(l), 3) for l in range(n + 1))}")

    section("cardinalities (section 4.2) and storage (section 4.3)")
    storage = StorageModel(profile, system)
    nodec, binary = Decomposition.none(n), Decomposition.binary(n)
    header = f"{'ext':6s} {'#E (0,n)':>12s} {'bytes nodec':>12s} {'bytes binary':>13s}"
    print(header)
    for extension in Extension:
        print(
            f"{extension.value:6s} {storage.count(extension, 0, n):12.1f} "
            f"{storage.relation_bytes(extension, nodec):12.0f} "
            f"{storage.relation_bytes(extension, binary):13.0f}"
        )
    print(f"ats(0,n)  (Eq. 13) = {storage.ats(0, n):.0f} bytes/tuple")
    print(f"atpp(0,n) (Eq. 14) = {storage.atpp(0, n):.0f} tuples/page")
    print(f"ap_full   (Eq. 16) = {storage.ap(Extension.FULL, 0, n):.0f} pages; "
          f"ht (Eq. 19) = {storage.ht(Extension.FULL, 0, n):.0f}; "
          f"pg (Eq. 20) = {storage.pg(Extension.FULL, 0, n):.0f}")

    section("Yao's formula (section 5.6)")
    print(f"y(10, 10, 100)  = {yao(10, 10, 100):.0f} pages")
    print(f"y(1, 304, 1000) = {yao(1, 304, 1000):.0f} page")
    print(f"y(10**4, 304, 10**4) = {yao(10**4, 304, 10**4):.0f} pages (everything)")

    section("query costs (Eqs. 31-35)")
    querycost = QueryCostModel(profile, system, storage)
    print(f"Qnas(0,{n}, fw) (Eq. 31) = {querycost.qnas(0, n, 'fw'):8.1f} pages")
    print(f"Qnas(0,{n}, bw) (Eq. 32) = {querycost.qnas(0, n, 'bw'):8.1f} pages")
    for extension in Extension:
        via_nodec = querycost.q(extension, 0, n, "bw", nodec)
        via_binary = querycost.q(extension, 0, n, "bw", binary)
        print(f"Q_{extension.value:5s}(0,{n}, bw): nodec {via_nodec:6.1f}  "
              f"binary {via_binary:6.1f}")
    partial = querycost.q(Extension.CANONICAL, 0, n - 1, "bw", binary)
    print(f"Q_can(0,{n-1}, bw) falls back to the scan (Eq. 35): {partial:.1f}")

    section("update costs (section 6)")
    updatecost = UpdateCostModel(profile, system, storage, querycost)
    print(f"{'ext':6s} {'search(ins_3)':>14s} {'aup bi':>8s} {'total bi':>9s}")
    for extension in Extension:
        print(
            f"{extension.value:6s} "
            f"{updatecost.search(extension, 3, binary):14.1f} "
            f"{updatecost.aup(extension, 3, binary):8.1f} "
            f"{updatecost.total(extension, 3, binary):9.1f}"
        )
    print("(cf. Figure 11: left ≪ right; canonical always searches the data)")


if __name__ == "__main__":
    main()
