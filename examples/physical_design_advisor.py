"""Physical database design with the analytical cost model.

The paper's stated application (section 7): given an application profile
and an envisaged operation mix, compute the expected cost of *every*
(extension, decomposition) design and pick the best.  This example runs
the advisor over the paper's section 6.3.1/6.4.2 profile and mix,
reports the ranking at several update probabilities, locates the
break-even points the paper quotes, and shows the effect of a storage
budget.

Run:  python examples/physical_design_advisor.py
"""

from repro.asr import Decomposition, Extension
from repro.costmodel import DesignAdvisor, MixCostModel
from repro.workload import FIG11_PROFILE, FIG14_MIX


def main() -> None:
    profile, mix = FIG11_PROFILE, FIG14_MIX
    print(
        "application profile (paper section 6.3.1):\n"
        f"  c    = {tuple(int(x) for x in profile.c)}\n"
        f"  d    = {tuple(int(x) for x in profile.d)}\n"
        f"  fan  = {tuple(int(x) for x in profile.fan)}\n"
        f"  size = {tuple(int(x) for x in profile.size)}\n"
        f"operation mix: {mix}\n"
    )

    advisor = DesignAdvisor(profile)
    for p_up in (0.1, 0.5, 0.9):
        print(advisor.report(mix, p_up, top=5))
        print()

    model = MixCostModel(profile)
    binary = Decomposition.binary(profile.n)
    left_full = model.break_even(
        (Extension.LEFT, binary), (Extension.FULL, binary), mix
    )
    none_full = model.break_even(None, (Extension.FULL, binary), mix)
    print(
        "break-even update probabilities (binary decomposition):\n"
        f"  left-complete vs full: P_up* = {left_full:.3f}   (paper: < 0.3)\n"
        f"  no support   vs full: P_up* = {none_full:.3f}   (paper: 0.998)\n"
    )

    budget = 512 * 1024
    best = advisor.best(mix, p_up=0.2, max_storage_bytes=budget)
    print(f"best design within a {budget // 1024} KiB storage budget at P_up=0.2:")
    print(f"  {best.describe()}")


if __name__ == "__main__":
    main()
