"""Quickstart: the paper's robot example, end to end.

Builds the engineering schema of section 2.2 (Figure 1), populates the
exact extension shown in the paper, materializes an access support
relation over the path

    ROBOT.Arm.MountedTool.ManufacturedBy.Location

and answers Query 1 — "Find the Robots which use a Tool manufactured in
Utopia" — three ways: by SQL-like surface syntax, by a planned backward
query through the ASR, and by raw pointer-chasing, comparing the page
accesses of the supported and unsupported strategies.

Run:  python examples/quickstart.py
"""

from repro.asr import ASRManager, Decomposition, Extension
from repro.costmodel import QueryCostModel
from repro.gom import ObjectBase, PathExpression, Schema
from repro.query import BackwardQuery, Planner, QueryEvaluator, SelectExecutor
from repro.storage import ClusteredObjectStore
from repro.workload import measure_profile


def build_robot_world() -> tuple[ObjectBase, PathExpression]:
    """The schema and extension of Figure 1."""
    schema = Schema()
    schema.define_tuple("MANUFACTURER", {"Name": "STRING", "Location": "STRING"})
    schema.define_tuple("TOOL", {"Function": "STRING", "ManufacturedBy": "MANUFACTURER"})
    schema.define_tuple("ARM", {"Kinematics": "STRING", "MountedTool": "TOOL"})
    schema.define_tuple("ROBOT", {"Name": "STRING", "Arm": "ARM"})
    schema.define_set("ROBOT_SET", "ROBOT")
    schema.validate()

    db = ObjectBase(schema)
    robclone = db.new("MANUFACTURER", Name="RobClone", Location="Utopia")
    welding = db.new("TOOL", Function="welding", ManufacturedBy=robclone)
    gripping = db.new("TOOL", Function="gripping", ManufacturedBy=robclone)
    arm_r2d2 = db.new("ARM", Kinematics="6-DOF", MountedTool=welding)
    arm_x4d5 = db.new("ARM", Kinematics="SCARA", MountedTool=gripping)
    arm_robi = db.new("ARM", Kinematics="7-DOF", MountedTool=gripping)
    robots = [
        db.new("ROBOT", Name="R2D2", Arm=arm_r2d2),
        db.new("ROBOT", Name="X4D5", Arm=arm_x4d5),
        db.new("ROBOT", Name="Robi", Arm=arm_robi),
    ]
    db.set_var("OurRobots", db.new_set("ROBOT_SET", robots), "ROBOT_SET")

    path = PathExpression.parse(schema, "ROBOT.Arm.MountedTool.ManufacturedBy.Location")
    return db, path


def main() -> None:
    db, path = build_robot_world()
    print(f"path expression: {path}   (n={path.n}, linear={path.is_linear})")

    # Physical layer: cluster objects by type and index the path.
    store = ClusteredObjectStore(
        {"ROBOT": 120, "ARM": 200, "TOOL": 80, "MANUFACTURER": 60}
    )
    store.attach(db)
    manager = ASRManager(db)
    asr = manager.create(path, Extension.CANONICAL, Decomposition.binary(path.m))
    print(f"\naccess support relation ({asr.extension.value}, dec={asr.decomposition}):")
    print(asr.extension_relation.pretty())

    # 1) The paper's Query 1, through the SQL-like surface syntax.
    evaluator = QueryEvaluator(db, store)
    executor = SelectExecutor(db, Planner(manager), evaluator)
    report = executor.run(
        'select r.Name from r in OurRobots '
        'where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"'
    )
    print(f"\nQuery 1 -> {sorted(report.rows)}   [{report.strategy}]")

    # 2) The same backward query, supported vs unsupported, page counts.
    query = BackwardQuery(path, 0, path.n, target="Utopia")
    supported = evaluator.evaluate_supported(query, asr)
    unsupported = evaluator.evaluate_unsupported(query)
    assert supported.cells == unsupported.cells
    print(
        f"\nbackward query page accesses: supported={supported.page_reads} "
        f"vs unsupported={unsupported.page_reads}"
    )

    # 3) What the analytical model predicts for this tiny world.
    #    (measure_profile only works on generated chains; here we hand-build
    #    the profile from the schema statistics.)
    from repro.costmodel import ApplicationProfile

    profile = ApplicationProfile(
        c=(3, 3, 2, 1, 1),
        d=(3, 3, 2, 1),
        fan=(1, 1, 1, 1),
        size=(120, 200, 80, 60, 16),
    )
    model = QueryCostModel(profile)
    print(
        "analytical model: unsupported "
        f"{model.qnas(0, 4, 'bw'):.0f} pages, supported "
        f"{model.q(Extension.CANONICAL, 0, 4, 'bw', Decomposition.binary(4)):.0f} pages"
    )

    # Maintenance: re-point Robi's arm to a new tool from a new maker.
    acme = db.new("MANUFACTURER", Name="Acme", Location="Sirius")
    drill = db.new("TOOL", Function="drilling", ManufacturedBy=acme)
    robi = sorted(db.extent("ROBOT"), key=lambda o: o.value)[-1]
    db.set_attr(db.attr(robi, "Arm"), "MountedTool", drill)
    manager.check_consistency()
    report = executor.run(
        'select r.Name from r in OurRobots '
        'where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"'
    )
    print(f"\nafter re-tooling Robi -> {sorted(report.rows)} (index kept consistent)")


if __name__ == "__main__":
    main()
