"""The paper's Company example: general paths through set-valued attributes.

Rebuilds the schema and extension of Figure 2, derives the auxiliary
relations ``E_0, E_1, E_2`` of Definition 3.3 for the path

    Division.Manufactures.Composition.Name

prints all four extensions (matching the tables in section 3 of the
paper, including the NULL-padded partial paths and the binary
decomposition of the canonical extension), and answers Queries 2 and 3.

Run:  python examples/company_divisions.py
"""

from repro.asr import (
    ASRManager,
    Decomposition,
    Extension,
    auxiliary_relations,
    build_extension,
)
from repro.gom import ObjectBase, PathExpression, Schema
from repro.query import Planner, QueryEvaluator, SelectExecutor


def build_company_world() -> tuple[ObjectBase, PathExpression]:
    """The schema of section 2.3 and the extension of Figure 2."""
    schema = Schema()
    schema.define_tuple("BasePart", {"Name": "STRING", "Price": "DECIMAL"})
    schema.define_set("BasePartSET", "BasePart")
    schema.define_tuple("Product", {"Name": "STRING", "Composition": "BasePartSET"})
    schema.define_set("ProdSET", "Product")
    schema.define_tuple("Division", {"Name": "STRING", "Manufactures": "ProdSET"})
    schema.define_set("Company", "Division")
    schema.validate()

    db = ObjectBase(schema)
    door = db.new("BasePart", Name="Door", Price=1205.50)
    pepper = db.new("BasePart", Name="Pepper", Price=0.12)
    parts_sec = db.new_set("BasePartSET", [door])
    parts_sausage = db.new_set("BasePartSET", [pepper])
    sec = db.new("Product", Name="560 SEC", Composition=parts_sec)
    trak = db.new("Product", Name="MB Trak")  # Composition stays NULL
    sausage = db.new("Product", Name="Sausage", Composition=parts_sausage)
    prods_auto = db.new_set("ProdSET", [sec])
    prods_truck = db.new_set("ProdSET", [sec, trak])
    auto = db.new("Division", Name="Auto", Manufactures=prods_auto)
    truck = db.new("Division", Name="Truck", Manufactures=prods_truck)
    space = db.new("Division", Name="Space")  # Manufactures stays NULL
    db.set_var("Mercedes", db.new_set("Company", [auto, truck, space]), "Company")

    path = PathExpression.parse(schema, "Division.Manufactures.Composition.Name")
    return db, path


def main() -> None:
    db, path = build_company_world()
    print(
        f"path: {path}\n"
        f"n={path.n} attributes, k={path.k} set occurrences, "
        f"ASR arity m+1 = {path.arity}"
    )

    print("\nauxiliary relations (Definition 3.3):")
    for index, aux in enumerate(auxiliary_relations(db, path)):
        print(f"\nE_{index}:")
        print(aux.pretty())

    print("\nextensions (Definitions 3.4-3.7):")
    for extension in Extension:
        relation = build_extension(db, path, extension)
        print(f"\nE_{extension.value} ({len(relation)} tuples):")
        print(relation.pretty())

    print("\nbinary decomposition of the canonical extension (Definition 3.8):")
    canonical = build_extension(db, path, Extension.CANONICAL)
    for partition in Decomposition.binary(path.m).materialize(canonical):
        print()
        print(partition.pretty())

    # Queries 2 and 3 through the SQL-like surface.
    manager = ASRManager(db)
    manager.create(path, Extension.FULL, Decomposition.binary(path.m))
    executor = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
    query2 = (
        'select d.Name from d in Mercedes, b in d.Manufactures.Composition '
        'where b.Name = "Door"'
    )
    query3 = (
        'select d.Manufactures.Composition.Name from d in Mercedes '
        'where d.Name = "Auto"'
    )
    print(f"\nQuery 2 ({query2})\n  -> {sorted(executor.run(query2).rows)}")
    print(f"\nQuery 3 ({query3})\n  -> {sorted(executor.run(query3).rows)}")


if __name__ == "__main__":
    main()
