"""Regenerate every figure of the paper's evaluation as text tables.

One table per figure (4–9, 11–17), computed with the analytical cost
model over the paper's own parameter tables.  This is the human-browsable
form of what the benchmark harness asserts; see EXPERIMENTS.md for the
paper-vs-reproduction comparison.

Run:  python examples/paper_figures.py
"""

from repro.bench import figures
from repro.bench.render import format_series, format_table


def main() -> None:
    print(format_table(
        ["design", "KiB"], sorted(figures.fig04_sizes().items()),
        "Figure 4 — access support relation sizes",
    ))

    xs, series = figures.fig05_varying_d()
    print("\n" + format_series("d_i", xs, series,
                               "Figure 5 — sizes under varying d_i (KiB, no dec)"))

    print("\n" + format_table(
        ["design", "pages"], sorted(figures.fig06_backward_query().items()),
        "Figure 6 — Q_{0,4}(bw) query cost",
    ))

    xs, series = figures.fig07_object_size()
    print("\n" + format_series("size_i", xs, series,
                               "Figure 7 — Q_{0,4}(bw) under varying object size"))

    xs, series = figures.fig08_partial_query()
    print("\n" + format_series("d_i", xs, series,
                               "Figure 8 — Q_{0,3}(bw): which extensions support it"))

    xs, series = figures.fig09_fanout()
    print("\n" + format_series("fan_i", xs, series,
                               "Figure 9 — Q_{0,4}(bw) favouring canonical/left"))

    print("\n" + format_table(
        ["design", "pages"], sorted(figures.fig11_update_costs().items()),
        "Figure 11 — ins_3 update cost",
    ))

    print("\n" + format_table(
        ["design", "pages"], sorted(figures.fig12_update_costs().items()),
        "Figure 12 — ins_3 update cost (fan = 2,1,1,4)",
    ))

    xs, series = figures.fig13_update_sizes()
    print("\n" + format_series("size_i", xs, series,
                               "Figure 13 — ins_1 update cost vs object size"))

    xs, series = figures.fig14_opmix()
    print("\n" + format_series("P_up", xs, series,
                               "Figure 14 — normalized mix cost, binary dec"))
    print("break-evens:", figures.fig14_break_evens())

    xs, series = figures.fig15_opmix()
    print("\n" + format_series("P_up", xs, series,
                               "Figure 15 — normalized mix cost, dec (0,3,4)"))

    xs, series = figures.fig16_left_vs_full()
    print("\n" + format_series("P_up", xs, series,
                               "Figure 16 — left vs full (n = 5)"))

    xs, series = figures.fig17_right_vs_full()
    print("\n" + format_series("P_up", xs, series,
                               "Figure 17 — right vs full (n = 5)"))
    print(f"Figure 17 break-even right/(0,3,5) vs full/(0,3,5): "
          f"{figures.fig17_break_even():.4f} (paper: ~0.005)")


if __name__ == "__main__":
    main()
