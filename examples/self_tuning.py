"""Self-adjusting physical design and cross-path sharing.

Demonstrates the two features the paper sketches beyond its core
contribution:

* section 5.4 — two path expressions over the same tool/manufacturer
  sub-chain share one physically stored partition
  (:class:`~repro.asr.sharing.SharedASRBundle`);
* section 7 (future work) — a recorded usage pattern drives the cost
  model to (semi-)automatically re-tune an ASR's extension and
  decomposition (:class:`~repro.asr.adaptive.AdaptiveDesigner`).

Run:  python examples/self_tuning.py
"""

import random

from repro.asr import (
    ASRManager,
    AdaptiveDesigner,
    Decomposition,
    Extension,
    SharedASRBundle,
    WorkloadRecorder,
)
from repro.costmodel import ApplicationProfile
from repro.gom import ObjectBase, PathExpression, Schema
from repro.query import BackwardQuery, QueryEvaluator
from repro.workload import ChainGenerator


def sharing_demo() -> None:
    print("== cross-path sharing (section 5.4) ==")
    schema = Schema()
    schema.define_tuple("MANUFACTURER", {"Name": "STRING", "Location": "STRING"})
    schema.define_tuple("TOOL", {"Function": "STRING", "ManufacturedBy": "MANUFACTURER"})
    schema.define_tuple("ARM", {"MountedTool": "TOOL"})
    schema.define_tuple("ROBOT", {"Name": "STRING", "Arm": "ARM"})
    schema.define_tuple("WORKCELL", {"SpareTool": "TOOL"})
    schema.validate()

    db = ObjectBase(schema)
    rng = random.Random(2)
    makers = [
        db.new("MANUFACTURER", Name=f"M{i}", Location=rng.choice(["Utopia", "Sirius"]))
        for i in range(6)
    ]
    tools = [
        db.new("TOOL", Function=f"F{i}", ManufacturedBy=rng.choice(makers))
        for i in range(30)
    ]
    arms = [db.new("ARM", MountedTool=rng.choice(tools)) for _ in range(20)]
    for i in range(15):
        db.new("ROBOT", Name=f"R{i}", Arm=rng.choice(arms))
    for i in range(8):
        db.new("WORKCELL", SpareTool=rng.choice(tools))

    path_a = PathExpression.parse(schema, "ROBOT.Arm.MountedTool.ManufacturedBy.Location")
    path_b = PathExpression.parse(schema, "WORKCELL.SpareTool.ManufacturedBy.Location")
    bundle = SharedASRBundle.build(db, path_a, path_b, Extension.FULL)
    print(bundle.describe())

    manager = ASRManager(db)
    manager.register(bundle.asr_a)
    manager.register(bundle.asr_b)
    evaluator = QueryEvaluator(db)
    for path, asr in ((path_a, bundle.asr_a), (path_b, bundle.asr_b)):
        query = BackwardQuery(path, 0, path.n, target="Utopia")
        answer = evaluator.evaluate_supported(query, asr)
        assert answer.cells == evaluator.evaluate_unsupported(query).cells
        print(f"  {path}: {len(answer.cells)} origins reach 'Utopia'")
    db.set_attr(tools[0], "ManufacturedBy", makers[-1])
    bundle.consistency_check(db)
    print("  one update applied; shared store still exact\n")


def adaptive_demo() -> None:
    print("== self-adjusting physical design (section 7) ==")
    profile = ApplicationProfile(
        c=(40, 80, 160, 320),
        d=(36, 64, 128),
        fan=(2, 2, 2),
        size=(400, 300, 200, 100),
    )
    generated = ChainGenerator(seed=21).generate(profile)
    db, path = generated.db, generated.path
    manager = ASRManager(db)
    sizes = {f"T{i}": int(profile.size[i]) for i in range(4)}

    # Start with a deliberately poor choice for the workload to come.
    asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
    print(f"initial design: {asr.extension.value}, dec={asr.decomposition}")

    recorder = WorkloadRecorder(path)
    recorder.attach(db)
    rng = random.Random(22)
    for _ in range(120):
        recorder.record_query(0, 2, "bw")  # prefix query RIGHT cannot serve
    for _ in range(30):
        recorder.record_query(0, 3, "bw")
    for _ in range(6):
        owner = rng.choice(generated.layers[0])
        collection = db.attr(owner, "A")
        if collection:
            db.set_insert(collection, rng.choice(generated.layers[1]))

    mix, p_up = recorder.to_mix()
    print(f"recorded workload: {mix} at P_up={p_up:.3f}")
    designer = AdaptiveDesigner(manager, asr, recorder, sizes)
    decision = designer.retune()
    print(f"decision: {decision.describe()}")
    print(
        f"new design: {designer.asr.extension.value}, "
        f"dec={designer.asr.decomposition}"
    )
    manager.check_consistency()
    print("index consistent after re-materialization")


if __name__ == "__main__":
    sharing_demo()
    adaptive_demo()
