"""Incremental index maintenance under a live update stream.

Generates a synthetic chain world, registers one ASR per extension, then
replays a mixed update stream — attribute re-assignments, set inserts
and removals, object deletions — while the :class:`ASRManager` keeps all
four extensions consistent incrementally.  After every batch the example
verifies the ASRs against a from-scratch rebuild and reports what the
analytical model predicts an ``ins_i`` costs for each design.

Run:  python examples/index_maintenance.py
"""

import random

from repro.asr import ASRManager, Decomposition, Extension
from repro.costmodel import ApplicationProfile, UpdateCostModel
from repro.workload import ChainGenerator, measure_profile

PROFILE = ApplicationProfile(
    c=(30, 60, 120, 240),
    d=(27, 48, 96),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)


def main() -> None:
    generated = ChainGenerator(seed=7).generate(PROFILE)
    db, path = generated.db, generated.path
    manager = ASRManager(db)
    binary = Decomposition.binary(path.m)
    asrs = {extension: manager.create(path, extension, binary) for extension in Extension}
    print(f"indexed path: {path} with {len(asrs)} extensions, dec={binary}")
    for extension, asr in asrs.items():
        print(f"  {extension.value:5s}: {asr.tuple_count:5d} tuples, "
              f"{asr.total_pages} data pages")

    rng = random.Random(13)
    layers = generated.layers
    for batch in range(1, 4):
        for _ in range(40):
            roll = rng.random()
            level = rng.randrange(path.n)
            owner = rng.choice(layers[level])
            if owner not in db:
                continue
            if roll < 0.4:
                # Re-point the owner at a fresh collection.
                target = rng.choice(layers[level + 1])
                if target not in db:
                    continue
                collection = db.new_set(f"SET_T{level + 1}", [target])
                db.set_attr(owner, "A", collection)
            elif roll < 0.7:
                value = db.attr(owner, "A")
                target = rng.choice(layers[level + 1])
                if value and target in db:
                    db.set_insert(value, target)
            elif roll < 0.9:
                value = db.attr(owner, "A")
                if value:
                    members = list(db.members(value))
                    if members:
                        db.set_remove(value, rng.choice(members))
            else:
                victim = rng.choice(layers[1])
                if victim in db:
                    db.delete(victim)
        manager.check_consistency()
        print(f"batch {batch}: 40 updates applied, all extensions consistent "
              f"(full extension now {asrs[Extension.FULL].tuple_count} tuples)")

    measured = measure_profile(generated)
    model = UpdateCostModel(measured)
    print("\nanalytical ins_1 maintenance cost on the *measured* profile:")
    for extension in Extension:
        cost = model.total(extension, 1, Decomposition.binary(measured.n))
        print(f"  {extension.value:5s}: {cost:8.1f} page accesses")


if __name__ == "__main__":
    main()
