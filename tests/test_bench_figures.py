"""Structural tests of the figure-series functions (small sweeps)."""

import pytest

from repro.bench import figures


class TestSeriesShapes:
    def test_fig04_keys(self):
        data = figures.fig04_sizes()
        assert set(data) == {
            f"{ext}/{layout}"
            for ext in ("can", "full", "left", "right")
            for layout in ("bi", "nodec")
        }
        assert all(value > 0 for value in data.values())

    def test_fig05_alignment(self):
        xs, series = figures.fig05_varying_d(ds=(2500, 10_000))
        assert len(xs) == 2
        for name, values in series.items():
            assert len(values) == 2, name

    def test_fig06_contains_baseline(self):
        data = figures.fig06_backward_query()
        assert "nosupport" in data
        assert len(data) == 9

    def test_fig07_custom_sweep(self):
        xs, series = figures.fig07_object_size(sizes=(150, 450))
        assert list(xs) == [150, 450]
        assert set(series) == {"nosupport", "can", "full", "left", "right"}

    def test_fig08_series_names(self):
        _xs, series = figures.fig08_partial_query(ds=(100,))
        assert "can (any dec)" in series and "full/nodec" in series

    def test_fig09_alignment(self):
        xs, series = figures.fig09_fanout(fans=(10, 100))
        assert all(len(v) == 2 for v in series.values())

    def test_fig11_parametrized_position(self):
        data0 = figures.fig11_update_costs(i=0)
        data3 = figures.fig11_update_costs(i=3)
        assert data0 != data3

    def test_fig13_alignment(self):
        xs, series = figures.fig13_update_sizes(sizes=(100, 800))
        assert set(series) == {"can", "full", "left", "right"}

    def test_fig14_nosupport_normalized_to_one(self):
        _xs, series = figures.fig14_opmix(p_ups=(0.2, 0.8))
        assert series["nosupport"] == [1.0, 1.0]

    def test_fig15_design_labels(self):
        _xs, series = figures.fig15_opmix(p_ups=(0.5,))
        assert any("(0,3,4)" in name for name in series if name != "nosupport")

    def test_fig16_and_17_design_counts(self):
        _xs, s16 = figures.fig16_left_vs_full(p_ups=(0.5,))
        _xs, s17 = figures.fig17_right_vs_full(p_ups=(0.5,))
        assert len([n for n in s16 if n != "nosupport"]) == 4
        assert len([n for n in s17 if n != "nosupport"]) == 4

    def test_break_even_helpers_types(self):
        points = figures.fig14_break_evens()
        assert set(points) == {"left_vs_full", "nosupport_vs_full"}
        value = figures.fig17_break_even()
        assert value is None or 0.0 <= value <= 1.0

    def test_all_series_positive(self):
        for xs, series in (
            figures.fig07_object_size(sizes=(200,)),
            figures.fig09_fanout(fans=(25,)),
            figures.fig13_update_sizes(sizes=(300,)),
        ):
            for name, values in series.items():
                assert all(value >= 0 for value in values), name
