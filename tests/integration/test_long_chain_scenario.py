"""End-to-end scenario on a longer (n = 5) generated chain.

Exercises everything at once: generation, all four extensions under
several decompositions, every admissible query range, value-range
queries, an update stream with deletions, persistence round-trip, and
the adaptive designer — the kind of composite workload a downstream user
would actually run.
"""

import random

import pytest

from repro.asr import (
    ASRManager,
    AdaptiveDesigner,
    Decomposition,
    Extension,
    WorkloadRecorder,
)
from repro.costmodel import ApplicationProfile, profile_from_database
from repro.gom.serialization import dump_object_base, load_object_base
from repro.gom.traversal import origins_reaching, reachable_terminals
from repro.query import BackwardQuery, ForwardQuery, QueryEvaluator
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(15, 30, 60, 90, 120, 150),
    d=(13, 24, 48, 70, 100),
    fan=(2, 2, 1, 2, 2),  # includes one single-valued step
    size=(500, 400, 300, 300, 200, 100),
)


@pytest.fixture(scope="module")
def world():
    generated = ChainGenerator(seed=47).generate(PROFILE)
    manager = ASRManager(generated.db)
    decs = [
        Decomposition.binary(generated.path.m),
        Decomposition.none(generated.path.m),
    ]
    asrs = [
        manager.create(generated.path, extension, dec)
        for extension in Extension
        for dec in decs
    ]
    return generated, manager, asrs


class TestLongChain:
    def test_path_shape(self, world):
        generated, _manager, _asrs = world
        assert generated.path.n == 5
        assert generated.path.k == 4  # four set-valued steps
        assert generated.path.m == 9

    def test_all_admissible_query_ranges(self, world):
        generated, _manager, asrs = world
        db, path = generated.db, generated.path
        evaluator = QueryEvaluator(db, generated.store)
        ranges = [(i, j) for i in range(5) for j in range(i + 1, 6)]
        for i, j in ranges:
            start = generated.layers[i][0]
            fq = ForwardQuery(path, i, j, start=start)
            forward_oracle = reachable_terminals(db, path, start, i, j)
            target = generated.layers[j][0]
            bq = BackwardQuery(path, i, j, target=target)
            backward_oracle = origins_reaching(db, path, target, i, j)
            assert evaluator.evaluate_unsupported(fq).cells == forward_oracle
            assert evaluator.evaluate_unsupported(bq).cells == backward_oracle
            for asr in asrs:
                if asr.supports_query(i, j):
                    assert (
                        evaluator.evaluate_supported(fq, asr).cells == forward_oracle
                    ), (asr.extension, i, j)
                    assert (
                        evaluator.evaluate_supported(bq, asr).cells == backward_oracle
                    ), (asr.extension, i, j)

    def test_update_stream_with_deletions(self, world):
        generated, manager, _asrs = world
        db = generated.db
        rng = random.Random(51)
        layers = generated.layers
        for _ in range(60):
            roll = rng.random()
            level = rng.randrange(5)
            owner = rng.choice(layers[level])
            if owner not in db:
                continue
            if roll < 0.5:
                value = db.attr(owner, "A")
                target = rng.choice(layers[level + 1])
                if value and target in db and db.schema.lookup(
                    db.type_of(value)
                ).is_set():
                    db.set_insert(value, target)
            elif roll < 0.9:
                target = rng.choice(layers[level + 1])
                if target not in db:
                    continue
                step = generated.path.steps[level]
                if step.is_set_occurrence:
                    db.set_attr(owner, "A", db.new_set(f"SET_T{level + 1}", [target]))
                else:
                    db.set_attr(owner, "A", target)
            else:
                victim = rng.choice(layers[rng.randrange(1, 5)])
                if victim in db:
                    db.delete(victim)
        manager.check_consistency()

    def test_persistence_round_trip(self, world):
        generated, manager, _asrs = world
        data = dump_object_base(generated.db, manager.asrs[:2])
        loaded_db, loaded_asrs = load_object_base(data)
        assert len(loaded_db) == len(generated.db)
        for original, restored in zip(manager.asrs[:2], loaded_asrs):
            assert restored.extension is original.extension
            assert (
                restored.extension_relation.rows == original.extension_relation.rows
            )

    def test_manager_report(self, world):
        _generated, manager, _asrs = world
        report = manager.report()
        assert "access support relation" in report
        assert report.count("T0.A.A.A.A.A") == len(manager.asrs)

    def test_adaptive_on_long_chain(self, world):
        generated, manager, _asrs = world
        sizes = {f"T{i}": int(PROFILE.size[i]) for i in range(6)}
        asr = manager.create(
            generated.path, Extension.CANONICAL, Decomposition.binary(generated.path.m)
        )
        recorder = WorkloadRecorder(generated.path)
        recorder.record_query(0, 3, "bw", count=40)  # canonical cannot serve
        recorder.record_update(4, count=1)
        designer = AdaptiveDesigner(manager, asr, recorder, sizes)
        decision = designer.retune()
        assert decision.retuned
        assert designer.asr.extension in (Extension.FULL, Extension.LEFT)
        manager.check_consistency()

    def test_measured_profile_well_formed(self, world):
        generated, _manager, _asrs = world
        measured = profile_from_database(
            generated.db, generated.path, default_size=120
        )
        assert measured.n == 5
        for i in range(5):
            assert 0 <= measured.d[i] <= measured.c[i]
