"""Scale sanity: the stack handles thousands of objects briskly."""

import time

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.costmodel import ApplicationProfile, partition_cardinality
from repro.query import BackwardQuery, QueryEvaluator
from repro.workload import ChainGenerator, measure_profile

SCALE_PROFILE = ApplicationProfile(
    c=(300, 900, 2700, 8100),
    d=(270, 800, 2500),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)


@pytest.mark.slow
def test_ten_thousand_object_world():
    started = time.monotonic()
    generated = ChainGenerator(seed=89).generate(SCALE_PROFILE)
    assert len(generated.db) > 12_000  # objects + collection instances
    manager = ASRManager(generated.db)
    asr = manager.create(
        generated.path, Extension.FULL, Decomposition.binary(generated.path.m)
    )
    assert asr.tuple_count > 2_000
    evaluator = QueryEvaluator(generated.db, generated.store)
    target = generated.layers[3][0]
    query = BackwardQuery(generated.path, 0, 3, target=target)
    supported = evaluator.evaluate_supported(query, asr)
    unsupported = evaluator.evaluate_unsupported(query)
    assert supported.cells == unsupported.cells
    assert supported.page_reads < unsupported.page_reads / 10
    # Cardinality model still within band at this scale.
    measured = measure_profile(generated)
    estimate = partition_cardinality(measured, Extension.FULL, 0, 3)
    assert abs(estimate - asr.tuple_count) / asr.tuple_count < 0.35
    # Incremental maintenance stays responsive.
    from repro.gom import NULL

    collection = next(
        value
        for oid in generated.layers[2]
        if (value := generated.db.attr(oid, "A")) is not NULL
    )
    before = time.monotonic()
    generated.db.set_insert(collection, generated.layers[3][1])
    assert time.monotonic() - before < 2.0
    assert time.monotonic() - started < 60.0


@pytest.mark.parametrize("seed", [5, 6])
@pytest.mark.parametrize(
    "shape",
    [
        ApplicationProfile(
            c=(40, 120, 360), d=(36, 110), fan=(3, 3), size=(300, 200, 100)
        ),
        ApplicationProfile(
            c=(100, 100, 100), d=(60, 60), fan=(1, 2), size=(300, 200, 100)
        ),
    ],
)
def test_model_tracks_simulator_across_shapes(seed, shape):
    """Multi-seed, multi-shape model-vs-simulator agreement."""
    generated = ChainGenerator(seed=seed).generate(shape)
    measured = measure_profile(generated)
    from repro.costmodel import QueryCostModel

    evaluator = QueryEvaluator(generated.db, generated.store)
    model = QueryCostModel(measured)
    target = generated.layers[measured.n][0]
    query = BackwardQuery(generated.path, 0, measured.n, target=target)
    measured_pages = evaluator.evaluate_unsupported(query).page_reads
    predicted = model.qnas(0, measured.n, "bw")
    assert 0.45 <= predicted / max(measured_pages, 1) <= 2.2, (
        seed,
        shape.c,
        measured_pages,
        predicted,
    )
