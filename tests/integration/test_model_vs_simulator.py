"""Cross-validation: analytical model vs the executable storage simulator."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension, build_extension
from repro.costmodel import (
    ApplicationProfile,
    QueryCostModel,
    StorageModel,
    partition_cardinality,
)
from repro.query import BackwardQuery, ForwardQuery, QueryEvaluator
from repro.workload import ChainGenerator, measure_profile

PROFILE = ApplicationProfile(
    c=(50, 100, 200, 400),
    d=(45, 85, 170),
    fan=(2, 2, 2),
    size=(500, 400, 300, 100),
)


@pytest.fixture(scope="module")
def world():
    generated = ChainGenerator(seed=41).generate(PROFILE)
    measured = measure_profile(generated)
    return generated, measured


class TestCardinalities:
    def test_every_extension_within_band(self, world):
        generated, measured = world
        for extension in Extension:
            actual = len(build_extension(generated.db, generated.path, extension))
            estimate = partition_cardinality(measured, extension, 0, measured.n)
            assert actual > 0
            assert abs(estimate - actual) / actual < 0.4, (extension, actual, estimate)

    def test_partition_cardinalities_within_band(self, world):
        generated, measured = world
        full = build_extension(generated.db, generated.path, Extension.FULL)
        path = generated.path
        for i, j in [(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)]:
            actual = len(full.slice(path.column_of(i), path.column_of(j)))
            estimate = partition_cardinality(measured, Extension.FULL, i, j)
            assert abs(estimate - actual) / max(actual, 1) < 0.6, (i, j)


class TestStorageSizes:
    def test_page_counts_close(self, world):
        generated, measured = world
        storage = StorageModel(measured)
        manager = ASRManager(generated.db)
        # The analytical model drops collection-OID columns (m = n), so
        # compare against an ASR over the same column count by checking
        # tuple counts rather than raw bytes.
        for extension in Extension:
            asr = manager.create(generated.path, extension)
            estimate = storage.count(extension, 0, measured.n)
            assert abs(estimate - asr.tuple_count) / asr.tuple_count < 0.4


class TestQueryCosts:
    def test_backward_scan_pages(self, world):
        generated, measured = world
        evaluator = QueryEvaluator(generated.db, generated.store)
        model = QueryCostModel(measured)
        targets = generated.layers[measured.n][:5]
        measured_pages = []
        for target in targets:
            query = BackwardQuery(generated.path, 0, measured.n, target=target)
            measured_pages.append(evaluator.evaluate_unsupported(query).page_reads)
        average = sum(measured_pages) / len(measured_pages)
        predicted = model.qnas(0, measured.n, "bw")
        assert 0.5 <= predicted / average <= 2.0

    def test_forward_traverse_pages(self, world):
        generated, measured = world
        evaluator = QueryEvaluator(generated.db, generated.store)
        model = QueryCostModel(measured)
        predicted = model.qnas(0, measured.n, "fw")
        pages = []
        for start in generated.layers[0][:15]:
            query = ForwardQuery(generated.path, 0, measured.n, start=start)
            result = evaluator.evaluate_unsupported(query)
            if result.cells:
                pages.append(result.page_reads)
        average = sum(pages) / len(pages)
        assert 0.4 <= predicted / average <= 2.5

    def test_supported_query_order_of_magnitude(self, world):
        generated, measured = world
        manager = ASRManager(generated.db)
        asr = manager.create(
            generated.path, Extension.FULL, Decomposition.binary(generated.path.m)
        )
        evaluator = QueryEvaluator(generated.db, generated.store)
        model = QueryCostModel(measured)
        target = generated.layers[measured.n][0]
        query = BackwardQuery(generated.path, 0, measured.n, target=target)
        supported = evaluator.evaluate_supported(query, asr)
        predicted = model.q(
            Extension.FULL, 0, measured.n, "bw", Decomposition.binary(measured.n)
        )
        # Both tiny relative to the unsupported scan.
        unsupported = evaluator.evaluate_unsupported(query)
        assert supported.page_reads < unsupported.page_reads / 3
        assert predicted < model.qnas(0, measured.n, "bw") / 3
        # And within a small constant factor of each other.
        assert supported.page_reads <= 4 * predicted + 4
        assert predicted <= 4 * supported.page_reads + 4
