"""Acceptance: the complete paper story in one linear scenario.

A single narrative test a newcomer can read top to bottom — schema
definition, population, all four extensions, the paper's queries, the
cost model's headline predictions, index maintenance, persistence, and
self-tuning — asserting at each step what README.md promises.
"""

from repro import (
    ApplicationProfile,
    ASRManager,
    BackwardQuery,
    Decomposition,
    DesignAdvisor,
    Extension,
    NULL,
    ObjectBase,
    PathExpression,
    QueryCostModel,
    QueryEvaluator,
    Schema,
    SelectExecutor,
    build_extension,
)
from repro.asr import AdaptiveDesigner, WorkloadRecorder
from repro.costmodel import OperationMix, QuerySpec, UpdateSpec
from repro.gom.serialization import dump_object_base, load_object_base
from repro.query import Planner


def test_full_story(tmp_path):
    # 1. Define the engineering schema of section 2.3 and populate it.
    schema = Schema()
    schema.define_tuple("BasePart", {"Name": "STRING", "Price": "DECIMAL"})
    schema.define_set("BasePartSET", "BasePart")
    schema.define_tuple("Product", {"Name": "STRING", "Composition": "BasePartSET"})
    schema.define_set("ProdSET", "Product")
    schema.define_tuple("Division", {"Name": "STRING", "Manufactures": "ProdSET"})
    schema.define_set("Company", "Division")
    schema.validate()

    db = ObjectBase(schema)
    door = db.new("BasePart", Name="Door", Price=1205.50)
    pepper = db.new("BasePart", Name="Pepper", Price=0.12)
    sec = db.new("Product", Name="560 SEC",
                 Composition=db.new_set("BasePartSET", [door]))
    trak = db.new("Product", Name="MB Trak")
    sausage = db.new("Product", Name="Sausage",
                     Composition=db.new_set("BasePartSET", [pepper]))
    auto = db.new("Division", Name="Auto",
                  Manufactures=db.new_set("ProdSET", [sec]))
    truck = db.new("Division", Name="Truck",
                   Manufactures=db.new_set("ProdSET", [sec, trak]))
    space = db.new("Division", Name="Space")
    db.set_var("Mercedes", db.new_set("Company", [auto, truck, space]), "Company")

    # 2. The path expression and its four extensions (section 3).
    path = PathExpression.parse(schema, "Division.Manufactures.Composition.Name")
    assert (path.n, path.k, path.m) == (3, 2, 5)
    sizes = {
        extension: len(build_extension(db, path, extension))
        for extension in Extension
    }
    assert sizes[Extension.CANONICAL] <= sizes[Extension.LEFT] <= sizes[Extension.FULL]
    assert sizes[Extension.CANONICAL] <= sizes[Extension.RIGHT] <= sizes[Extension.FULL]

    # 3. Index the path; answer Query 2 through it.
    manager = ASRManager(db)
    asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
    executor = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
    report = executor.run(
        'select d.Name from d in Mercedes '
        'where d.Manufactures.Composition.Name = "Door"'
    )
    assert sorted(report.rows) == [("Auto",), ("Truck",)]
    assert report.strategy.startswith("asr-backward")

    # 4. Updates flow into the index automatically (section 6).
    db.set_insert(db.attr(trak, "Composition") or _give_set(db, trak), door)
    manager.check_consistency()
    assert sorted(
        executor.run(
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Name = "Door"'
        ).rows
    ) == [("Auto",), ("Truck",)]

    # 5. The cost model prices the design space (sections 4-6).
    profile = ApplicationProfile(
        c=(1000, 5000, 10000, 50000),
        d=(900, 4000, 8000),
        fan=(2, 2, 3),
        size=(500, 400, 300, 100),
    )
    model = QueryCostModel(profile)
    scan = model.qnas(0, 3, "bw")
    supported = model.q(Extension.FULL, 0, 3, "bw", Decomposition.binary(3))
    assert supported < scan / 10  # the paper's headline
    mix = OperationMix(
        queries=((1.0, QuerySpec(0, 3, "bw")),),
        updates=((1.0, UpdateSpec(2)),),
    )
    best = DesignAdvisor(profile).best(mix, p_up=0.1)
    assert best.extension is not None and best.normalized < 0.1

    # 6. Persistence round-trips the world and the ASR configuration.
    data = dump_object_base(db, [asr])
    loaded_db, loaded_asrs = load_object_base(data)
    assert len(loaded_db) == len(db)
    assert loaded_asrs[0].extension_relation.rows == asr.extension_relation.rows

    # 7. Self-tuning (section 7): a recorded workload re-designs the index.
    recorder = WorkloadRecorder(path)
    recorder.record_query(0, 3, "bw", count=50)
    recorder.record_update(2, count=2)
    designer = AdaptiveDesigner(
        manager, asr, recorder,
        {"Division": 500, "Product": 400, "BasePart": 300},
    )
    decision = designer.recommend()
    assert decision.best.extension is not None
    manager.check_consistency()


def _give_set(db, product):
    collection = db.new_set("BasePartSET")
    db.set_attr(product, "Composition", collection)
    return collection
