"""List-valued steps: the paper treats lists "analogous to sets" (§2.1).

Everything the set-occurrence machinery supports must also work when the
collection is a list: extension building, query parity, incremental
maintenance, and the nested-index baseline.
"""

import pytest

from repro.asr import ASRManager, Decomposition, Extension, build_extension
from repro.baselines import NestedAttributeIndex
from repro.gom import NULL, ObjectBase, PathExpression, Schema
from repro.gom.traversal import origins_reaching
from repro.query import BackwardQuery, QueryEvaluator


@pytest.fixture()
def playlist_world():
    schema = Schema()
    schema.define_tuple("Track", {"Title": "STRING"})
    schema.define_list("TrackLIST", "Track")
    schema.define_tuple("Playlist", {"Name": "STRING", "Tracks": "TrackLIST"})
    schema.validate()
    db = ObjectBase(schema)
    tracks = [db.new("Track", Title=f"T{i}") for i in range(6)]
    lists = [
        db.new_list("TrackLIST", [tracks[0], tracks[1], tracks[2]]),
        db.new_list("TrackLIST", [tracks[2], tracks[3]]),
        db.new_list("TrackLIST"),
    ]
    playlists = [
        db.new("Playlist", Name="morning", Tracks=lists[0]),
        db.new("Playlist", Name="evening", Tracks=lists[1]),
        db.new("Playlist", Name="empty", Tracks=lists[2]),
        db.new("Playlist", Name="unset"),
    ]
    path = PathExpression.parse(schema, "Playlist.Tracks.Title")
    return db, path, tracks, lists, playlists


class TestListExtensions:
    def test_path_shape(self, playlist_world):
        _db, path, *_ = playlist_world
        assert path.k == 1
        assert path.m == 3
        assert path.steps[0].collection_type == "TrackLIST"

    def test_full_extension_contents(self, playlist_world):
        db, path, tracks, lists, playlists = playlist_world
        full = build_extension(db, path, Extension.FULL)
        assert (playlists[0], lists[0], tracks[1], "T1") in full.rows
        # Empty-list rule mirrors the empty-set rule.
        assert (playlists[2], lists[2], NULL, NULL) in full.rows
        # Unset attribute: the playlist appears nowhere.
        assert not any(row[0] == playlists[3] for row in full.rows)

    def test_query_parity_all_designs(self, playlist_world):
        db, path, tracks, _lists, playlists = playlist_world
        manager = ASRManager(db)
        evaluator = QueryEvaluator(db)
        asrs = [
            manager.create(path, extension, dec)
            for extension in Extension
            for dec in (Decomposition.binary(path.m), Decomposition.none(path.m))
        ]
        query = BackwardQuery(path, 0, path.n, target="T2")
        oracle = origins_reaching(db, path, "T2")
        assert oracle == {playlists[0], playlists[1]}
        for asr in asrs:
            assert evaluator.evaluate_supported(query, asr).cells == oracle

    def test_maintenance_under_list_mutations(self, playlist_world):
        db, path, tracks, lists, playlists = playlist_world
        manager = ASRManager(db)
        for extension in Extension:
            manager.create(path, extension, Decomposition.binary(path.m))
        db.list_append(lists[2], tracks[5])  # empty list gains a member
        manager.check_consistency()
        db.list_append(lists[0], tracks[5])  # shared track across lists
        manager.check_consistency()
        db.set_attr(playlists[1], "Tracks", lists[0])  # list sharing
        manager.check_consistency()
        db.set_attr(tracks[5], "Title", "renamed")
        manager.check_consistency()
        db.delete(tracks[2])
        manager.check_consistency()

    def test_duplicate_list_entries_collapse_in_relations(self, playlist_world):
        db, path, tracks, lists, playlists = playlist_world
        db.list_append(lists[1], tracks[3])  # duplicate entry
        assert db.members(lists[1]).count(tracks[3]) == 2
        full = build_extension(db, path, Extension.FULL)
        matching = [
            row
            for row in full.rows
            if row[0] == playlists[1] and row[2] == tracks[3]
        ]
        assert len(matching) == 1  # relations are sets

    def test_nested_index_over_list_path(self, playlist_world):
        db, path, tracks, lists, playlists = playlist_world
        manager = ASRManager(db)
        index = NestedAttributeIndex.build(db, path)
        manager.register(index)
        assert index.lookup("T0") == {playlists[0]}
        db.list_append(lists[1], tracks[0])
        index.consistency_check(db)
        assert index.lookup("T0") == {playlists[0], playlists[1]}
