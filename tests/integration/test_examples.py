"""Every example script runs to completion and prints what it promises."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    out = io.StringIO()
    with redirect_stdout(out):
        spec.loader.exec_module(module)
        if hasattr(module, "main"):
            module.main()
        else:
            module.sharing_demo()
            module.adaptive_demo()
    return out.getvalue()


class TestExamples:
    def test_quickstart(self):
        text = run_example("quickstart")
        assert "Query 1 ->" in text
        assert "R2D2" in text
        assert "index kept consistent" in text

    def test_company_divisions(self):
        text = run_example("company_divisions")
        assert "E_can" in text
        assert "Pepper" in text
        assert "Query 2" in text and "Query 3" in text
        assert "('Auto',)" in text

    def test_physical_design_advisor(self):
        text = run_example("physical_design_advisor")
        assert "design ranking" in text
        assert "break-even" in text
        assert "storage budget" in text

    def test_index_maintenance(self):
        text = run_example("index_maintenance")
        assert "all extensions consistent" in text
        assert "page accesses" in text

    def test_self_tuning(self):
        text = run_example("self_tuning")
        assert "stored once" in text
        assert "switched to" in text or "kept current" in text

    def test_cost_model_tour(self):
        text = run_example("cost_model_tour")
        assert "Eq. 1" in text
        assert "Yao" in text
        assert "update costs" in text

    @pytest.mark.slow
    def test_paper_figures(self):
        text = run_example("paper_figures")
        assert "Figure 4" in text
        assert "Figure 17" in text
        assert "break-even" in text
