"""End-to-end reproduction of the paper's running examples (sections 2-3)."""

from repro.asr import ASRManager, Decomposition, Extension, build_extension
from repro.gom import NULL
from repro.query import (
    BackwardQuery,
    Planner,
    QueryEvaluator,
    SelectExecutor,
)


class TestSection2Queries:
    def test_query1_full_pipeline(self, robot_world):
        """Query 1 over the Figure 1 extension, via ASR."""
        db, path, objects = robot_world
        manager = ASRManager(db)
        manager.create(path, Extension.CANONICAL, Decomposition.binary(path.m))
        executor = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
        report = executor.run(
            'select r.Name from r in OurRobots '
            'where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"'
        )
        assert sorted(report.rows) == [("R2D2",), ("Robi",), ("X4D5",)]
        assert report.strategy.startswith("asr-backward")

    def test_query2_and_query3(self, company_world):
        db, path, _objects = company_world
        executor = SelectExecutor(db)
        assert sorted(
            executor.run(
                'select d.Name from d in Mercedes, b in d.Manufactures.Composition '
                'where b.Name = "Door"'
            ).rows
        ) == [("Auto",), ("Truck",)]
        assert executor.run(
            'select d.Manufactures.Composition.Name from d in Mercedes '
            'where d.Name = "Auto"'
        ).rows == [("Door",)]


class TestSection3Tables:
    """The extension tables printed in section 3 of the paper."""

    def test_canonical_table(self, company_world):
        db, path, o = company_world
        canonical = build_extension(db, path, Extension.CANONICAL)
        # "i1 i4 i6 i7 i8 Door" in the paper's numbering.
        assert (
            o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door"
        ) in canonical.rows
        assert all(
            all(cell is not NULL for cell in row) for row in canonical.rows
        )

    def test_full_table_has_both_stub_kinds(self, company_world):
        db, path, o = company_world
        full = build_extension(db, path, Extension.FULL)
        # "i2 i5 i9 NULL NULL NULL": started but incomplete.
        assert (o["truck"], o["prods_truck"], o["trak"], NULL, NULL, NULL) in full.rows
        # "NULL NULL i11 i13 i14 Pepper": complete on the right only.
        assert (
            NULL, NULL, o["sausage"], o["parts_sausage"], o["pepper"], "Pepper"
        ) in full.rows

    def test_left_table(self, company_world):
        db, path, o = company_world
        left = build_extension(db, path, Extension.LEFT)
        assert (o["truck"], o["prods_truck"], o["trak"], NULL, NULL, NULL) in left.rows
        assert not any(row[0] is NULL for row in left.rows)

    def test_right_table(self, company_world):
        db, path, o = company_world
        right = build_extension(db, path, Extension.RIGHT)
        assert (
            NULL, NULL, o["sausage"], o["parts_sausage"], o["pepper"], "Pepper"
        ) in right.rows
        assert not any(row[-1] is NULL for row in right.rows)

    def test_binary_decomposition_table(self, company_world):
        """The five binary partitions of E_can shown in section 3."""
        db, path, o = company_world
        canonical = build_extension(db, path, Extension.CANONICAL)
        partitions = Decomposition.binary(path.m).materialize(canonical)
        assert len(partitions) == 5
        assert (o["auto"], o["prods_auto"]) in partitions[0].rows
        assert (o["prods_auto"], o["sec"]) in partitions[1].rows
        assert (o["sec"], o["parts_sec"]) in partitions[2].rows
        assert (o["parts_sec"], o["door"]) in partitions[3].rows
        assert (o["door"], "Door") in partitions[4].rows


class TestEndToEndConsistency:
    def test_update_stream_then_queries(self, company_world):
        """ASRs stay query-correct through a mixed update stream."""
        db, path, o = company_world
        manager = ASRManager(db)
        asrs = [manager.create(path, extension) for extension in Extension]
        evaluator = QueryEvaluator(db)

        def backward_door():
            query = BackwardQuery(path, 0, path.n, target="Door")
            results = {
                evaluator.evaluate(query, asr).cells == evaluator.evaluate_unsupported(query).cells
                for asr in asrs
            }
            assert results == {True}

        backward_door()
        db.set_insert(o["parts_sausage"], o["door"])
        backward_door()
        db.delete(o["sec"])
        backward_door()
        db.set_attr(o["space"], "Manufactures", o["prods_truck"])
        backward_door()
        manager.check_consistency()
