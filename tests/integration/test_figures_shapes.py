"""Fast shape checks of every figure's headline claim.

The full series live in ``benchmarks/``; these tests keep the paper's
qualitative claims under ordinary ``pytest tests/`` coverage with
smaller sweeps.
"""

from repro.bench import figures


class TestStorageFigures:
    def test_fig4(self):
        data = figures.fig04_sizes()
        assert data["can/bi"] < data["full/bi"] / 4
        assert data["left/nodec"] < data["right/nodec"]
        assert data["can/nodec"] > data["can/bi"]

    def test_fig5_convergence(self):
        ds, series = figures.fig05_varying_d(ds=(2500, 10_000))
        first = [series[name][0] for name in series]
        last = [series[name][1] for name in series]
        assert max(last) / min(last) < max(first) / min(first)


class TestQueryFigures:
    def test_fig6(self):
        data = figures.fig06_backward_query()
        assert data["can/nodec"] <= data["can/bi"] < data["nosupport"]

    def test_fig7(self):
        sizes, series = figures.fig07_object_size(sizes=(100, 800))
        assert series["full"][0] == series["full"][1]
        assert series["nosupport"][1] > series["nosupport"][0]

    def test_fig8(self):
        ds, series = figures.fig08_partial_query(ds=(10, 10_000))
        assert series["can (any dec)"] == series["nosupport"]
        assert series["full/nodec"][1] > series["nosupport"][1]
        assert series["full/bi"][1] < series["nosupport"][1]

    def test_fig9(self):
        fans, series = figures.fig09_fanout(fans=(10, 100))
        assert series["can"][1] <= series["full"][1]
        assert series["left"][1] <= series["right"][1]


class TestUpdateFigures:
    def test_fig11(self):
        data = figures.fig11_update_costs()
        assert data["left/bi"] < data["right/bi"]
        assert data["full/bi"] < data["can/bi"]

    def test_fig12(self):
        data = figures.fig12_update_costs()
        ratio = max(data["left/bi"], data["full/bi"]) / min(
            data["left/bi"], data["full/bi"]
        )
        assert ratio < 2.5

    def test_fig13(self):
        sizes, series = figures.fig13_update_sizes(sizes=(100, 800))
        assert series["can"][1] > series["can"][0]
        assert series["full"][1] == series["full"][0]


class TestMixFigures:
    def test_fig14_break_evens(self):
        points = figures.fig14_break_evens()
        assert 0.02 < points["left_vs_full"] < 0.45
        assert points["nosupport_vs_full"] > 0.97

    def test_fig16(self):
        p_ups, series = figures.fig16_left_vs_full(p_ups=(0.1, 0.9))
        assert series["full/bi"][1] < series["left/bi"][1]

    def test_fig17_break_even(self):
        point = figures.fig17_break_even()
        assert point is not None and 0.001 < point < 0.05
