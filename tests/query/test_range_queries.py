"""Value-range backward queries over the value-clustered trees."""

import random

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.errors import QueryError
from repro.gom import ObjectBase, PathExpression, Schema
from repro.query import QueryEvaluator, ValueRangeQuery


@pytest.fixture()
def priced_world():
    schema = Schema()
    schema.define_tuple("BasePart", {"Name": "STRING", "Price": "DECIMAL"})
    schema.define_set("BasePartSET", "BasePart")
    schema.define_tuple("Product", {"Name": "STRING", "Composition": "BasePartSET"})
    schema.validate()
    db = ObjectBase(schema)
    rng = random.Random(6)
    parts = [db.new("BasePart", Name=f"P{i}", Price=float(i * 10)) for i in range(25)]
    products = []
    for i in range(10):
        members = rng.sample(parts, 3)
        collection = db.new_set("BasePartSET", members)
        products.append(db.new("Product", Name=f"Pr{i}", Composition=collection))
    path = PathExpression.parse(schema, "Product.Composition.Price")
    return db, path, parts, products


class TestValidation:
    def test_needs_bounds(self, priced_world):
        db, path, *_ = priced_world
        with pytest.raises(QueryError):
            ValueRangeQuery(path, 0, path.n)

    def test_must_end_at_terminal(self, priced_world):
        db, path, *_ = priced_world
        with pytest.raises(QueryError, match="terminal"):
            ValueRangeQuery(path, 0, 1, lo=0.0, hi=1.0)

    def test_terminal_must_be_atomic(self, priced_world):
        db, path, *_ = priced_world
        object_path = PathExpression.parse(db.schema, "Product.Composition")
        with pytest.raises(QueryError, match="atomic"):
            ValueRangeQuery(object_path, 0, 1, lo=0.0, hi=1.0)


class TestParity:
    @pytest.mark.parametrize("extension", [Extension.CANONICAL, Extension.FULL,
                                           Extension.LEFT, Extension.RIGHT])
    @pytest.mark.parametrize("borders", [(0, 1, 2, 3), (0, 3), (0, 2, 3)])
    def test_supported_matches_unsupported(self, priced_world, extension, borders):
        db, path, _parts, _products = priced_world
        manager = ASRManager(db)
        asr = manager.create(path, extension, Decomposition(borders))
        evaluator = QueryEvaluator(db)
        for lo, hi in [(0.0, 60.0), (100.0, 180.0), (55.0, 56.0), (500.0, 900.0)]:
            query = ValueRangeQuery(path, 0, path.n, lo=lo, hi=hi)
            assert (
                evaluator.evaluate_supported(query, asr).cells
                == evaluator.evaluate_unsupported(query).cells
            ), (extension, borders, lo, hi)

    def test_bounds_semantics_half_open(self, priced_world):
        db, path, parts, _products = priced_world
        evaluator = QueryEvaluator(db)
        exact = ValueRangeQuery(path, 0, path.n, lo=100.0, hi=100.0)
        assert evaluator.evaluate_unsupported(exact).cells == set()
        touching = ValueRangeQuery(path, 0, path.n, lo=100.0, hi=100.1)
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        assert evaluator.evaluate_supported(
            touching, asr
        ).cells == evaluator.evaluate_unsupported(touching).cells

    def test_string_ranges(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        evaluator = QueryEvaluator(db)
        query = ValueRangeQuery(path, 0, path.n, lo="D", hi="E")
        result = evaluator.evaluate_supported(query, asr)
        assert result.cells == {o["auto"], o["truck"]}  # reach "Door"
        assert result.cells == evaluator.evaluate_unsupported(query).cells

    def test_stays_correct_under_updates(self, priced_world):
        db, path, parts, products = priced_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        evaluator = QueryEvaluator(db)
        db.set_attr(parts[0], "Price", 999.0)
        collection = db.attr(products[0], "Composition")
        db.set_insert(collection, parts[0])
        query = ValueRangeQuery(path, 0, path.n, lo=990.0, hi=1000.0)
        supported = evaluator.evaluate_supported(query, asr)
        assert products[0] in supported.cells
        assert supported.cells == evaluator.evaluate_unsupported(query).cells

    def test_dispatch_through_evaluate(self, priced_world):
        db, path, *_ = priced_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        evaluator = QueryEvaluator(db)
        query = ValueRangeQuery(path, 0, path.n, lo=0.0, hi=50.0)
        result = evaluator.evaluate(query, asr)
        assert result.strategy.startswith("asr:full")

    def test_range_scan_cheaper_than_exhaustive(self, priced_world):
        from repro.storage import ClusteredObjectStore

        db, path, *_ = priced_world
        store = ClusteredObjectStore({"Product": 300, "BasePart": 200})
        store.attach(db)
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.none(path.m))
        evaluator = QueryEvaluator(db, store)
        query = ValueRangeQuery(path, 0, path.n, lo=0.0, hi=20.0)
        supported = evaluator.evaluate_supported(query, asr)
        unsupported = evaluator.evaluate_unsupported(query)
        assert supported.cells == unsupported.cells
        assert supported.page_reads <= unsupported.page_reads
