"""Plan objects, planner estimates, and describe() surfaces."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.query import BackwardQuery, ForwardQuery, Planner
from repro.query.planner import Plan


@pytest.fixture()
def setup(small_chain):
    manager = ASRManager(small_chain.db)
    return small_chain, manager, Planner(manager)


class TestPlanDescribe:
    def test_unsupported_plan(self, setup):
        generated, _manager, planner = setup
        query = BackwardQuery(
            generated.path, 0, generated.path.n, target=generated.layers[-1][0]
        )
        plan = planner.plan(query)
        assert plan.asr is None
        assert plan.estimated_pages == float("inf")
        assert "unsupported" in plan.describe()

    def test_supported_plan_mentions_design(self, setup):
        generated, manager, planner = setup
        manager.create(
            generated.path, Extension.FULL, Decomposition.binary(generated.path.m)
        )
        query = BackwardQuery(
            generated.path, 0, generated.path.n, target=generated.layers[-1][0]
        )
        plan = planner.plan(query)
        assert plan.supported
        text = plan.describe()
        assert "full" in text and "pages" in text


class TestEstimates:
    def test_scan_heavier_than_border_lookup(self, setup):
        generated, manager, planner = setup
        path = generated.path
        nodec = manager.create(path, Extension.FULL, Decomposition.none(path.m))
        # Forward from the anchor: border lookup, tiny estimate.
        whole = ForwardQuery(path, 0, path.n, start=generated.layers[0][0])
        border_cost = planner.estimate_supported_pages(whole, nodec)
        # Forward from a mid-path object: the endpoint is interior, so the
        # single partition must be scanned entirely.
        partial = ForwardQuery(path, 1, path.n, start=generated.layers[1][0])
        scan_cost = planner.estimate_supported_pages(partial, nodec)
        assert scan_cost == nodec.partitions[0].page_count
        assert border_cost == nodec.partitions[0].forward_tree.interior_height + 2

    def test_estimate_counts_only_touched_partitions(self, setup):
        generated, manager, planner = setup
        path = generated.path
        binary = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        narrow = ForwardQuery(path, 0, 1, start=generated.layers[0][0])
        wide = ForwardQuery(path, 0, path.n, start=generated.layers[0][0])
        assert planner.estimate_supported_pages(
            narrow, binary
        ) < planner.estimate_supported_pages(wide, binary)


class TestPlanDataclass:
    def test_fields(self, setup):
        generated, _manager, _planner = setup
        query = ForwardQuery(generated.path, 0, 1, start=generated.layers[0][0])
        plan = Plan(query, None, 12.5)
        assert not plan.supported
        assert plan.estimated_pages == 12.5
