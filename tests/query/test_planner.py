"""Planner: Eq. 35 applicability and plan ranking."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.query import BackwardQuery, ForwardQuery, Planner, QueryEvaluator


@pytest.fixture()
def setup(small_chain):
    manager = ASRManager(small_chain.db)
    planner = Planner(manager)
    evaluator = QueryEvaluator(small_chain.db, small_chain.store)
    return small_chain, manager, planner, evaluator


class TestApplicability:
    def test_no_asr_no_plan(self, setup):
        generated, _manager, planner, _evaluator = setup
        query = BackwardQuery(
            generated.path, 0, generated.path.n, target=generated.layers[-1][0]
        )
        plan = planner.plan(query)
        assert not plan.supported
        assert "unsupported" in plan.describe()

    def test_applicable_filtering(self, setup):
        generated, manager, planner, _evaluator = setup
        path = generated.path
        can = manager.create(path, Extension.CANONICAL)
        left = manager.create(path, Extension.LEFT)
        right = manager.create(path, Extension.RIGHT)
        full = manager.create(path, Extension.FULL)
        whole = BackwardQuery(path, 0, path.n, target=generated.layers[-1][0])
        assert set(planner.applicable(whole)) == {can, left, right, full}
        prefix = ForwardQuery(path, 0, 1, start=generated.layers[0][0])
        assert set(planner.applicable(prefix)) == {left, full}
        suffix = BackwardQuery(path, 1, path.n, target=generated.layers[-1][0])
        assert set(planner.applicable(suffix)) == {right, full}
        middle = ForwardQuery(path, 1, 2, start=generated.layers[1][0])
        assert set(planner.applicable(middle)) == {full}

    def test_plan_prefers_cheaper_asr(self, setup):
        generated, manager, planner, _evaluator = setup
        path = generated.path
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        nodec = manager.create(path, Extension.FULL, Decomposition.none(path.m))
        whole = BackwardQuery(path, 0, path.n, target=generated.layers[-1][0])
        plan = planner.plan(whole)
        # Non-decomposed: one descent instead of one per partition.
        assert plan.asr is nodec

    def test_execute_matches_direct_evaluation(self, setup):
        generated, manager, planner, evaluator = setup
        path = generated.path
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        query = BackwardQuery(path, 0, path.n, target=generated.layers[-1][0])
        via_planner = planner.execute(query, evaluator)
        direct = evaluator.evaluate_unsupported(query)
        assert via_planner.cells == direct.cells
        assert via_planner.strategy.startswith("asr:")

    def test_execute_fallback(self, setup):
        generated, manager, planner, evaluator = setup
        path = generated.path
        manager.create(path, Extension.CANONICAL)
        partial = BackwardQuery(path, 1, path.n, target=generated.layers[-1][0])
        result = planner.execute(partial, evaluator)
        assert result.strategy == "unsupported"
