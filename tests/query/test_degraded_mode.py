"""Degraded-mode queries: quarantined ASRs are skipped, results stay right.

A quarantined ASR's trees may be torn, so nothing may read them — but
queries must still answer correctly through another decomposition or the
unsupported evaluation, and the degradation must be visible in the
context trace and strategy strings.
"""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.context import ExecutionContext
from repro.errors import QueryError, SimulatedCrash
from repro.faults import FaultInjector
from repro.query import BackwardQuery, Planner, QueryEvaluator, SelectExecutor
from repro.query.costplanner import CostBasedPlanner


def quarantine(manager, injector, db, o):
    """Tear one flush so every registered ASR over the path quarantines."""
    injector.crash_at("asr.flush.mid-delta", on_hit=1)
    with pytest.raises(SimulatedCrash):
        with manager.batch():
            db.set_insert(o["parts_sec"], o["pepper"])


class TestPlannerSkipsQuarantined:
    def test_planner_falls_back_to_unsupported(self, company_world):
        db, path, o = company_world
        injector = FaultInjector()
        context = ExecutionContext()
        manager = ASRManager(db, context=context, fault_injector=injector)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        planner = Planner(manager)
        evaluator = QueryEvaluator(db, context=context)
        query = BackwardQuery(path, 0, path.n, target="Door")
        expected = planner.execute(query, evaluator).cells
        quarantine(manager, injector, db, o)
        assert planner.applicable(query) == []
        assert planner.quarantined_applicable(query) == [asr]
        result = planner.execute(query, evaluator)
        assert result.strategy == "unsupported"
        assert result.cells == evaluator.evaluate_unsupported(query).cells
        assert context.op_counts["plan.degraded-fallback"] == 1
        # Recovery restores the fast path (and changes the answer set to
        # the post-update truth, matching the unsupported strategy).
        manager.recover()
        assert planner.applicable(query) == [asr]
        recovered = planner.execute(query, evaluator)
        assert recovered.strategy.startswith("asr:")
        assert recovered.cells == evaluator.evaluate_unsupported(query).cells
        assert expected <= recovered.cells

    def test_planner_prefers_surviving_decomposition(self, company_world):
        db, path, o = company_world
        injector = FaultInjector()
        manager = ASRManager(db, fault_injector=injector, auto_recover=False)
        torn = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        survivor = manager.create(path, Extension.FULL, Decomposition.none(path.m))
        planner = Planner(manager)
        query = BackwardQuery(path, 0, path.n, target="Door")
        # Quarantine only the first ASR: a transient fault hits the first
        # delta of the flush (ASR order is registration order).
        injector.fault_at("asr.flush.mid-delta", times=1)
        with manager.batch():
            db.set_insert(o["parts_sec"], o["pepper"])
        assert torn.quarantined and not survivor.quarantined
        assert planner.applicable(query) == [survivor]
        plan = planner.plan(query)
        assert plan.asr is survivor

    def test_cost_planner_counts_degraded_decisions(self, company_world):
        db, path, o = company_world
        injector = FaultInjector()
        context = ExecutionContext()
        manager = ASRManager(db, context=context, fault_injector=injector)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        planner = CostBasedPlanner(manager)
        evaluator = QueryEvaluator(db, context=context)
        quarantine(manager, injector, db, o)
        query = BackwardQuery(path, 0, path.n, target="Door")
        result = planner.execute(query, evaluator)
        assert result.cells == evaluator.evaluate_unsupported(query).cells
        assert context.op_counts["plan.degraded-fallback"] == 1
        assert context.op_counts["plan.unsupported"] == 1


class TestEvaluatorGuards:
    def test_direct_supported_read_refused(self, company_world):
        db, path, o = company_world
        injector = FaultInjector()
        manager = ASRManager(db, fault_injector=injector)
        asr = manager.create(path, Extension.FULL)
        evaluator = QueryEvaluator(db)
        quarantine(manager, injector, db, o)
        query = BackwardQuery(path, 0, path.n, target="Door")
        with pytest.raises(QueryError, match="quarantined"):
            evaluator.evaluate_supported(query, asr)

    def test_evaluate_falls_back_and_counts(self, company_world):
        db, path, o = company_world
        injector = FaultInjector()
        context = ExecutionContext()
        manager = ASRManager(db, context=context, fault_injector=injector)
        asr = manager.create(path, Extension.FULL)
        evaluator = QueryEvaluator(db, context=context)
        quarantine(manager, injector, db, o)
        query = BackwardQuery(path, 0, path.n, target="Door")
        result = evaluator.evaluate(query, asr)
        assert result.strategy == "unsupported (degraded: ASR quarantined)"
        assert result.cells == evaluator.evaluate_unsupported(query).cells
        assert context.op_counts["query.degraded-fallback"] == 1


class TestExecutorDegradedPath:
    SELECT = (
        "select d.Name from d in Mercedes "
        'where d.Manufactures.Composition.Name = "Door"'
    )

    def test_select_still_answers_via_nested_loop(self, company_world):
        db, path, o = company_world
        injector = FaultInjector()
        context = ExecutionContext()
        manager = ASRManager(db, context=context, fault_injector=injector)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        executor = SelectExecutor(
            db, Planner(manager), QueryEvaluator(db, context=context)
        )
        fast = executor.run(self.SELECT)
        assert fast.strategy.startswith("asr-backward")
        quarantine(manager, injector, db, o)
        degraded = executor.run(self.SELECT)
        assert degraded.strategy == (
            "nested-loop traversal (degraded: ASR quarantined)"
        )
        assert sorted(degraded.rows) == sorted(fast.rows)
        assert context.op_counts["query.degraded-fallback"] == 1
        manager.recover()
        healed = executor.run(self.SELECT)
        assert healed.strategy.startswith("asr-backward")
        assert sorted(healed.rows) == sorted(fast.rows)
