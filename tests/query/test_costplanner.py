"""Cost-based planning: model-driven plan choice including fallback."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.costmodel import ApplicationProfile
from repro.query import BackwardQuery, ForwardQuery, QueryEvaluator
from repro.query.costplanner import CostBasedPlanner
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(20, 60, 180, 540),
    d=(18, 54, 160),
    fan=(3, 3, 3),
    size=(400, 300, 200, 100),
)

SIZES = {"T0": 400, "T1": 300, "T2": 200, "T3": 100}


@pytest.fixture()
def world():
    generated = ChainGenerator(seed=53).generate(PROFILE)
    manager = ASRManager(generated.db)
    planner = CostBasedPlanner(manager, SIZES)
    evaluator = QueryEvaluator(generated.db, generated.store)
    return generated, manager, planner, evaluator


class TestCostBasedChoice:
    def test_whole_path_backward_uses_asr(self, world):
        generated, manager, planner, evaluator = world
        path = generated.path
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        query = BackwardQuery(path, 0, path.n, target=generated.layers[-1][0])
        plan = planner.plan(query)
        assert plan.supported
        result = planner.execute(query, evaluator)
        assert result.cells == evaluator.evaluate_unsupported(query).cells

    def test_figure8_fallback(self, world):
        """A partial query against a huge non-decomposed relation loses to
        the cheap traversal — the planner must pick the fallback."""
        generated, manager, planner, evaluator = world
        path = generated.path
        manager.create(path, Extension.FULL, Decomposition.none(path.m))
        # Forward from a single object over one step: traversal costs ~2
        # pages; the supported plan must scan the whole undecomposed
        # relation (the query endpoint is interior).
        query = ForwardQuery(path, 0, 1, start=generated.layers[0][0])
        assert planner.unsupported_cost(query) < planner.supported_cost(
            query, manager.asrs[0]
        )
        plan = planner.plan(query)
        assert not plan.supported
        result = planner.execute(query, evaluator)
        assert result.strategy == "unsupported"

    def test_prefers_cheaper_decomposition(self, world):
        generated, manager, planner, _evaluator = world
        path = generated.path
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        nodec = manager.create(path, Extension.FULL, Decomposition.none(path.m))
        query = BackwardQuery(path, 0, path.n, target=generated.layers[-1][0])
        plan = planner.plan(query)
        assert plan.asr is nodec  # one descent beats one per partition

    def test_profile_cache_and_invalidate(self, world):
        generated, _manager, planner, _evaluator = world
        path = generated.path
        first = planner.profile_for(path)
        assert planner.profile_for(path) is first  # cached
        generated.db.delete(generated.layers[3][0])
        planner.invalidate(path)
        second = planner.profile_for(path)
        assert second.c[3] == first.c[3] - 1

    def test_costs_positive_and_finite(self, world):
        generated, manager, planner, _evaluator = world
        path = generated.path
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        for i, j in [(0, 3), (1, 3), (0, 2)]:
            query = BackwardQuery(path, i, j, target=generated.layers[j][0])
            assert planner.unsupported_cost(query) > 0
            assert planner.supported_cost(query, asr) > 0
