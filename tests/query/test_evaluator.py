"""Query evaluation: supported ≡ unsupported ≡ traversal oracle, page costs."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.errors import QueryError
from repro.gom.traversal import origins_reaching, reachable_terminals
from repro.query import BackwardQuery, ForwardQuery, QueryEvaluator


@pytest.fixture()
def chain(small_chain):
    manager = ASRManager(small_chain.db)
    evaluator = QueryEvaluator(small_chain.db, small_chain.store)
    return small_chain, manager, evaluator


def all_asrs(manager, path):
    decs = [
        Decomposition.binary(path.m),
        Decomposition.none(path.m),
        Decomposition.of(0, path.column_of(2), path.m),
    ]
    return [
        manager.create(path, extension, dec)
        for extension in Extension
        for dec in decs
    ]


class TestResultParity:
    def test_backward_full_span(self, chain):
        generated, manager, evaluator = chain
        path = generated.path
        asrs = all_asrs(manager, path)
        for target in generated.layers[path.n][:6]:
            query = BackwardQuery(path, 0, path.n, target=target)
            oracle = origins_reaching(generated.db, path, target)
            assert evaluator.evaluate_unsupported(query).cells == oracle
            for asr in asrs:
                assert evaluator.evaluate_supported(query, asr).cells == oracle, asr

    def test_forward_full_span(self, chain):
        generated, manager, evaluator = chain
        path = generated.path
        asrs = all_asrs(manager, path)
        for start in generated.layers[0][:6]:
            query = ForwardQuery(path, 0, path.n, start=start)
            oracle = reachable_terminals(generated.db, path, start)
            assert evaluator.evaluate_unsupported(query).cells == oracle
            for asr in asrs:
                assert evaluator.evaluate_supported(query, asr).cells == oracle, asr

    def test_partial_ranges_on_full_extension(self, chain):
        generated, manager, evaluator = chain
        path = generated.path
        full = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        for i, j in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]:
            for start in generated.layers[i][:4]:
                query = ForwardQuery(path, i, j, start=start)
                oracle = reachable_terminals(generated.db, path, start, i, j)
                assert evaluator.evaluate_supported(query, full).cells == oracle
                assert evaluator.evaluate_unsupported(query).cells == oracle
            for target in generated.layers[j][:4]:
                query = BackwardQuery(path, i, j, target=target)
                oracle = origins_reaching(generated.db, path, target, i, j)
                assert evaluator.evaluate_supported(query, full).cells == oracle
                assert evaluator.evaluate_unsupported(query).cells == oracle

    def test_prefix_on_left_and_suffix_on_right(self, chain):
        generated, manager, evaluator = chain
        path = generated.path
        left = manager.create(path, Extension.LEFT, Decomposition.binary(path.m))
        right = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        start = generated.layers[0][0]
        query = ForwardQuery(path, 0, 2, start=start)
        oracle = reachable_terminals(generated.db, path, start, 0, 2)
        assert evaluator.evaluate_supported(query, left).cells == oracle
        target = generated.layers[path.n][0]
        query = BackwardQuery(path, 1, path.n, target=target)
        oracle = origins_reaching(generated.db, path, target, 1, path.n)
        assert evaluator.evaluate_supported(query, right).cells == oracle

    def test_evaluate_dispatch(self, chain):
        generated, manager, evaluator = chain
        path = generated.path
        can = manager.create(path, Extension.CANONICAL, Decomposition.binary(path.m))
        partial = BackwardQuery(path, 1, path.n, target=generated.layers[path.n][0])
        result = evaluator.evaluate(partial, can)  # falls back (Eq. 35)
        assert result.strategy == "unsupported"
        whole = BackwardQuery(path, 0, path.n, target=generated.layers[path.n][0])
        result = evaluator.evaluate(whole, can)
        assert result.strategy.startswith("asr:can")


class TestGuards:
    def test_unsupported_extension_rejected(self, chain):
        generated, manager, evaluator = chain
        path = generated.path
        can = manager.create(path, Extension.CANONICAL)
        query = BackwardQuery(path, 1, path.n, target=generated.layers[path.n][0])
        with pytest.raises(QueryError, match="Eq. 35"):
            evaluator.evaluate_supported(query, can)

    def test_wrong_path_rejected(self, chain, company_world):
        generated, manager, evaluator = chain
        db2, other_path, o = company_world
        asr = manager.create(generated.path, Extension.FULL)
        query = BackwardQuery(other_path, 0, other_path.n, target="Door")
        with pytest.raises(QueryError, match="path"):
            evaluator.evaluate_supported(query, asr)

    def test_query_bounds_validated(self, chain):
        generated, _manager, _evaluator = chain
        path = generated.path
        with pytest.raises(QueryError):
            BackwardQuery(path, 2, 2, target="x")
        with pytest.raises(QueryError):
            ForwardQuery(path, -1, 2, start="x")
        with pytest.raises(QueryError):
            ForwardQuery(path, 0, path.n + 1, start="x")

    def test_missing_operands(self, chain):
        generated, _manager, _evaluator = chain
        path = generated.path
        with pytest.raises(QueryError):
            ForwardQuery(path, 0, 1)
        with pytest.raises(QueryError):
            BackwardQuery(path, 0, 1)

    def test_deleted_start_yields_empty(self, chain):
        generated, _manager, evaluator = chain
        path = generated.path
        victim = generated.layers[0][0]
        generated.db.delete(victim)
        query = ForwardQuery(path, 0, path.n, start=victim)
        assert evaluator.evaluate_unsupported(query).cells == set()


class TestPageCosts:
    def test_backward_scan_reads_extent_pages(self, chain):
        generated, _manager, evaluator = chain
        path = generated.path
        query = BackwardQuery(path, 0, path.n, target=generated.layers[path.n][0])
        result = evaluator.evaluate_unsupported(query)
        t0_pages = generated.store.pages_of_type("T0")
        assert result.page_reads >= t0_pages

    def test_supported_cheaper_than_unsupported_backward(self, chain):
        generated, manager, evaluator = chain
        path = generated.path
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        query = BackwardQuery(path, 0, path.n, target=generated.layers[path.n][0])
        supported = evaluator.evaluate_supported(query, asr)
        unsupported = evaluator.evaluate_unsupported(query)
        assert supported.page_reads < unsupported.page_reads

    def test_result_detail_categories(self, chain):
        generated, manager, evaluator = chain
        path = generated.path
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        query = BackwardQuery(path, 0, path.n, target=generated.layers[path.n][0])
        supported = evaluator.evaluate_supported(query, asr)
        assert any(key.startswith("btree") for key in supported.detail)
        unsupported = evaluator.evaluate_unsupported(query)
        assert "object" in unsupported.detail

    def test_no_store_means_zero_pages(self, small_chain):
        evaluator = QueryEvaluator(small_chain.db)  # no store attached
        path = small_chain.path
        query = BackwardQuery(path, 0, path.n, target=small_chain.layers[path.n][0])
        result = evaluator.evaluate_unsupported(query)
        assert result.page_reads == 0
        assert result.cells == origins_reaching(
            small_chain.db, path, small_chain.layers[path.n][0]
        )
