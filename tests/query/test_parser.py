"""The SQL-like surface grammar."""

import pytest

from repro.errors import ParseError
from repro.query.parser import DottedPath, Literal, parse_select


class TestHappyPath:
    def test_query1_shape(self):
        statement = parse_select(
            'select r.Name from r in OurRobots '
            'where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"'
        )
        assert statement.targets == (DottedPath("r", ("Name",)),)
        assert statement.ranges[0].variable == "r"
        assert statement.ranges[0].source == DottedPath("OurRobots")
        (predicate,) = statement.predicates
        assert predicate.op == "="
        assert predicate.right == Literal("Utopia")

    def test_query2_dependent_range(self):
        statement = parse_select(
            'select d.Name from d in Mercedes, b in d.Manufactures.Composition '
            'where b.Name = "Door"'
        )
        assert len(statement.ranges) == 2
        assert statement.ranges[1].source == DottedPath(
            "d", ("Manufactures", "Composition")
        )

    def test_extent_source(self):
        statement = parse_select("select p from p in extent(Product)")
        assert statement.ranges[0].is_extent
        assert statement.ranges[0].source.variable == "Product"

    def test_in_predicate(self):
        statement = parse_select(
            'select d from d in Mercedes where "Door" in d.Manufactures.Composition.Name'
        )
        (predicate,) = statement.predicates
        assert predicate.op == "in"
        assert predicate.left == Literal("Door")

    def test_and_conjunction(self):
        statement = parse_select(
            'select d from d in Mercedes where d.Name = "Auto" and d.Name = "Auto"'
        )
        assert len(statement.predicates) == 2

    def test_numeric_literals(self):
        statement = parse_select(
            "select p from p in extent(BasePart) where p.Price = 1205.50"
        )
        assert statement.predicates[0].right == Literal(1205.50)
        statement = parse_select(
            "select p from p in extent(BasePart) where p.Price = 12"
        )
        assert statement.predicates[0].right == Literal(12)

    def test_multiple_targets(self):
        statement = parse_select("select a.X, a.Y from a in extent(T)")
        assert len(statement.targets) == 2

    def test_keywords_case_insensitive(self):
        statement = parse_select("SELECT a FROM a IN extent(T) WHERE a.X = 1")
        assert statement.predicates[0].op == "="

    def test_round_trip_str(self):
        text = 'select d.Name from d in Mercedes where d.Name = "Auto"'
        assert str(parse_select(text)).replace("\n", " ") == text


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "select",
            "select from x in Y",
            "select a where a.X = 1",
            "select a from a",
            "select a from a in",
            "select a from a in extent(",
            'select a from a in B where a.X ~ 1',
            "select a from a in B extra",
            "select a from a in B where a.X =",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_select(bad)

    def test_unbound_target(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_select("select z from a in B")

    def test_unbound_predicate_variable(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_select("select a from a in B where z.X = 1")

    def test_unbound_dependent_range(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_select("select a from a in z.Items")

    def test_duplicate_range_variable(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_select("select a from a in B, a in C")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_select("select a from a in B where a.X = #")
