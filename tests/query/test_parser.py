"""The SQL-like surface grammar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.query.parser import (
    DottedPath,
    Literal,
    Predicate,
    RangeDecl,
    SelectStatement,
    parse_select,
)


class TestHappyPath:
    def test_query1_shape(self):
        statement = parse_select(
            'select r.Name from r in OurRobots '
            'where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"'
        )
        assert statement.targets == (DottedPath("r", ("Name",)),)
        assert statement.ranges[0].variable == "r"
        assert statement.ranges[0].source == DottedPath("OurRobots")
        (predicate,) = statement.predicates
        assert predicate.op == "="
        assert predicate.right == Literal("Utopia")

    def test_query2_dependent_range(self):
        statement = parse_select(
            'select d.Name from d in Mercedes, b in d.Manufactures.Composition '
            'where b.Name = "Door"'
        )
        assert len(statement.ranges) == 2
        assert statement.ranges[1].source == DottedPath(
            "d", ("Manufactures", "Composition")
        )

    def test_extent_source(self):
        statement = parse_select("select p from p in extent(Product)")
        assert statement.ranges[0].is_extent
        assert statement.ranges[0].source.variable == "Product"

    def test_in_predicate(self):
        statement = parse_select(
            'select d from d in Mercedes where "Door" in d.Manufactures.Composition.Name'
        )
        (predicate,) = statement.predicates
        assert predicate.op == "in"
        assert predicate.left == Literal("Door")

    def test_and_conjunction(self):
        statement = parse_select(
            'select d from d in Mercedes where d.Name = "Auto" and d.Name = "Auto"'
        )
        assert len(statement.predicates) == 2

    def test_numeric_literals(self):
        statement = parse_select(
            "select p from p in extent(BasePart) where p.Price = 1205.50"
        )
        assert statement.predicates[0].right == Literal(1205.50)
        statement = parse_select(
            "select p from p in extent(BasePart) where p.Price = 12"
        )
        assert statement.predicates[0].right == Literal(12)

    def test_multiple_targets(self):
        statement = parse_select("select a.X, a.Y from a in extent(T)")
        assert len(statement.targets) == 2

    def test_keywords_case_insensitive(self):
        statement = parse_select("SELECT a FROM a IN extent(T) WHERE a.X = 1")
        assert statement.predicates[0].op == "="

    def test_round_trip_str(self):
        text = 'select d.Name from d in Mercedes where d.Name = "Auto"'
        assert str(parse_select(text)).replace("\n", " ") == text


class TestStringEscapes:
    def test_escaped_quote_in_literal(self):
        statement = parse_select(
            'select d from d in Mercedes where d.Name = "say \\"hi\\""'
        )
        assert statement.predicates[0].right == Literal('say "hi"')

    def test_escaped_backslash_in_literal(self):
        statement = parse_select(
            'select d from d in Mercedes where d.Name = "C:\\\\tmp"'
        )
        assert statement.predicates[0].right == Literal("C:\\tmp")

    def test_escaped_literal_round_trips(self):
        literal = Literal('a "quoted" \\ backslash')
        statement = parse_select(
            f"select d from d in Mercedes where d.Name = {literal}"
        )
        assert statement.predicates[0].right == literal

    def test_unterminated_string_is_a_parse_error(self):
        with pytest.raises(ParseError, match="unterminated string literal at 40"):
            parse_select('select d from d in Mercedes where d.X = "oops')

    def test_trailing_escape_is_unterminated_not_a_crash(self):
        # The closing quote is escaped away, so the literal never ends.
        with pytest.raises(ParseError, match="unterminated string literal"):
            parse_select('select d from d in Mercedes where d.X = "oops\\"')


_identifiers = st.from_regex(r"[A-Za-z_][A-Za-z_0-9]{0,8}", fullmatch=True).filter(
    lambda s: s.lower()
    not in {"select", "from", "where", "and", "in", "extent"}
)
_literals = st.one_of(
    st.integers(-10**6, 10**6).map(Literal),
    # Decimal-representable floats only: str() must re-parse exactly.
    st.integers(-10**6, 10**6).map(lambda i: Literal(i / 100)),
    st.text(max_size=12).map(Literal),
)


@st.composite
def _statements(draw):
    variables = draw(
        st.lists(_identifiers, min_size=1, max_size=3, unique_by=str.lower)
    )
    ranges = []
    for index, variable in enumerate(variables):
        if index > 0 and draw(st.booleans()):
            source = DottedPath(
                variables[draw(st.integers(0, index - 1))],
                tuple(draw(st.lists(_identifiers, min_size=1, max_size=2))),
            )
            ranges.append(RangeDecl(variable, source))
        elif draw(st.booleans()):
            ranges.append(RangeDecl(variable, DottedPath(draw(_identifiers)), True))
        else:
            ranges.append(RangeDecl(variable, DottedPath(draw(_identifiers))))
    paths = st.builds(
        DottedPath,
        st.sampled_from(variables),
        st.lists(_identifiers, max_size=3).map(tuple),
    )
    targets = draw(st.lists(paths, min_size=1, max_size=3))
    operands = st.one_of(paths, _literals)
    predicates = draw(
        st.lists(
            st.builds(
                Predicate,
                operands,
                st.sampled_from(["=", "in", "<", "<=", ">", ">="]),
                operands,
            ),
            max_size=3,
        )
    )
    return SelectStatement(tuple(targets), tuple(ranges), tuple(predicates))


class TestRoundTripProperty:
    @settings(max_examples=120, deadline=None)
    @given(_statements())
    def test_str_parse_fixed_point(self, statement):
        """``str`` output is valid input, and re-parsing is the identity.

        Exercises the whole grammar surface, including string literals
        containing quotes and backslashes (the escape round trip).
        """
        printed = str(statement)
        reparsed = parse_select(printed)
        assert reparsed == statement
        assert str(reparsed) == printed


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "select",
            "select from x in Y",
            "select a where a.X = 1",
            "select a from a",
            "select a from a in",
            "select a from a in extent(",
            'select a from a in B where a.X ~ 1',
            "select a from a in B extra",
            "select a from a in B where a.X =",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_select(bad)

    def test_unbound_target(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_select("select z from a in B")

    def test_unbound_predicate_variable(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_select("select a from a in B where z.X = 1")

    def test_unbound_dependent_range(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_select("select a from a in z.Items")

    def test_duplicate_range_variable(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_select("select a from a in B, a in C")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_select("select a from a in B where a.X = #")
