"""Select-statement execution: the paper's Queries 1-3 and variations."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.errors import QueryError
from repro.query import Planner, QueryEvaluator, SelectExecutor


@pytest.fixture()
def company_executor(company_world):
    db, path, objects = company_world
    manager = ASRManager(db)
    manager.create(path, Extension.FULL, Decomposition.binary(path.m))
    executor = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
    return db, objects, executor


class TestPaperQueries:
    def test_query1(self, robot_world):
        db, path, _objects = robot_world
        executor = SelectExecutor(db)
        report = executor.run(
            'select r.Name from r in OurRobots '
            'where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"'
        )
        assert sorted(report.rows) == [("R2D2",), ("Robi",), ("X4D5",)]

    def test_query2(self, company_executor):
        _db, _objects, executor = company_executor
        report = executor.run(
            'select d.Name from d in Mercedes, b in d.Manufactures.Composition '
            'where b.Name = "Door"'
        )
        assert sorted(report.rows) == [("Auto",), ("Truck",)]

    def test_query3(self, company_executor):
        _db, _objects, executor = company_executor
        report = executor.run(
            'select d.Manufactures.Composition.Name from d in Mercedes '
            'where d.Name = "Auto"'
        )
        assert report.rows == [("Door",)]


class TestExecutionFeatures:
    def test_extent_range(self, company_executor):
        _db, _objects, executor = company_executor
        report = executor.run('select p.Name from p in extent(Product)')
        assert sorted(report.rows) == [("560 SEC",), ("MB Trak",), ("Sausage",)]

    def test_in_predicate(self, company_executor):
        _db, _objects, executor = company_executor
        report = executor.run(
            'select d.Name from d in Mercedes '
            'where "Door" in d.Manufactures.Composition.Name'
        )
        assert sorted(report.rows) == [("Auto",), ("Truck",)]

    def test_and_conjunction(self, company_executor):
        _db, _objects, executor = company_executor
        report = executor.run(
            'select d.Name from d in Mercedes '
            'where "Door" in d.Manufactures.Composition.Name and d.Name = "Auto"'
        )
        assert report.rows == [("Auto",)]

    def test_select_object_itself(self, company_executor):
        _db, objects, executor = company_executor
        report = executor.run('select d from d in Mercedes where d.Name = "Space"')
        assert report.rows == [(objects["space"],)]

    def test_numeric_predicate(self, company_executor):
        _db, _objects, executor = company_executor
        report = executor.run(
            'select p.Name from p in extent(BasePart) where p.Price = 0.12'
        )
        assert report.rows == [("Pepper",)]

    def test_empty_result(self, company_executor):
        _db, _objects, executor = company_executor
        report = executor.run(
            'select d.Name from d in Mercedes where d.Name = "Ghost"'
        )
        assert report.rows == []

    def test_unknown_attribute_raises(self, company_executor):
        _db, _objects, executor = company_executor
        with pytest.raises(QueryError):
            executor.run('select d.Ghost from d in Mercedes')

    def test_variable_bound_to_single_object(self, company_world):
        db, _path, objects = company_world
        db.set_var("AutoDiv", objects["auto"], "Division")
        executor = SelectExecutor(db)
        report = executor.run("select d.Name from d in AutoDiv")
        assert report.rows == [("Auto",)]


class TestASRFastPath:
    def test_fast_path_used_and_correct(self, company_world):
        db, path, _objects = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        with_asr = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
        without_asr = SelectExecutor(db)
        query = (
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Name = "Door"'
        )
        fast = with_asr.run(query)
        slow = without_asr.run(query)
        assert sorted(fast.rows) == sorted(slow.rows)
        assert fast.strategy.startswith("asr-backward")
        assert slow.strategy == "nested-loop traversal"

    def test_fast_path_respects_other_predicates(self, company_world):
        db, path, _objects = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        executor = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
        report = executor.run(
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Name = "Door" and d.Name = "Truck"'
        )
        assert report.rows == [("Truck",)]

    def test_fast_path_stays_correct_after_updates(self, company_world):
        db, path, objects = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        executor = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
        db.set_remove(objects["parts_sec"], objects["door"])
        report = executor.run(
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Name = "Door"'
        )
        assert report.rows == []


class TestExecutionReportPages:
    def test_report_totals_and_description(self):
        from repro.query.executor import ExecutionReport

        report = ExecutionReport([("x",)], "asr-backward", page_reads=3, page_writes=2)
        assert report.total_pages == 5
        assert report.describe_pages() == "3 page reads, 2 page writes, 5 total"

    def test_fast_path_reports_page_accesses(self, company_world):
        db, path, _objects = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        executor = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
        report = executor.run(
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Name = "Door"'
        )
        assert report.strategy.startswith("asr-backward")
        assert report.page_reads > 0
        assert report.page_writes == 0  # a read-only query writes nothing
        assert report.total_pages == report.page_reads + report.page_writes

    def test_executor_threads_context(self, company_world):
        from repro.context import ExecutionContext

        db, path, _objects = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        context = ExecutionContext()
        executor = SelectExecutor(db, Planner(manager), context=context)
        report = executor.run(
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Name = "Door"'
        )
        assert report.page_reads == context.stats.page_reads
        assert any(span.name.startswith("query.supported") for span in context.spans)
