"""The one-sided range-scan sentinels (BOTTOM/TOP) and their regression.

The executor used to build one-sided scans from *finite* per-rank
sentinels (``float("inf")`` for numbers, ``"\\uffff" * 8`` for strings).
Strings sorting above that top sentinel silently escaped every ``>=``
scan — the ASR fast path returned fewer rows than the nested-loop
semantics.  :data:`repro.asr.asr.BOTTOM` / :data:`repro.asr.asr.TOP`
sort below/above every real cell of every rank, closing the hole.
"""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.asr.asr import BOTTOM, TOP, cell_key
from repro.gom.objects import OID
from repro.gom.types import NULL
from repro.query import Planner, QueryEvaluator, SelectExecutor

#: One representative cell per rank of the total order, including the
#: values the old finite sentinels claimed to bound.
REPRESENTATIVE_CELLS = [
    NULL,
    OID(0),
    OID(2**62),
    False,
    True,
    float("-inf"),
    -1.5,
    0,
    10**30,
    float("inf"),
    "",
    "zebra",
    "￿" * 8,  # the old string top sentinel itself …
    "￿" * 9,  # … and a real value sorting above it
]


class TestSentinelOrder:
    @pytest.mark.parametrize("cell", REPRESENTATIVE_CELLS, ids=repr)
    def test_bottom_below_and_top_above_every_cell(self, cell):
        assert cell_key(BOTTOM) < cell_key(cell) < cell_key(TOP)

    def test_sentinels_bound_each_other(self):
        assert cell_key(BOTTOM) < cell_key(TOP)

    def test_reprs_name_the_sentinels(self):
        assert repr(BOTTOM) == "BOTTOM"
        assert repr(TOP) == "TOP"


class TestOneSidedScanRegression:
    @pytest.fixture()
    def extreme_world(self, company_world):
        """The company world plus a division reaching *only* a part
        named above the old string top sentinel — the shape the finite
        sentinels lost."""
        db, path, objects = company_world
        beyond = db.new("BasePart", Name="￿" * 9, Price=1.0)
        parts = db.new_set("BasePartSET", [beyond])
        product = db.new("Product", Name="Edge Case", Composition=parts)
        prods = db.new_set("ProdSET", [product])
        division = db.new("Division", Name="Edge", Manufactures=prods)
        db.set_insert(db.get_var("Mercedes"), division)
        return db, path, objects

    def _executor(self, db, path):
        manager = ASRManager(db)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        return SelectExecutor(db, Planner(manager), QueryEvaluator(db))

    def test_ge_scan_reaches_values_above_old_string_sentinel(
        self, extreme_world
    ):
        db, path, _objects = extreme_world
        executor = self._executor(db, path)
        query = (
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Name >= "Door"'
        )
        fast = executor.run(query)
        slow = SelectExecutor(db).run(query)
        assert fast.strategy.startswith("asr-backward")
        # "Edge" reaches only the "￿"*9 part; the old finite sentinel
        # scan dropped it.  ASR and nested-loop answers must agree.
        assert sorted(fast.rows) == sorted(slow.rows)
        assert ("Edge",) in fast.rows

    def test_lt_scan_matches_nested_loop(self, extreme_world):
        db, path, _objects = extreme_world
        executor = self._executor(db, path)
        query = (
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Name < "Pepper"'
        )
        fast = executor.run(query)
        slow = SelectExecutor(db).run(query)
        assert fast.strategy.startswith("asr-backward")
        assert sorted(fast.rows) == sorted(slow.rows)

    def test_numeric_ge_scan_reaches_infinity(self, company_world):
        # The old numeric top sentinel was float("inf") under half-open
        # bounds, so an actual infinite value escaped the >= scan.
        db, _path, _objects = company_world
        from repro.gom import PathExpression

        price_path = PathExpression.parse(
            db.schema, "Division.Manufactures.Composition.Price"
        )
        infinite = db.new("BasePart", Name="Free", Price=float("inf"))
        parts = db.new_set("BasePartSET", [infinite])
        product = db.new("Product", Name="Gratis", Composition=parts)
        prods = db.new_set("ProdSET", [product])
        division = db.new("Division", Name="Freebie", Manufactures=prods)
        db.set_insert(db.get_var("Mercedes"), division)
        executor = self._executor(db, price_path)
        query = (
            'select d.Name from d in Mercedes '
            'where d.Manufactures.Composition.Price >= 1000'
        )
        fast = executor.run(query)
        slow = SelectExecutor(db).run(query)
        assert fast.strategy.startswith("asr-backward")
        assert sorted(fast.rows) == sorted(slow.rows)
        assert ("Freebie",) in fast.rows
