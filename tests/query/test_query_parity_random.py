"""Property test: supported ≡ unsupported answers on random object graphs.

Uses the same randomized 3-type chain worlds as the extension oracle
tests (arbitrary edges, empty sets, shared sub-objects, dangling
prefixes/suffixes) and checks every admissible (extension,
decomposition, query range, query kind) combination against the
traversal semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import ASRManager, Decomposition, Extension
from repro.gom.traversal import origins_reaching, reachable_terminals
from repro.query import BackwardQuery, ForwardQuery, QueryEvaluator
from tests.asr.test_extensions import build_random_world

indices = st.integers(0, 3)
edges = st.frozensets(st.tuples(indices, indices), max_size=8)


@settings(max_examples=60, deadline=None)
@given(edges, edges, st.frozensets(indices, max_size=2))
def test_query_parity_on_random_worlds(edge01, edge12, empty_sets):
    db, path = build_random_world(edge01, edge12, empty_sets, False)
    manager = ASRManager(db)
    evaluator = QueryEvaluator(db)
    asrs = [
        manager.create(path, extension, dec)
        for extension in Extension
        for dec in (Decomposition.binary(path.m), Decomposition.none(path.m))
    ]
    t0 = sorted(db.extent("T0", False), key=lambda o: o.value)
    t2 = sorted(db.extent("T2", False), key=lambda o: o.value)
    cases = []
    for i, j in [(0, 1), (0, 2), (1, 2)]:
        layers = {0: t0, 1: sorted(db.extent("T1", False), key=lambda o: o.value), 2: t2}
        for start in layers[i][:2]:
            cases.append(ForwardQuery(path, i, j, start=start))
        for target in layers[j][:2]:
            cases.append(BackwardQuery(path, i, j, target=target))
    for query in cases:
        if isinstance(query, ForwardQuery):
            oracle = reachable_terminals(db, path, query.start, query.i, query.j)
        else:
            oracle = origins_reaching(db, path, query.target, query.i, query.j)
        assert evaluator.evaluate_unsupported(query).cells == oracle, query
        for asr in asrs:
            if asr.supports_query(query.i, query.j):
                answer = evaluator.evaluate_supported(query, asr).cells
                assert answer == oracle, (query, asr.extension, asr.decomposition)
