"""RecordingPlanner: query history feeds the adaptive designer."""

import pytest

from repro.asr import ASRManager, AdaptiveDesigner, Decomposition, Extension
from repro.costmodel import ApplicationProfile
from repro.query import BackwardQuery, ForwardQuery, QueryEvaluator, RecordingPlanner
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(25, 75, 225, 450),
    d=(22, 65, 200),
    fan=(3, 3, 2),
    size=(400, 300, 200, 100),
)

SIZES = {"T0": 400, "T1": 300, "T2": 200, "T3": 100}


@pytest.fixture()
def world():
    generated = ChainGenerator(seed=97).generate(PROFILE)
    manager = ASRManager(generated.db)
    planner = RecordingPlanner(manager, SIZES)
    evaluator = QueryEvaluator(generated.db, generated.store)
    return generated, manager, planner, evaluator


class TestRecording:
    def test_executed_queries_are_counted(self, world):
        generated, manager, planner, evaluator = world
        path = generated.path
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        for _ in range(3):
            planner.execute(
                BackwardQuery(path, 0, path.n, target=generated.layers[-1][0]),
                evaluator,
            )
        planner.execute(
            ForwardQuery(path, 0, 1, start=generated.layers[0][0]), evaluator
        )
        recorder = planner.recorder_for(path)
        assert recorder.queries[(0, path.n, "bw")] == 3
        assert recorder.queries[(0, 1, "fw")] == 1

    def test_updates_counted_via_attachment(self, world):
        generated, _manager, planner, _evaluator = world
        db, path = generated.db, generated.path
        planner.recorder_for(path)  # attaches the recorder
        owner = generated.layers[0][0]
        collection = db.attr(owner, "A")
        if collection:
            db.set_insert(collection, generated.layers[1][0])
            assert planner.recorder_for(path).total_updates >= 1

    def test_end_to_end_self_tuning(self, world):
        """Execute a workload through the planner, then re-tune from it."""
        generated, manager, planner, evaluator = world
        path = generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        for _ in range(40):
            planner.execute(
                BackwardQuery(path, 0, 2, target=generated.layers[2][0]),
                evaluator,
            )
        designer = AdaptiveDesigner(
            manager, asr, planner.recorder_for(path), SIZES
        )
        # Make P_up well-defined even with zero recorded updates.
        planner.recorder_for(path).record_update(0)
        decision = designer.retune()
        assert decision.retuned
        assert designer.asr.extension in (Extension.FULL, Extension.LEFT)
        manager.check_consistency()

    def test_one_recorder_per_path(self, world):
        generated, _manager, planner, _evaluator = world
        path = generated.path
        assert planner.recorder_for(path) is planner.recorder_for(path)
