"""The query service: plan caching by epoch, invalidation, error counts."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.context import ExecutionContext
from repro.errors import ParseError, QueryError
from repro.query import Planner, QueryService
from repro.telemetry import MetricsRegistry

QUERY = (
    'select d.Name from d in Mercedes '
    'where d.Manufactures.Composition.Name = "Door"'
)


@pytest.fixture()
def service_world(company_world):
    db, path, objects = company_world
    registry = MetricsRegistry()
    manager = ASRManager(db)
    asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
    # The structural planner keeps the fast-path choice deterministic on
    # this tiny world (the cost model may legitimately prefer traversal).
    service = QueryService(db, Planner(manager), cache_size=8, registry=registry)
    return db, manager, asr, service, registry, objects


def planned(registry) -> float:
    return registry.counter_value("ops", op="plan.supported") + registry.counter_value(
        "ops", op="plan.unsupported"
    )


class TestExecution:
    def test_end_to_end(self, service_world):
        _db, _manager, _asr, service, _registry, _objects = service_world
        outcome = service.execute(QUERY)
        assert sorted(outcome.report.rows) == [("Auto",), ("Truck",)]
        assert outcome.report.strategy.startswith("asr-backward")
        assert outcome.cached is False

    def test_payload_shape(self, service_world):
        _db, _manager, _asr, service, _registry, objects = service_world
        outcome = service.execute(
            'select d from d in Mercedes where d.Name = "Auto"'
        )
        payload = outcome.payload()
        assert payload["rows"] == [[repr(objects["auto"])]]
        assert payload["row_count"] == 1
        assert payload["cached"] is False
        assert payload["total_pages"] == (
            payload["page_reads"] + payload["page_writes"]
        )
        assert isinstance(payload["epoch"], int)


class TestPlanCaching:
    def test_second_identical_call_skips_planning(self, service_world):
        _db, _manager, _asr, service, registry, _objects = service_world
        context = ExecutionContext(metrics=registry)
        first = service.execute(QUERY, context=context)
        assert first.cached is False
        plans_after_first = planned(registry)
        assert plans_after_first > 0  # compile really planned
        second = service.execute(QUERY, context=context)
        assert second.cached is True
        assert sorted(second.report.rows) == sorted(first.report.rows)
        # The whole point: a hit does no planning work at all.
        assert planned(registry) == plans_after_first
        assert registry.counter_value("query.cache.hits") == 1

    def test_whitespace_variants_share_one_plan(self, service_world):
        _db, _manager, _asr, service, registry, _objects = service_world
        service.execute(QUERY)
        variant = QUERY.replace(" from ", "\n  from   ")
        assert service.execute(variant).cached is True

    def test_suspend_rebuild_invalidates(self, service_world):
        _db, manager, _asr, service, registry, _objects = service_world
        service.execute(QUERY)
        assert service.execute(QUERY).cached is True
        before = manager.epoch
        with manager.suspended():  # exits through a full rebuild
            pass
        assert manager.epoch > before
        outcome = service.execute(QUERY)  # a counted miss that re-plans
        assert outcome.cached is False
        assert outcome.epoch == manager.epoch
        assert registry.counter_value("query.cache.misses") >= 2

    def test_quarantine_and_recovery_both_invalidate(self, company_world):
        from repro.errors import SimulatedCrash
        from repro.faults import FaultInjector

        db, path, objects = company_world
        registry = MetricsRegistry()
        injector = FaultInjector()
        manager = ASRManager(db, fault_injector=injector, auto_recover=False)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        service = QueryService(db, Planner(manager), cache_size=8, registry=registry)
        healthy = service.execute(QUERY)
        # Tear one maintenance flush so the ASR quarantines.
        injector.crash_at("asr.flush.mid-delta", on_hit=1)
        with pytest.raises(SimulatedCrash):
            with manager.batch():
                db.set_insert(objects["parts_sec"], objects["pepper"])
        degraded = service.execute(QUERY)
        assert degraded.cached is False
        assert degraded.epoch > healthy.epoch
        assert "degraded" in degraded.report.strategy
        assert sorted(degraded.report.rows) == sorted(healthy.report.rows)
        assert manager.recover() == 1
        recovered = service.execute(QUERY)
        assert recovered.cached is False
        assert recovered.epoch > degraded.epoch
        assert recovered.report.strategy.startswith("asr-backward")
        # And the healthy plan is a hit again at the new epoch.
        assert service.execute(QUERY).cached is True

    def test_latency_histogram_observed(self, service_world):
        _db, _manager, _asr, service, registry, _objects = service_world
        service.execute(QUERY)
        snapshot = registry.snapshot()
        assert any(
            name.startswith("query.latency_ms") for name in snapshot["histograms"]
        )


class TestErrorCounting:
    def test_parse_error_counted(self, service_world):
        _db, _manager, _asr, service, registry, _objects = service_world
        with pytest.raises(ParseError):
            service.execute('select d from d in Mercedes where d.Name = "oops')
        assert registry.counter_value("query.errors", kind="parse") == 1

    def test_validate_error_counted(self, service_world):
        _db, _manager, _asr, service, registry, _objects = service_world
        with pytest.raises(QueryError):
            service.execute("select d.Ghost from d in Mercedes")
        assert registry.counter_value("query.errors", kind="validate") == 1

    def test_bad_texts_are_not_cached(self, service_world):
        _db, _manager, _asr, service, registry, _objects = service_world
        for _ in range(2):
            with pytest.raises(QueryError):
                service.execute("select d.Ghost from d in Mercedes")
        # Both attempts miss: failures never enter the cache.
        assert registry.counter_value("query.cache.hits") == 0
        assert len(service.cache) == 0
