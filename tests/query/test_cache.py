"""Query-text normalization and the epoch-keyed compiled-plan LRU."""

from repro.query.cache import CompiledPlanCache, normalize_query
from repro.query.executor import CompiledSelect
from repro.query.parser import parse_select
from repro.telemetry import MetricsRegistry


def compiled(text: str) -> CompiledSelect:
    return CompiledSelect(parse_select(text))


PLAN_A = 'select d from d in Mercedes where d.Name = "Auto"'
PLAN_B = 'select d from d in Mercedes where d.Name = "Truck"'
PLAN_C = "select p from p in extent(Product)"


class TestNormalizeQuery:
    def test_collapses_runs_and_strips_ends(self):
        assert (
            normalize_query("  select   x\n\tfrom x in  extent(T) ")
            == "select x from x in extent(T)"
        )

    def test_string_literals_are_preserved_verbatim(self):
        text = 'select d from d in M where d.Name = "two   spaces\tand tab"'
        assert normalize_query(text) == text

    def test_escaped_quote_does_not_end_the_literal(self):
        text = 'select d from d in M where d.Name = "a \\"b\\"   c"'
        assert normalize_query(text) == text

    def test_whitespace_after_string_still_collapses(self):
        assert (
            normalize_query('select d from d in M where d.Name = "x"   and d.Y = 1')
            == 'select d from d in M where d.Name = "x" and d.Y = 1'
        )

    def test_equivalent_variants_share_a_key(self):
        assert normalize_query("select  x  from x in T") == normalize_query(
            "select x\nfrom x in T"
        )


class TestCompiledPlanCache:
    def test_miss_then_hit(self):
        cache = CompiledPlanCache(capacity=4)
        assert cache.get(PLAN_A, 1) is None
        plan = compiled(PLAN_A)
        cache.put(PLAN_A, 1, plan)
        assert cache.get(PLAN_A, 1) is plan

    def test_epoch_is_part_of_the_key(self):
        cache = CompiledPlanCache(capacity=4)
        cache.put(PLAN_A, 1, compiled(PLAN_A))
        assert cache.get(PLAN_A, 2) is None  # epoch bumped → not found

    def test_lru_eviction_prefers_stale_entries(self):
        cache = CompiledPlanCache(capacity=2)
        cache.put(PLAN_A, 1, compiled(PLAN_A))
        cache.put(PLAN_B, 1, compiled(PLAN_B))
        assert cache.get(PLAN_A, 1) is not None  # A now most recent
        cache.put(PLAN_C, 1, compiled(PLAN_C))  # evicts B, the LRU tail
        assert cache.get(PLAN_B, 1) is None
        assert cache.get(PLAN_A, 1) is not None
        assert cache.get(PLAN_C, 1) is not None

    def test_zero_capacity_disables_caching(self):
        cache = CompiledPlanCache(capacity=0)
        cache.put(PLAN_A, 1, compiled(PLAN_A))
        assert cache.get(PLAN_A, 1) is None
        assert len(cache) == 0

    def test_metrics_published(self):
        registry = MetricsRegistry()
        cache = CompiledPlanCache(capacity=1, registry=registry)
        cache.get(PLAN_A, 1)  # miss
        cache.put(PLAN_A, 1, compiled(PLAN_A))
        cache.get(PLAN_A, 1)  # hit
        cache.put(PLAN_B, 1, compiled(PLAN_B))  # evicts A
        assert registry.counter_value("query.cache.misses") == 1
        assert registry.counter_value("query.cache.hits") == 1
        assert registry.counter_value("query.cache.evictions") == 1
        assert registry.gauge_value("query.cache.size") == 1.0

    def test_describe_snapshot(self):
        cache = CompiledPlanCache(capacity=8)
        cache.put(PLAN_A, 1, compiled(PLAN_A))
        cache.put(PLAN_B, 3, compiled(PLAN_B))
        assert cache.describe() == {"capacity": 8, "entries": 2, "epochs": [1, 3]}
