"""Static schema validation of parsed selects (the POST /query 400s)."""

import pytest

from repro.errors import QueryError
from repro.query import parse_select, validate_select


def check(db, text: str) -> None:
    validate_select(parse_select(text), db)


class TestAccepts:
    def test_paper_query1(self, robot_world):
        db, _path, _objects = robot_world
        check(
            db,
            'select r.Name from r in OurRobots '
            'where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"',
        )

    def test_dependent_range_and_in_predicate(self, company_world):
        db, _path, _objects = company_world
        check(
            db,
            'select d.Name from d in Mercedes, b in d.Manufactures.Composition '
            'where b.Name = "Door"',
        )
        check(
            db,
            'select d from d in Mercedes '
            'where "Door" in d.Manufactures.Composition.Name',
        )

    def test_extent_range(self, company_world):
        db, _path, _objects = company_world
        check(db, "select p.Name from p in extent(Product)")

    def test_numeric_literal_against_decimal(self, company_world):
        db, _path, _objects = company_world
        check(db, "select p from p in extent(BasePart) where p.Price < 100")
        check(db, "select p from p in extent(BasePart) where p.Price >= 0.5")

    def test_untyped_variable_is_opaque_not_an_error(self, company_world):
        db, _path, objects = company_world
        db.set_var("Something", objects["auto"])  # no declared type
        check(db, 'select s.Whatever from s in Something where s.X = 1')


class TestRejects:
    def test_unknown_extent_type(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(QueryError, match="unknown type 'Ghost' in extent"):
            check(db, "select g from g in extent(Ghost)")

    def test_unknown_database_variable(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(QueryError, match="unknown range source 'Nope'"):
            check(db, "select n from n in Nope")

    def test_unknown_attribute_names_the_known_ones(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(
            QueryError, match="'Division' has no attribute 'Ghost'"
        ) as excinfo:
            check(db, "select d.Ghost from d in Mercedes")
        assert "known: Manufactures, Name" in str(excinfo.value)

    def test_hop_from_atomic_terminal(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(QueryError, match="atomic type 'STRING' has no attribute"):
            check(db, "select d.Name.Length from d in Mercedes")

    def test_bad_attribute_in_dependent_range(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(QueryError, match="has no attribute 'Parts'"):
            check(db, "select b from d in Mercedes, b in d.Parts")

    def test_bad_attribute_in_predicate(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(QueryError, match="has no attribute 'Cost'"):
            check(db, "select d from d in Mercedes where d.Cost = 1")

    def test_string_literal_against_decimal_path(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(QueryError, match='literal "cheap" is not a DECIMAL'):
            check(db, 'select p from p in extent(BasePart) where p.Price = "cheap"')

    def test_numeric_literal_against_string_path(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(QueryError, match="literal 7 is not a STRING"):
            check(db, "select d from d in Mercedes where d.Name = 7")

    def test_literal_against_object_valued_path(self, robot_world):
        db, _path, _objects = robot_world
        with pytest.raises(QueryError, match="object-valued path of type 'ARM'"):
            check(db, 'select r from r in OurRobots where r.Arm = "left"')

    def test_mirrored_literal_side_is_checked_too(self, company_world):
        db, _path, _objects = company_world
        with pytest.raises(QueryError, match="is not a STRING"):
            check(db, "select d from d in Mercedes where 7 = d.Name")
