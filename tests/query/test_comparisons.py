"""Comparison predicates in the surface language and their index fast path."""

import random

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.errors import ParseError
from repro.gom import ObjectBase, PathExpression, Schema
from repro.query import Planner, QueryEvaluator, SelectExecutor, parse_select


@pytest.fixture()
def catalog():
    schema = Schema()
    schema.define_tuple("BasePart", {"Name": "STRING", "Price": "DECIMAL"})
    schema.define_set("BasePartSET", "BasePart")
    schema.define_tuple("Product", {"Name": "STRING", "Composition": "BasePartSET"})
    schema.define_set("ProdSET", "Product")
    schema.validate()
    db = ObjectBase(schema)
    rng = random.Random(3)
    parts = [db.new("BasePart", Name=f"P{i:02d}", Price=float(i * 5)) for i in range(20)]
    products = [
        db.new(
            "Product",
            Name=f"Pr{i}",
            Composition=db.new_set("BasePartSET", rng.sample(parts, 3)),
        )
        for i in range(8)
    ]
    db.set_var("Catalog", db.new_set("ProdSET", products), "ProdSET")
    path = PathExpression.parse(schema, "Product.Composition.Price")
    manager = ASRManager(db)
    manager.create(path, Extension.FULL, Decomposition.binary(path.m))
    fast = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
    slow = SelectExecutor(db)
    return db, fast, slow


class TestParserComparisons:
    @pytest.mark.parametrize("op", ["<", "<=", ">", ">="])
    def test_operators_parse(self, op):
        statement = parse_select(
            f"select p from p in Catalog where p.Price {op} 20"
        )
        assert statement.predicates[0].op == op

    def test_invalid_operator(self):
        with pytest.raises(ParseError):
            parse_select("select p from p in Catalog where p.Price != 20")


class TestComparisonSemantics:
    QUERIES = [
        "select p.Name from p in Catalog where p.Composition.Price < 20",
        "select p.Name from p in Catalog where p.Composition.Price <= 20",
        "select p.Name from p in Catalog where p.Composition.Price > 80",
        "select p.Name from p in Catalog where p.Composition.Price >= 80",
        "select p.Name from p in Catalog where 20 > p.Composition.Price",
        "select p.Name from p in Catalog where 80 <= p.Composition.Price",
        'select p.Name from p in Catalog where p.Name >= "Pr5"',
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_fast_matches_naive(self, catalog, query):
        _db, fast, slow = catalog
        assert sorted(fast.run(query).rows) == sorted(slow.run(query).rows)

    def test_indexable_forms_use_asr(self, catalog):
        _db, fast, _slow = catalog
        report = fast.run(
            "select p.Name from p in Catalog where p.Composition.Price < 20"
        )
        assert report.strategy.startswith("asr-backward")
        report = fast.run(
            "select p.Name from p in Catalog where p.Composition.Price >= 80"
        )
        assert report.strategy.startswith("asr-backward")

    def test_non_indexable_forms_fall_back(self, catalog):
        _db, fast, _slow = catalog
        # '>' and '<=' have inclusive/exclusive bounds the half-open range
        # scan cannot express exactly: they run as nested-loop filters.
        report = fast.run(
            "select p.Name from p in Catalog where p.Composition.Price > 80"
        )
        assert report.strategy == "nested-loop traversal"

    def test_existential_semantics(self, catalog):
        """A product matches when ANY composed part satisfies the bound."""
        db, fast, slow = catalog
        rows = slow.run(
            "select p.Name from p in Catalog where p.Composition.Price < 10"
        ).rows
        # Every reported product really contains a part cheaper than 10.
        for (name,) in rows:
            (product,) = [
                oid
                for oid in db.extent("Product")
                if db.attr(oid, "Name") == name
            ]
            members = db.members(db.attr(product, "Composition"))
            assert any(db.attr(part, "Price") < 10 for part in members)

    def test_combined_with_equality(self, catalog):
        _db, fast, slow = catalog
        query = (
            "select p.Name from p in Catalog "
            'where p.Composition.Price < 50 and p.Name = "Pr0"'
        )
        assert sorted(fast.run(query).rows) == sorted(slow.run(query).rows)
