"""Shared fixtures: the paper's two example worlds and a generated chain."""

from __future__ import annotations

import pytest

from repro.costmodel import ApplicationProfile
from repro.gom import ObjectBase, PathExpression, Schema
from repro.workload import ChainGenerator


@pytest.fixture()
def robot_world():
    """The linear-path robot world of Figure 1 (section 2.2)."""
    schema = Schema()
    schema.define_tuple("MANUFACTURER", {"Name": "STRING", "Location": "STRING"})
    schema.define_tuple(
        "TOOL", {"Function": "STRING", "ManufacturedBy": "MANUFACTURER"}
    )
    schema.define_tuple("ARM", {"Kinematics": "STRING", "MountedTool": "TOOL"})
    schema.define_tuple("ROBOT", {"Name": "STRING", "Arm": "ARM"})
    schema.define_set("ROBOT_SET", "ROBOT")
    schema.validate()

    db = ObjectBase(schema)
    objects = {}
    objects["robclone"] = db.new("MANUFACTURER", Name="RobClone", Location="Utopia")
    objects["welding"] = db.new(
        "TOOL", Function="welding", ManufacturedBy=objects["robclone"]
    )
    objects["gripping"] = db.new(
        "TOOL", Function="gripping", ManufacturedBy=objects["robclone"]
    )
    objects["arm_r2d2"] = db.new("ARM", MountedTool=objects["welding"])
    objects["arm_x4d5"] = db.new("ARM", MountedTool=objects["gripping"])
    objects["arm_robi"] = db.new("ARM", MountedTool=objects["gripping"])
    objects["r2d2"] = db.new("ROBOT", Name="R2D2", Arm=objects["arm_r2d2"])
    objects["x4d5"] = db.new("ROBOT", Name="X4D5", Arm=objects["arm_x4d5"])
    objects["robi"] = db.new("ROBOT", Name="Robi", Arm=objects["arm_robi"])
    robots = db.new_set(
        "ROBOT_SET", [objects["r2d2"], objects["x4d5"], objects["robi"]]
    )
    db.set_var("OurRobots", robots, "ROBOT_SET")
    path = PathExpression.parse(
        schema, "ROBOT.Arm.MountedTool.ManufacturedBy.Location"
    )
    return db, path, objects


@pytest.fixture()
def company_world():
    """The set-valued company world of Figure 2 (section 2.3)."""
    schema = Schema()
    schema.define_tuple("BasePart", {"Name": "STRING", "Price": "DECIMAL"})
    schema.define_set("BasePartSET", "BasePart")
    schema.define_tuple("Product", {"Name": "STRING", "Composition": "BasePartSET"})
    schema.define_set("ProdSET", "Product")
    schema.define_tuple("Division", {"Name": "STRING", "Manufactures": "ProdSET"})
    schema.define_set("Company", "Division")
    schema.validate()

    db = ObjectBase(schema)
    objects = {}
    objects["door"] = db.new("BasePart", Name="Door", Price=1205.50)
    objects["pepper"] = db.new("BasePart", Name="Pepper", Price=0.12)
    objects["parts_sec"] = db.new_set("BasePartSET", [objects["door"]])
    objects["parts_sausage"] = db.new_set("BasePartSET", [objects["pepper"]])
    objects["sec"] = db.new(
        "Product", Name="560 SEC", Composition=objects["parts_sec"]
    )
    objects["trak"] = db.new("Product", Name="MB Trak")
    objects["sausage"] = db.new(
        "Product", Name="Sausage", Composition=objects["parts_sausage"]
    )
    objects["prods_auto"] = db.new_set("ProdSET", [objects["sec"]])
    objects["prods_truck"] = db.new_set("ProdSET", [objects["sec"], objects["trak"]])
    objects["auto"] = db.new(
        "Division", Name="Auto", Manufactures=objects["prods_auto"]
    )
    objects["truck"] = db.new(
        "Division", Name="Truck", Manufactures=objects["prods_truck"]
    )
    objects["space"] = db.new("Division", Name="Space")
    company = db.new_set(
        "Company", [objects["auto"], objects["truck"], objects["space"]]
    )
    db.set_var("Mercedes", company, "Company")
    path = PathExpression.parse(schema, "Division.Manufactures.Composition.Name")
    return db, path, objects


SMALL_CHAIN_PROFILE = ApplicationProfile(
    c=(20, 40, 80, 160),
    d=(18, 32, 64),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)


@pytest.fixture()
def small_chain():
    """A deterministic generated chain world (n = 3, set-valued steps)."""
    return ChainGenerator(seed=17).generate(SMALL_CHAIN_PROFILE)
