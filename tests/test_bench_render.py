"""Rendering helpers used by the benchmark harness."""

from repro.bench.render import format_series, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "pages"], [["can", 12], ["full", 3.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "12" in lines[2]
        assert "3.5" in lines[3]

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_integral_floats_rendered_as_ints(self):
        text = format_table(["x"], [[3.0]])
        assert "3" in text and "3.0" not in text

    def test_small_floats_keep_precision(self):
        text = format_table(["x"], [[0.00417]])
        assert "0.00417" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series(
            "P_up", [0.1, 0.9], {"left": [1.0, 2.0], "full": [3.0, 4.0]}
        )
        header = text.splitlines()[0]
        assert "P_up" in header and "left" in header and "full" in header
        assert len(text.splitlines()) == 4

    def test_values_aligned_to_x(self):
        text = format_series("x", [10, 20], {"y": [100, 200]})
        rows = text.splitlines()[2:]
        assert "10" in rows[0] and "100" in rows[0]
        assert "20" in rows[1] and "200" in rows[1]
