"""Schema evolution (add_attribute) and the integrity checker."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.errors import SchemaError
from repro.gom import NULL, ObjectBase, PathExpression, Schema
from repro.gom.objects import OID


@pytest.fixture()
def world():
    schema = Schema()
    schema.define_tuple("Maker", {"Name": "STRING"})
    schema.define_tuple("Part", {"Name": "STRING"})
    schema.define_tuple("Special", {"Grade": "INTEGER"}, supertypes=["Part"])
    schema.validate()
    db = ObjectBase(schema)
    return schema, db


class TestAddAttribute:
    def test_existing_instances_read_null(self, world):
        schema, db = world
        part = db.new("Part", Name="Door")
        schema.add_attribute("Part", "Price", "DECIMAL")
        assert db.attr(part, "Price") is NULL
        db.set_attr(part, "Price", 9.5)
        assert db.attr(part, "Price") == 9.5

    def test_new_instances_get_slot(self, world):
        schema, db = world
        schema.add_attribute("Part", "Price", "DECIMAL")
        part = db.new("Part", Name="Gate", Price=2.0)
        assert db.attr(part, "Price") == 2.0

    def test_subtypes_inherit_new_attribute(self, world):
        schema, db = world
        special = db.new("Special", Name="Gear", Grade=1)
        schema.add_attribute("Part", "Price", "DECIMAL")
        assert db.attr(special, "Price") is NULL
        db.set_attr(special, "Price", 1.0)

    def test_object_valued_extension_enables_new_paths(self, world):
        schema, db = world
        maker = db.new("Maker", Name="Acme")
        part = db.new("Part", Name="Door")
        schema.add_attribute("Part", "MadeBy", "Maker")
        db.set_attr(part, "MadeBy", maker)
        path = PathExpression.parse(schema, "Part.MadeBy.Name")
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        assert (part, maker, "Acme") in asr.extension_relation
        manager.check_consistency()

    def test_duplicate_rejected(self, world):
        schema, _db = world
        with pytest.raises(SchemaError, match="already has"):
            schema.add_attribute("Part", "Name", "STRING")

    def test_inherited_duplicate_rejected(self, world):
        schema, _db = world
        with pytest.raises(SchemaError, match="already has"):
            schema.add_attribute("Special", "Name", "STRING")

    def test_subtype_conflict_rejected(self, world):
        schema, _db = world
        with pytest.raises(SchemaError, match="already declares"):
            schema.add_attribute("Part", "Grade", "STRING")

    def test_unknown_attr_type_rejected(self, world):
        schema, _db = world
        with pytest.raises(SchemaError, match="unknown attribute type"):
            schema.add_attribute("Part", "X", "Ghost")

    def test_typing_still_enforced(self, world):
        from repro.errors import TypingError

        schema, db = world
        part = db.new("Part", Name="Door")
        schema.add_attribute("Part", "Price", "DECIMAL")
        with pytest.raises(TypingError):
            db.set_attr(part, "Price", "free")


class TestVerifyIntegrity:
    def test_clean_world(self, company_world):
        db, _path, _o = company_world
        assert db.verify_integrity() == []

    def test_clean_after_update_stream(self, small_chain):
        import random

        db = small_chain.db
        rng = random.Random(71)
        for _ in range(60):
            owner = rng.choice(small_chain.layers[0])
            if owner not in db:
                continue
            value = db.attr(owner, "A")
            member = rng.choice(small_chain.layers[1])
            if value and member in db and rng.random() < 0.5:
                db.set_insert(value, member)
            else:
                victim = rng.choice(small_chain.layers[1])
                if victim in db:
                    db.delete(victim)
        assert db.verify_integrity() == []

    def test_detects_dangling_reference(self, world):
        _schema, db = world
        maker = db.new("Maker", Name="Acme")
        _schema.add_attribute("Part", "MadeBy", "Maker")
        part = db.new("Part", Name="Door", MadeBy=maker)
        # Corrupt: remove the maker behind the object base's back.
        del db._objects[maker]
        db._extents["Maker"].discard(maker)
        problems = db.verify_integrity()
        assert any("dangles" in problem for problem in problems)

    def test_detects_referrer_drift(self, world):
        _schema, db = world
        _schema.add_attribute("Part", "MadeBy", "Maker")
        maker = db.new("Maker", Name="Acme")
        db.new("Part", Name="Door", MadeBy=maker)
        db._referrers[maker].add(OID(999_999))
        db._objects[OID(999_999)] = db._objects[maker]  # fake holder entry
        del db._objects[OID(999_999)]
        problems = db.verify_integrity()
        assert any("referrer index drift" in problem for problem in problems)

    def test_detects_extent_corruption(self, world):
        _schema, db = world
        part = db.new("Part", Name="Door")
        db._extents["Part"].discard(part)
        problems = db.verify_integrity()
        assert any("missing from extent" in problem for problem in problems)
