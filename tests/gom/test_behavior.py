"""GOM behavior: methods, inheritance, overriding, late binding."""

import pytest

from repro.errors import SchemaError, TypingError
from repro.gom import NULL, ObjectBase, Schema
from repro.gom.behavior import MethodRegistry, Receiver


@pytest.fixture()
def world():
    schema = Schema()
    schema.define_tuple("TOOL", {"Function": "STRING"})
    schema.define_tuple("ROBOT", {"Name": "STRING", "Tool": "TOOL"})
    schema.define_tuple("WELDER", {"Amps": "INTEGER"}, supertypes=["ROBOT"])
    schema.validate()
    db = ObjectBase(schema)
    registry = MethodRegistry(schema)
    return schema, db, registry


class TestDefinition:
    def test_define_and_invoke(self, world):
        _schema, db, registry = world
        registry.define("ROBOT", "describe", lambda self: f"robot {self['Name']}")
        robot = db.new("ROBOT", Name="R2D2")
        assert registry.invoke(db, robot, "describe") == "robot R2D2"

    def test_duplicate_definition_rejected(self, world):
        _schema, _db, registry = world
        registry.define("ROBOT", "describe", lambda self: "x")
        with pytest.raises(SchemaError, match="already defined"):
            registry.define("ROBOT", "describe", lambda self: "y")

    def test_non_callable_rejected(self, world):
        _schema, _db, registry = world
        with pytest.raises(SchemaError):
            registry.define("ROBOT", "describe", "not callable")

    def test_non_tuple_type_rejected(self, world):
        schema, _db, registry = world
        with pytest.raises(SchemaError):
            registry.define("STRING", "describe", lambda self: "")

    def test_unknown_method(self, world):
        _schema, db, registry = world
        robot = db.new("ROBOT", Name="X")
        with pytest.raises(SchemaError, match="no method"):
            registry.invoke(db, robot, "fly")

    def test_invoke_on_non_object(self, world):
        _schema, db, registry = world
        with pytest.raises(TypingError):
            registry.invoke(db, NULL, "describe")
        with pytest.raises(TypingError):
            registry.invoke(db, "a string", "describe")


class TestDispatch:
    def test_inheritance(self, world):
        _schema, db, registry = world
        registry.define("ROBOT", "describe", lambda self: f"robot {self['Name']}")
        welder = db.new("WELDER", Name="W1", Amps=200)
        assert registry.invoke(db, welder, "describe") == "robot W1"

    def test_override_by_subtype_late_binding(self, world):
        _schema, db, registry = world
        registry.define("ROBOT", "describe", lambda self: f"robot {self['Name']}")
        registry.define(
            "WELDER", "describe", lambda self: f"welder {self['Name']}@{self['Amps']}A"
        )
        robot = db.new("ROBOT", Name="R")
        welder = db.new("WELDER", Name="W", Amps=150)
        assert registry.invoke(db, robot, "describe") == "robot R"
        assert registry.invoke(db, welder, "describe") == "welder W@150A"

    def test_explicit_override(self, world):
        _schema, db, registry = world
        registry.define("ROBOT", "describe", lambda self: "old")
        registry.override("WELDER", "describe", lambda self: "new")
        welder = db.new("WELDER", Name="W")
        assert registry.invoke(db, welder, "describe") == "new"

    def test_override_requires_visible_definition(self, world):
        _schema, _db, registry = world
        with pytest.raises(SchemaError, match="no definition visible"):
            registry.override("WELDER", "fly", lambda self: "")

    def test_methods_of(self, world):
        _schema, _db, registry = world
        registry.define("ROBOT", "describe", lambda self: "")
        registry.define("WELDER", "weld", lambda self: "")
        visible = registry.methods_of("WELDER")
        assert set(visible) == {"describe", "weld"}
        assert set(registry.methods_of("ROBOT")) == {"describe"}


class TestReceiver:
    def test_navigation_and_send(self, world):
        _schema, db, registry = world
        registry.define("TOOL", "label", lambda self: f"tool:{self['Function']}")
        registry.define(
            "ROBOT",
            "summary",
            lambda self: f"{self['Name']} with {self.follow('Tool').send('label')}",
        )
        tool = db.new("TOOL", Function="welding")
        robot = db.new("ROBOT", Name="R2D2", Tool=tool)
        assert registry.invoke(db, robot, "summary") == "R2D2 with tool:welding"

    def test_receiver_introspection(self, world):
        _schema, db, registry = world
        robot = db.new("ROBOT", Name="R")
        receiver = Receiver(db, robot, registry)
        assert receiver.type_name == "ROBOT"
        assert receiver["Name"] == "R"
        assert "ROBOT" in repr(receiver)

    def test_follow_atomic_returns_value(self, world):
        _schema, db, registry = world
        robot = db.new("ROBOT", Name="R")
        receiver = Receiver(db, robot, registry)
        assert receiver.follow("Name") == "R"

    def test_methods_with_arguments(self, world):
        _schema, db, registry = world
        registry.define(
            "ROBOT", "rename", lambda self, new: self.db.set_attr(self.oid, "Name", new)
        )
        robot = db.new("ROBOT", Name="old")
        registry.invoke(db, robot, "rename", "new")
        assert db.attr(robot, "Name") == "new"
