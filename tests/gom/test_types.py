"""Unit tests for the GOM type system."""

import copy
import pickle

import pytest

from repro.errors import SchemaError
from repro.gom.types import (
    BOOLEAN,
    BUILTIN_ATOMIC_TYPES,
    DECIMAL,
    INTEGER,
    NULL,
    STRING,
    ListType,
    Null,
    SetType,
    TupleType,
)


class TestNull:
    def test_singleton(self):
        assert Null() is NULL
        assert Null() is Null()

    def test_falsy(self):
        assert not NULL
        assert bool(NULL) is False

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_survives_copy_and_pickle(self):
        assert copy.copy(NULL) is NULL
        assert copy.deepcopy(NULL) is NULL
        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_identity_equality(self):
        assert NULL == NULL
        assert NULL != 0
        assert NULL != ""


class TestAtomicTypes:
    def test_builtins_registered(self):
        names = {t.name for t in BUILTIN_ATOMIC_TYPES}
        assert names == {"STRING", "CHAR", "INTEGER", "DECIMAL", "FLOAT", "BOOLEAN"}

    def test_string_accepts(self):
        assert STRING.accepts("hello")
        assert not STRING.accepts(5)

    def test_integer_rejects_bool(self):
        assert INTEGER.accepts(42)
        assert not INTEGER.accepts(True)

    def test_boolean_accepts_bool(self):
        assert BOOLEAN.accepts(True)
        assert not BOOLEAN.accepts(1)

    def test_decimal_accepts_int_and_float(self):
        assert DECIMAL.accepts(1205.50)
        assert DECIMAL.accepts(12)
        assert not DECIMAL.accepts(True)

    def test_kind_predicates(self):
        assert STRING.is_atomic()
        assert not STRING.is_tuple()
        assert not STRING.is_collection()


class TestConstructors:
    def test_tuple_type_attributes_copied(self):
        attributes = {"Name": "STRING"}
        t = TupleType("T", attributes)
        attributes["Name"] = "INTEGER"
        assert t.attributes["Name"] == "STRING"

    def test_tuple_type_self_supertype_rejected(self):
        with pytest.raises(SchemaError):
            TupleType("T", {}, supertypes=("T",))

    def test_tuple_type_repr_mentions_supertypes(self):
        t = TupleType("Sub", {"X": "STRING"}, supertypes=("Base",))
        assert "Base" in repr(t)
        assert "X: STRING" in repr(t)

    def test_set_and_list_predicates(self):
        s = SetType("S", "T")
        l = ListType("L", "T")
        assert s.is_set() and s.is_collection() and not s.is_list()
        assert l.is_list() and l.is_collection() and not l.is_set()

    def test_tuple_type_hashable(self):
        a = TupleType("T", {"Name": "STRING"})
        b = TupleType("T", {"Name": "STRING"})
        assert hash(a) == hash(b)
        assert a == b
