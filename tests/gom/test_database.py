"""Unit tests for the object base: instantiation, typing, updates, events."""

import pytest

from repro.errors import ObjectBaseError, TypingError
from repro.gom import (
    NULL,
    AttributeSet,
    ObjectBase,
    ObjectCreated,
    ObjectDeleted,
    Schema,
    SetInserted,
    SetRemoved,
)


@pytest.fixture()
def schema():
    s = Schema()
    s.define_tuple("Part", {"Name": "STRING", "Price": "DECIMAL"})
    s.define_set("PartSET", "Part")
    s.define_tuple("Product", {"Name": "STRING", "Parts": "PartSET"})
    s.define_tuple("SpecialPart", {"Grade": "INTEGER"}, supertypes=["Part"])
    s.define_list("PartLIST", "Part")
    s.validate()
    return s


@pytest.fixture()
def db(schema):
    return ObjectBase(schema)


class TestInstantiation:
    def test_new_initializes_all_attributes_to_null(self, db):
        oid = db.new("Part")
        assert db.attr(oid, "Name") is NULL
        assert db.attr(oid, "Price") is NULL

    def test_new_with_kwargs(self, db):
        oid = db.new("Part", Name="Door", Price=1205.50)
        assert db.attr(oid, "Name") == "Door"

    def test_subtype_inherits_attributes(self, db):
        oid = db.new("SpecialPart", Name="Gear", Grade=3)
        assert db.attr(oid, "Name") == "Gear"
        assert db.attr(oid, "Grade") == 3

    def test_oids_unique_and_ordered(self, db):
        a, b = db.new("Part"), db.new("Part")
        assert a != b and a < b

    def test_new_set_and_members(self, db):
        p = db.new("Part")
        s = db.new_set("PartSET", [p])
        assert db.members(s) == frozenset({p})

    def test_new_list_preserves_order(self, db):
        p1, p2 = db.new("Part"), db.new("Part")
        l = db.new_list("PartLIST", [p2, p1])
        assert db.members(l) == (p2, p1)

    def test_new_set_on_list_type_rejected(self, db):
        with pytest.raises(TypingError):
            db.new_set("PartLIST")

    def test_instantiating_collection_via_new_rejected(self, db):
        with pytest.raises(Exception):
            db.new("PartSET")


class TestTyping:
    def test_atomic_type_mismatch(self, db):
        oid = db.new("Part")
        with pytest.raises(TypingError):
            db.set_attr(oid, "Name", 42)

    def test_object_where_atomic_expected(self, db):
        a, b = db.new("Part"), db.new("Part")
        with pytest.raises(TypingError):
            db.set_attr(a, "Name", b)

    def test_atomic_where_object_expected(self, db):
        prod = db.new("Product")
        with pytest.raises(TypingError):
            db.set_attr(prod, "Parts", "not-an-oid")

    def test_subtype_substitutability(self, db):
        special = db.new("SpecialPart", Name="Gear")
        s = db.new_set("PartSET")
        db.set_insert(s, special)  # SpecialPart conforms to Part
        assert special in db.members(s)

    def test_wrong_object_type_rejected(self, db):
        prod = db.new("Product")
        other = db.new("Part")
        with pytest.raises(TypingError):
            db.set_attr(prod, "Parts", other)

    def test_null_always_conforms(self, db):
        prod = db.new("Product")
        db.set_attr(prod, "Parts", NULL)
        assert db.attr(prod, "Parts") is NULL

    def test_null_not_a_set_member(self, db):
        s = db.new_set("PartSET")
        with pytest.raises(TypingError):
            db.set_insert(s, NULL)

    def test_unknown_attribute(self, db):
        oid = db.new("Part")
        with pytest.raises(ObjectBaseError):
            db.set_attr(oid, "Ghost", 1)
        with pytest.raises(ObjectBaseError):
            db.attr(oid, "Ghost")


class TestExtentsAndVariables:
    def test_extent_includes_subtypes(self, db):
        p = db.new("Part")
        sp = db.new("SpecialPart")
        assert db.extent("Part") == {p, sp}
        assert db.extent("Part", include_subtypes=False) == {p}

    def test_variables(self, db):
        p = db.new("Part")
        db.set_var("Favourite", p, "Part")
        assert db.get_var("Favourite") == p
        assert db.var_type("Favourite") == "Part"

    def test_variable_type_checked(self, db):
        prod = db.new("Product")
        with pytest.raises(TypingError):
            db.set_var("Favourite", prod, "Part")

    def test_unknown_variable(self, db):
        with pytest.raises(ObjectBaseError):
            db.get_var("Ghost")


class TestUpdatesAndReferrers:
    def test_set_insert_remove(self, db):
        p = db.new("Part")
        s = db.new_set("PartSET")
        assert db.set_insert(s, p) is True
        assert db.set_insert(s, p) is False  # duplicate
        assert db.set_remove(s, p) is True
        assert db.set_remove(s, p) is False

    def test_referrers_tracked(self, db):
        p = db.new("Part")
        s = db.new_set("PartSET", [p])
        prod = db.new("Product", Parts=s)
        assert db.referrers(p) == {s}
        assert db.referrers(s) == {prod}

    def test_referrers_updated_on_overwrite(self, db):
        s1 = db.new_set("PartSET")
        s2 = db.new_set("PartSET")
        prod = db.new("Product", Parts=s1)
        db.set_attr(prod, "Parts", s2)
        assert db.referrers(s1) == set()
        assert db.referrers(s2) == {prod}

    def test_delete_nulls_incoming_references(self, db):
        p = db.new("Part")
        s = db.new_set("PartSET", [p])
        prod = db.new("Product", Parts=s)
        db.delete(s)
        assert db.attr(prod, "Parts") is NULL
        assert s not in db

    def test_delete_removes_from_sets(self, db):
        p = db.new("Part")
        s = db.new_set("PartSET", [p])
        db.delete(p)
        assert db.members(s) == frozenset()

    def test_dangling_oid_rejected(self, db):
        p = db.new("Part")
        db.delete(p)
        with pytest.raises(ObjectBaseError, match="dangling"):
            db.get(p)


class TestEvents:
    def test_event_stream(self, db):
        events = []
        db.subscribe(events.append)
        p = db.new("Part", Name="Door")
        s = db.new_set("PartSET", [p])
        db.set_remove(s, p)
        db.delete(p)
        kinds = [type(e) for e in events]
        assert kinds[0] is ObjectCreated
        assert AttributeSet in kinds
        assert SetInserted in kinds
        assert SetRemoved in kinds
        assert kinds[-1] is ObjectDeleted

    def test_attribute_set_carries_old_value(self, db):
        events = []
        p = db.new("Part", Name="Door")
        db.subscribe(events.append)
        db.set_attr(p, "Name", "Gate")
        (event,) = events
        assert event.old_value == "Door"
        assert event.new_value == "Gate"

    def test_noop_assignment_emits_nothing(self, db):
        p = db.new("Part", Name="Door")
        events = []
        db.subscribe(events.append)
        db.set_attr(p, "Name", "Door")
        assert events == []

    def test_set_inserted_owner(self, db):
        s = db.new_set("PartSET")
        prod = db.new("Product", Parts=s)
        events = []
        db.subscribe(events.append)
        p = db.new("Part")
        db.set_insert(s, p)
        inserted = [e for e in events if isinstance(e, SetInserted)]
        assert inserted[0].owner == prod

    def test_unsubscribe(self, db):
        events = []
        db.subscribe(events.append)
        db.unsubscribe(events.append)
        db.new("Part")
        assert events == []
