"""Unit tests for path expressions (Definition 3.1)."""

import pytest

from repro.errors import PathError
from repro.gom import PathExpression, Schema


@pytest.fixture()
def schema(company_world):
    db, _path, _objects = company_world
    return db.schema


class TestLinearPaths:
    def test_robot_path(self, robot_world):
        _db, path, _objects = robot_world
        assert path.n == 4
        assert path.k == 0
        assert path.m == 4
        assert path.is_linear
        assert path.types == ("ROBOT", "ARM", "TOOL", "MANUFACTURER", "STRING")
        assert path.terminal_is_atomic

    def test_columns_match_type_indices(self, robot_world):
        _db, path, _objects = robot_world
        assert [path.column_of(i) for i in range(5)] == [0, 1, 2, 3, 4]

    def test_str_round_trip(self, robot_world):
        db, path, _objects = robot_world
        assert PathExpression.parse(db.schema, str(path)) == path


class TestGeneralPaths:
    def test_company_path_set_occurrences(self, company_world):
        _db, path, _objects = company_world
        assert path.n == 3
        assert path.k == 2
        assert path.m == 5
        assert not path.is_linear
        assert [step.is_set_occurrence for step in path.steps] == [True, True, False]

    def test_column_of_with_set_columns(self, company_world):
        _db, path, _objects = company_world
        # Division=0, (ProdSET=1), Product=2, (BasePartSET=3), BasePart=4, Name=5
        assert [path.column_of(i) for i in range(4)] == [0, 2, 4, 5]

    def test_set_occurrences_before(self, company_world):
        _db, path, _objects = company_world
        assert [path.set_occurrences_before(i) for i in range(4)] == [0, 0, 1, 2]

    def test_type_index_of_column(self, company_world):
        _db, path, _objects = company_world
        assert [path.type_index_of_column(c) for c in range(6)] == [0, 1, 1, 2, 2, 3]

    def test_column_labels(self, company_world):
        _db, path, _objects = company_world
        assert path.column_labels() == [
            "OID_Division",
            "OID_ProdSET",
            "OID_Product",
            "OID_BasePartSET",
            "OID_BasePart",
            "VALUE_STRING",
        ]

    def test_subpath(self, company_world):
        _db, path, _objects = company_world
        sub = path.subpath(1, 3)
        assert sub.anchor_type == "Product"
        assert sub.attributes == ("Composition", "Name")
        assert sub.k == 1


class TestValidation:
    def test_unknown_attribute(self, schema):
        with pytest.raises(Exception):
            PathExpression(schema, "Division", ["Ghost"])

    def test_empty_path_rejected(self, schema):
        with pytest.raises(PathError):
            PathExpression(schema, "Division", [])

    def test_atomic_anchor_rejected(self, schema):
        with pytest.raises(PathError):
            PathExpression(schema, "STRING", ["length"])

    def test_continuing_past_atomic_rejected(self, schema):
        with pytest.raises(PathError, match="atomic"):
            PathExpression(schema, "Division", ["Name", "Length"])

    def test_parse_requires_anchor_and_attribute(self, schema):
        with pytest.raises(PathError):
            PathExpression.parse(schema, "Division")
        with pytest.raises(PathError):
            PathExpression.parse(schema, "Division..Name")

    def test_invalid_subpath_bounds(self, company_world):
        _db, path, _objects = company_world
        with pytest.raises(PathError):
            path.subpath(2, 2)
        with pytest.raises(PathError):
            path.subpath(0, 99)

    def test_equality_and_hash(self, schema):
        a = PathExpression(schema, "Division", ["Name"])
        b = PathExpression.parse(schema, "Division.Name")
        assert a == b
        assert hash(a) == hash(b)
        assert a != PathExpression(schema, "Division", ["Manufactures"])


class TestListOccurrence:
    def test_list_steps_treated_like_sets(self):
        schema = Schema()
        schema.define_tuple("Item", {"Name": "STRING"})
        schema.define_list("ItemLIST", "Item")
        schema.define_tuple("Order", {"Items": "ItemLIST"})
        schema.validate()
        path = PathExpression.parse(schema, "Order.Items.Name")
        assert path.k == 1
        assert path.steps[0].collection_type == "ItemLIST"
