"""Unit tests for object-graph traversal along path expressions."""

from repro.gom import NULL
from repro.gom.traversal import (
    backward_rows,
    forward_rows,
    origins_reaching,
    reachable_terminals,
)


class TestForwardRows:
    def test_complete_path(self, company_world):
        db, path, o = company_world
        rows = forward_rows(db, path, 0, o["auto"])
        assert rows == [
            (o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door")
        ]

    def test_branching_set(self, company_world):
        db, path, o = company_world
        rows = forward_rows(db, path, 0, o["truck"])
        assert len(rows) == 2  # via sec (complete) and via trak (stub)
        assert (
            o["truck"], o["prods_truck"], o["sec"], o["parts_sec"], o["door"], "Door"
        ) in rows
        assert (o["truck"], o["prods_truck"], o["trak"], NULL, NULL, NULL) in rows

    def test_undefined_attribute_stub(self, company_world):
        db, path, o = company_world
        rows = forward_rows(db, path, 0, o["space"])
        assert rows == [(o["space"], NULL, NULL, NULL, NULL, NULL)]

    def test_empty_set_rule(self, company_world):
        db, path, o = company_world
        empty = db.new_set("ProdSET")
        lonely = db.new("Division", Name="Lonely", Manufactures=empty)
        rows = forward_rows(db, path, 0, lonely)
        assert rows == [(lonely, empty, NULL, NULL, NULL, NULL)]

    def test_mid_path_start(self, company_world):
        db, path, o = company_world
        rows = forward_rows(db, path, 1, o["sausage"])
        assert rows == [(o["sausage"], o["parts_sausage"], o["pepper"], "Pepper")]

    def test_terminal_start(self, company_world):
        db, path, o = company_world
        assert forward_rows(db, path, 3, "Door") == [("Door",)]

    def test_null_start_yields_nothing(self, company_world):
        db, path, _o = company_world
        assert forward_rows(db, path, 0, NULL) == []


class TestBackwardRows:
    def test_complete_backward(self, company_world):
        db, path, o = company_world
        rows = backward_rows(db, path, 3, "Door")
        assert (
            o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door"
        ) in rows
        assert (
            o["truck"], o["prods_truck"], o["sec"], o["parts_sec"], o["door"], "Door"
        ) in rows
        assert len(rows) == 2

    def test_unanchored_backward(self, company_world):
        db, path, o = company_world
        rows = backward_rows(db, path, 3, "Pepper")
        assert rows == [
            (NULL, NULL, o["sausage"], o["parts_sausage"], o["pepper"], "Pepper")
        ]

    def test_backward_from_mid_object(self, company_world):
        db, path, o = company_world
        rows = backward_rows(db, path, 1, o["trak"])
        assert rows == [(o["truck"], o["prods_truck"], o["trak"])]

    def test_shared_subobject_fanout(self, company_world):
        db, path, o = company_world
        rows = backward_rows(db, path, 1, o["sec"])
        assert len(rows) == 2  # referenced from both divisions' sets


class TestQueriesSemantics:
    def test_reachable_terminals(self, company_world):
        db, path, o = company_world
        assert reachable_terminals(db, path, o["truck"]) == {"Door"}
        assert reachable_terminals(db, path, o["space"]) == set()
        assert reachable_terminals(db, path, o["truck"], 0, 1) == {o["sec"], o["trak"]}

    def test_origins_reaching(self, company_world):
        db, path, o = company_world
        assert origins_reaching(db, path, "Door") == {o["auto"], o["truck"]}
        # Sausage reaches "Pepper" but is not a Division: no t_0 origin.
        assert origins_reaching(db, path, "Pepper") == set()

    def test_origins_with_candidates(self, company_world):
        db, path, o = company_world
        assert origins_reaching(db, path, "Door", candidates=[o["auto"]]) == {o["auto"]}

    def test_partial_range_origins(self, company_world):
        db, path, o = company_world
        assert origins_reaching(db, path, o["door"], 1, 2) == {o["sec"]}

    def test_robot_world_query1(self, robot_world):
        db, path, o = robot_world
        assert origins_reaching(db, path, "Utopia") == {o["r2d2"], o["x4d5"], o["robi"]}
