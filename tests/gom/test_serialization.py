"""Persistence: object bases and ASR configurations round-trip via JSON."""

import json

import pytest

from repro.asr import ASRManager, Decomposition, Extension, build_extension
from repro.errors import ObjectBaseError
from repro.gom import NULL
from repro.gom.objects import OID
from repro.gom.serialization import (
    decode_cell,
    dump_object_base,
    encode_cell,
    load,
    load_object_base,
    save,
)


class TestCellEncoding:
    @pytest.mark.parametrize(
        "cell", [NULL, OID(7), "Door", 42, 3.5, True, False]
    )
    def test_round_trip(self, cell):
        decoded = decode_cell(json.loads(json.dumps(encode_cell(cell))))
        assert decoded == cell
        assert type(decoded) is type(cell)

    def test_null_identity(self):
        assert decode_cell(encode_cell(NULL)) is NULL

    def test_malformed(self):
        with pytest.raises(ObjectBaseError):
            decode_cell({"what": 1})


class TestObjectBaseRoundTrip:
    def test_company_world(self, company_world, tmp_path):
        db, path, o = company_world
        target = tmp_path / "company.json"
        save(db, target)
        loaded, asrs = load(target)
        assert asrs == []
        assert len(loaded) == len(db)
        # Same extents, same values, same variables.
        for type_name in ("Division", "Product", "BasePart"):
            assert {x.value for x in loaded.extent(type_name)} == {
                x.value for x in db.extent(type_name)
            }
        assert loaded.attr(o["door"], "Name") == "Door"
        assert loaded.attr(o["door"], "Price") == 1205.50
        assert loaded.attr(o["space"], "Manufactures") is NULL
        assert loaded.members(o["parts_sec"]) == db.members(o["parts_sec"])
        assert loaded.get_var("Mercedes") == db.get_var("Mercedes")
        assert loaded.var_type("Mercedes") == "Company"
        # Extensions over the loaded base match the original.
        for extension in Extension:
            assert (
                build_extension(loaded, path, extension).rows
                == build_extension(db, path, extension).rows
            )

    def test_oids_allocated_after_load_do_not_collide(self, company_world, tmp_path):
        db, _path, _o = company_world
        save(db, tmp_path / "db.json")
        loaded, _ = load(tmp_path / "db.json")
        fresh = loaded.new("BasePart", Name="Bolt")
        assert fresh not in db.oids() or fresh.value >= len(db)
        assert fresh.value not in {oid.value for oid in db.oids()}

    def test_lists_round_trip(self, tmp_path):
        from repro.gom import ObjectBase, Schema

        schema = Schema()
        schema.define_tuple("Item", {"Name": "STRING"})
        schema.define_list("Items", "Item")
        schema.validate()
        db = ObjectBase(schema)
        a = db.new("Item", Name="a")
        b = db.new("Item", Name="b")
        ordered = db.new_list("Items", [b, a, b] if False else [b, a])
        save(db, tmp_path / "lists.json")
        loaded, _ = load(tmp_path / "lists.json")
        assert loaded.members(ordered) == (b, a)

    def test_inherited_types_round_trip(self, tmp_path):
        from repro.gom import ObjectBase, Schema

        schema = Schema()
        schema.define_tuple("Base", {"Name": "STRING"})
        schema.define_tuple("Sub", {"Extra": "INTEGER"}, supertypes=["Base"])
        schema.validate()
        db = ObjectBase(schema)
        oid = db.new("Sub", Name="x", Extra=3)
        save(db, tmp_path / "inherit.json")
        loaded, _ = load(tmp_path / "inherit.json")
        assert loaded.attr(oid, "Name") == "x"
        assert loaded.type_of(oid) == "Sub"
        assert oid in loaded.extent("Base")


class TestASRConfigurations:
    def test_asrs_rematerialized(self, company_world, tmp_path):
        db, path, _o = company_world
        manager = ASRManager(db)
        original = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        target = tmp_path / "with_asr.json"
        save(db, target, asrs=manager.asrs)
        loaded, asrs = load(target)
        assert len(asrs) == 1
        restored = asrs[0]
        assert restored.extension is Extension.FULL
        assert restored.decomposition.borders == original.decomposition.borders
        assert restored.extension_relation.rows == original.extension_relation.rows
        restored.consistency_check(loaded)


class TestFormatGuards:
    def test_wrong_format(self):
        with pytest.raises(ObjectBaseError, match="not a"):
            load_object_base({"format": "something-else", "version": 1})

    def test_wrong_version(self):
        with pytest.raises(ObjectBaseError, match="version"):
            load_object_base({"format": "repro-objectbase", "version": 99})

    def test_duplicate_oid_rejected(self, company_world):
        db, _path, _o = company_world
        data = dump_object_base(db)
        data["objects"].append(dict(data["objects"][0]))
        with pytest.raises(ObjectBaseError, match="duplicate"):
            load_object_base(data)


# ----------------------------------------------------------------------
# property-based: random worlds round-trip exactly
# ----------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import Extension as _Extension
from tests.asr.test_extensions import build_random_world

_indices = st.integers(0, 3)
_edges = st.frozensets(st.tuples(_indices, _indices), max_size=8)


@settings(max_examples=50, deadline=None)
@given(_edges, _edges, st.frozensets(_indices, max_size=2))
def test_random_world_round_trip(edge01, edge12, empty_sets):
    db, path = build_random_world(edge01, edge12, empty_sets, False)
    loaded, _asrs = load_object_base(dump_object_base(db))
    assert len(loaded) == len(db)
    for instance in db.objects():
        restored = loaded.get(instance.oid)
        assert restored.type_name == instance.type_name
        if isinstance(instance.value, dict):
            for attr in instance.value:
                assert loaded.attr(instance.oid, attr) == db.attr(
                    instance.oid, attr
                )
        else:
            assert loaded.members(instance.oid) == db.members(instance.oid)
    for extension in _Extension:
        original = build_extension(db, path, extension).rows
        restored = build_extension(loaded, path, extension).rows
        assert original == restored, extension
