"""Unit tests for schema registration, inheritance, and subtyping."""

import pytest

from repro.errors import SchemaError
from repro.gom import Schema


@pytest.fixture()
def schema():
    return Schema()


class TestRegistration:
    def test_define_and_lookup(self, schema):
        schema.define_tuple("T", {"Name": "STRING"})
        assert schema.lookup("T").name == "T"
        assert "T" in schema

    def test_duplicate_rejected(self, schema):
        schema.define_tuple("T", {})
        with pytest.raises(SchemaError, match="already defined"):
            schema.define_tuple("T", {})

    def test_builtin_name_collision_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.define_tuple("STRING", {})

    def test_unknown_lookup(self, schema):
        with pytest.raises(SchemaError, match="unknown type"):
            schema.lookup("Nope")

    def test_kind_checked_lookups(self, schema):
        schema.define_tuple("T", {})
        schema.define_set("S", "T")
        assert schema.tuple_type("T").name == "T"
        assert schema.collection_type("S").name == "S"
        assert schema.atomic_type("STRING").name == "STRING"
        with pytest.raises(SchemaError):
            schema.tuple_type("S")
        with pytest.raises(SchemaError):
            schema.atomic_type("T")
        with pytest.raises(SchemaError):
            schema.collection_type("T")

    def test_forward_reference_allowed_until_validate(self, schema):
        schema.define_tuple("A", {"Next": "B"})
        with pytest.raises(SchemaError, match="undefined type"):
            schema.validate()
        schema.define_tuple("B", {})
        schema.validate()

    def test_nested_collections_rejected(self, schema):
        schema.define_tuple("T", {})
        schema.define_set("S", "T")
        with pytest.raises(SchemaError, match="powersets"):
            schema.define_set("SS", "S")

    def test_list_types(self, schema):
        schema.define_tuple("T", {})
        schema.define_list("L", "T")
        assert schema.collection_type("L").element_type == "T"


class TestInheritance:
    def test_single_inheritance_attributes(self, schema):
        schema.define_tuple("Base", {"Name": "STRING"})
        schema.define_tuple("Sub", {"Extra": "INTEGER"}, supertypes=["Base"])
        assert schema.attributes_of("Sub") == {"Name": "STRING", "Extra": "INTEGER"}

    def test_multiple_inheritance_merges(self, schema):
        schema.define_tuple("A", {"X": "STRING"})
        schema.define_tuple("B", {"Y": "INTEGER"})
        schema.define_tuple("C", {}, supertypes=["A", "B"])
        assert schema.attributes_of("C") == {"X": "STRING", "Y": "INTEGER"}

    def test_conflicting_inherited_types_rejected(self, schema):
        schema.define_tuple("A", {"X": "STRING"})
        schema.define_tuple("B", {"X": "INTEGER"})
        with pytest.raises(SchemaError, match="conflicting"):
            schema.define_tuple("C", {}, supertypes=["A", "B"])

    def test_redeclaration_with_other_type_rejected(self, schema):
        schema.define_tuple("A", {"X": "STRING"})
        with pytest.raises(SchemaError, match="redeclared"):
            schema.define_tuple("B", {"X": "INTEGER"}, supertypes=["A"])

    def test_unknown_supertype_rejected(self, schema):
        with pytest.raises(SchemaError, match="unknown supertype"):
            schema.define_tuple("Sub", {}, supertypes=["Ghost"])

    def test_non_tuple_supertype_rejected(self, schema):
        schema.define_tuple("T", {})
        schema.define_set("S", "T")
        with pytest.raises(SchemaError, match="not tuple-structured"):
            schema.define_tuple("Sub", {}, supertypes=["S"])

    def test_transitive_supertypes(self, schema):
        schema.define_tuple("A", {})
        schema.define_tuple("B", {}, supertypes=["A"])
        schema.define_tuple("C", {}, supertypes=["B"])
        assert schema.supertypes_of("C") == ["B", "A"]
        assert schema.subtypes_of("A") == ["B", "C"] or set(
            schema.subtypes_of("A")
        ) == {"B", "C"}

    def test_is_subtype(self, schema):
        schema.define_tuple("A", {})
        schema.define_tuple("B", {}, supertypes=["A"])
        assert schema.is_subtype("B", "A")
        assert schema.is_subtype("A", "A")
        assert not schema.is_subtype("A", "B")
        assert schema.is_subtype("STRING", "STRING")
        assert not schema.is_subtype("STRING", "INTEGER")

    def test_diamond_inheritance(self, schema):
        schema.define_tuple("Top", {"T": "STRING"})
        schema.define_tuple("L", {}, supertypes=["Top"])
        schema.define_tuple("R", {}, supertypes=["Top"])
        schema.define_tuple("Bottom", {}, supertypes=["L", "R"])
        assert schema.attributes_of("Bottom") == {"T": "STRING"}
        assert schema.is_subtype("Bottom", "Top")


class TestAttributeResolution:
    def test_attribute_type(self, schema):
        schema.define_tuple("M", {"Name": "STRING"})
        schema.define_tuple("T", {"By": "M"})
        assert schema.attribute_type("T", "By").name == "M"

    def test_missing_attribute(self, schema):
        schema.define_tuple("T", {})
        with pytest.raises(SchemaError, match="no attribute"):
            schema.attribute_type("T", "Ghost")

    def test_inherited_attribute_type(self, schema):
        schema.define_tuple("Base", {"Name": "STRING"})
        schema.define_tuple("Sub", {}, supertypes=["Base"])
        assert schema.attribute_type("Sub", "Name").name == "STRING"
