"""Event dataclasses and the ordering guarantees of compound operations."""

import pytest

from repro.gom import (
    NULL,
    AttributeSet,
    ObjectBase,
    ObjectCreated,
    ObjectDeleted,
    Schema,
    SetInserted,
    SetRemoved,
)


@pytest.fixture()
def world():
    schema = Schema()
    schema.define_tuple("Part", {"Name": "STRING"})
    schema.define_set("PartSET", "Part")
    schema.define_tuple("Prod", {"Parts": "PartSET"})
    schema.validate()
    return ObjectBase(schema)


class TestEventObjects:
    def test_events_are_frozen(self, world):
        event = ObjectCreated(next(iter([])) if False else None, "Part")  # type: ignore[arg-type]
        with pytest.raises(Exception):
            event.type_name = "Other"  # type: ignore[misc]

    def test_attribute_set_equality(self, world):
        part = world.new("Part")
        a = AttributeSet(part, "Part", "Name", NULL, "x")
        b = AttributeSet(part, "Part", "Name", NULL, "x")
        assert a == b


class TestOrderingGuarantees:
    def test_new_emits_created_before_attribute_sets(self, world):
        events = []
        world.subscribe(events.append)
        world.new("Part", Name="Door")
        assert isinstance(events[0], ObjectCreated)
        assert isinstance(events[1], AttributeSet)
        # Events fire after the mutation: the attribute is already set.
        assert events[1].new_value == "Door"

    def test_new_set_emits_created_then_inserts(self, world):
        part = world.new("Part")
        events = []
        world.subscribe(events.append)
        world.new_set("PartSET", [part])
        assert isinstance(events[0], ObjectCreated)
        assert isinstance(events[1], SetInserted)

    def test_delete_cascade_order(self, world):
        """Incoming references are detached *before* ObjectDeleted fires."""
        part = world.new("Part")
        collection = world.new_set("PartSET", [part])
        prod = world.new("Prod", Parts=collection)
        events = []
        world.subscribe(events.append)
        world.delete(collection)
        kinds = [type(event) for event in events]
        assert kinds[-1] is ObjectDeleted
        detach = next(e for e in events if isinstance(e, AttributeSet))
        assert detach.oid == prod and detach.new_value is NULL
        # At ObjectDeleted time nothing references the victim any more.
        deleted = events[-1]
        assert deleted.oid == collection
        assert world.referrers(collection) == set()

    def test_deleted_event_carries_old_value(self, world):
        part = world.new("Part", Name="Door")
        events = []
        world.subscribe(events.append)
        world.delete(part)
        deleted = events[-1]
        assert isinstance(deleted, ObjectDeleted)
        assert deleted.old_value["Name"] == "Door"

    def test_member_delete_emits_set_removed(self, world):
        part = world.new("Part")
        collection = world.new_set("PartSET", [part])
        events = []
        world.subscribe(events.append)
        world.delete(part)
        assert any(
            isinstance(e, SetRemoved) and e.set_oid == collection for e in events
        )
