"""The value-range cost extension (qsup_range)."""

import pytest

from repro.asr import Decomposition, Extension
from repro.costmodel import ApplicationProfile, QueryCostModel
from repro.errors import CostModelError

PROFILE = ApplicationProfile(
    c=(100, 500, 1000, 5000, 10000),
    d=(90, 400, 800, 2000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)

BI = Decomposition.binary(4)
NODEC = Decomposition.none(4)


@pytest.fixture()
def model():
    return QueryCostModel(PROFILE)


class TestQsupRange:
    def test_validation(self, model):
        with pytest.raises(CostModelError):
            model.qsup_range(Extension.FULL, 0, 1.5, BI)
        with pytest.raises(CostModelError):
            model.qsup_range(Extension.FULL, 4, 0.1, BI)
        with pytest.raises(CostModelError):
            model.qsup_range(Extension.FULL, 0, 0.1, Decomposition.of(0, 2))

    def test_monotone_in_selectivity(self, model):
        for extension in Extension:
            for dec in (BI, NODEC):
                costs = [
                    model.qsup_range(extension, 0, s, dec)
                    for s in (0.01, 0.1, 0.3, 0.6, 1.0)
                ]
                assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:])), (
                    extension,
                    dec,
                    costs,
                )

    def test_point_selectivity_close_to_point_lookup(self, model):
        """Near-zero selectivity should approach the Eq. 34 point cost."""
        for extension in Extension:
            range_cost = model.qsup_range(extension, 0, 1e-6, NODEC)
            point_cost = model.qsup(extension, 0, 4, "bw", NODEC)
            assert range_cost <= point_cost * 3 + 3

    def test_full_selectivity_bounded_by_scan(self, model):
        """Selectivity 1 costs at most all data pages plus tree overhead."""
        for extension in Extension:
            cost = model.qsup_range(extension, 0, 1.0, NODEC)
            pages = model.storage.ap(extension, 0, 4)
            assert cost <= pages + model.storage.ht(extension, 0, 4) + 1

    def test_selective_range_beats_unsupported(self, model):
        for extension in Extension:
            assert model.qsup_range(extension, 0, 0.05, NODEC) < model.qnas(
                0, 4, "bw"
            )

    def test_partial_origin(self, model):
        cost = model.qsup_range(Extension.FULL, 2, 0.2, BI)
        assert cost > 0
        # Starting further right touches fewer partitions.
        assert cost <= model.qsup_range(Extension.FULL, 0, 0.2, BI) + 1e-9
