"""Query cost model (Eqs. 31-35)."""

import pytest

from repro.asr import Decomposition, Extension
from repro.costmodel import ApplicationProfile, QueryCostModel
from repro.errors import CostModelError

FIG6 = ApplicationProfile(
    c=(100, 500, 1000, 5000, 10000),
    d=(90, 400, 800, 2000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)


@pytest.fixture()
def model():
    return QueryCostModel(FIG6)


BI = Decomposition.binary(4)
NODEC = Decomposition.none(4)


class TestUnsupported:
    def test_forward_starts_at_one_page(self, model):
        assert model.qnas(0, 1, "fw") == 1.0

    def test_backward_starts_at_extent_scan(self, model):
        assert model.qnas(0, 1, "bw") == model.storage.op(0)

    def test_monotone_in_range_length(self, model):
        for kind in ("fw", "bw"):
            values = [model.qnas(0, j, kind) for j in range(1, 5)]
            assert all(a <= b for a, b in zip(values, values[1:])), kind

    def test_empty_range_free(self, model):
        assert model.qnas(2, 2, "fw") == 0.0

    def test_validation(self, model):
        with pytest.raises(CostModelError):
            model.qnas(3, 1, "bw")
        with pytest.raises(CostModelError):
            model.qnas(0, 4, "sideways")

    def test_backward_costlier_than_forward(self, model):
        # Exhaustive extent search vs single-object chase.
        assert model.qnas(0, 4, "bw") > model.qnas(0, 4, "fw")


class TestSupported:
    def test_nonnegative_everywhere(self, model):
        for extension in Extension:
            for dec in (BI, NODEC, Decomposition.of(0, 3, 4)):
                for i, j in [(0, 4), (0, 3), (1, 4), (1, 2)]:
                    for kind in ("fw", "bw"):
                        assert model.qsup(extension, i, j, kind, dec) >= 0.0

    def test_whole_path_nodec_single_descent(self, model):
        # One partition, endpoint on the border: ht + (R)nlp.
        for extension in Extension:
            cost = model.qsup(extension, 0, 4, "bw", NODEC)
            expected = model.storage.ht(extension, 0, 4) + model.storage.rnlp(
                extension, 0, 4
            )
            assert cost == pytest.approx(expected)

    def test_binary_needs_per_partition_work(self, model):
        for extension in Extension:
            assert model.qsup(extension, 0, 4, "bw", BI) > model.qsup(
                extension, 0, 4, "bw", NODEC
            )

    def test_interior_endpoint_forces_scan(self, model):
        # Q_{0,3} under no decomposition: j=3 strictly inside (0,4).
        cost = model.qsup(Extension.FULL, 0, 3, "bw", NODEC)
        assert cost >= model.storage.ap(Extension.FULL, 0, 4)

    def test_wrong_span_rejected(self, model):
        with pytest.raises(CostModelError):
            model.qsup(Extension.FULL, 0, 4, "bw", Decomposition.of(0, 2))


class TestDispatch:
    """Eq. 35: extension applicability."""

    def test_canonical_only_whole_path(self, model):
        assert model.q(Extension.CANONICAL, 0, 4, "bw", BI) == model.qsup(
            Extension.CANONICAL, 0, 4, "bw", BI
        )
        assert model.q(Extension.CANONICAL, 0, 3, "bw", BI) == model.qnas(0, 3, "bw")
        assert model.q(Extension.CANONICAL, 1, 4, "bw", BI) == model.qnas(1, 4, "bw")

    def test_left_prefixes_only(self, model):
        assert model.q(Extension.LEFT, 0, 2, "fw", BI) == model.qsup(
            Extension.LEFT, 0, 2, "fw", BI
        )
        assert model.q(Extension.LEFT, 1, 4, "fw", BI) == model.qnas(1, 4, "fw")

    def test_right_suffixes_only(self, model):
        assert model.q(Extension.RIGHT, 1, 4, "bw", BI) == model.qsup(
            Extension.RIGHT, 1, 4, "bw", BI
        )
        assert model.q(Extension.RIGHT, 0, 3, "bw", BI) == model.qnas(0, 3, "bw")

    def test_full_always_supported(self, model):
        for i, j in [(0, 4), (1, 3), (2, 4), (0, 1)]:
            assert model.q(Extension.FULL, i, j, "bw", BI) == model.qsup(
                Extension.FULL, i, j, "bw", BI
            )

    def test_supported_beats_unsupported_backward(self, model):
        """The headline result: orders of magnitude for whole-path bw."""
        for extension in Extension:
            assert model.q(extension, 0, 4, "bw", BI) < model.qnas(0, 4, "bw") / 10


class TestObjectSizeIndependence:
    def test_supported_flat_in_size(self):
        """Figure 7: supported costs ignore object size."""
        costs = []
        for size in (100, 400, 800):
            profile = FIG6.with_size((size,) * 5)
            model = QueryCostModel(profile)
            costs.append(model.qsup(Extension.FULL, 0, 4, "bw", BI))
        assert costs[0] == costs[1] == costs[2]

    def test_unsupported_grows_with_size(self):
        small = QueryCostModel(FIG6.with_size((100,) * 5)).qnas(0, 4, "bw")
        large = QueryCostModel(FIG6.with_size((800,) * 5)).qnas(0, 4, "bw")
        assert large > 2 * small
