"""The cost model under non-default system parameters.

The paper fixes PageSize = 4056 / OIDsize = 8 / PPsize = 4; the model
must stay well-formed — and its qualitative orderings stable — under
other plausible geometries (1 KiB and 16 KiB pages, fat OIDs).
"""

import pytest

from repro.asr import Decomposition, Extension
from repro.costmodel import (
    ApplicationProfile,
    QueryCostModel,
    StorageModel,
    SystemParameters,
    UpdateCostModel,
)

PROFILE = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)

GEOMETRIES = [
    SystemParameters(page_size=1024, oid_size=8, pp_size=4),
    SystemParameters(page_size=4056, oid_size=8, pp_size=4),
    SystemParameters(page_size=16384, oid_size=16, pp_size=8),
]

BI = Decomposition.binary(4)
NODEC = Decomposition.none(4)


@pytest.mark.parametrize("system", GEOMETRIES, ids=["1k", "paper", "16k"])
class TestGeometrySweep:
    def test_storage_well_formed(self, system):
        storage = StorageModel(PROFILE, system)
        for extension in Extension:
            for dec in (BI, NODEC):
                assert storage.relation_bytes(extension, dec) > 0
                assert storage.relation_pages(extension, dec) >= 1
            for i, j in [(0, 4), (1, 3)]:
                assert storage.ht(extension, i, j) >= 0
                assert storage.nlp(extension, i, j) >= 1

    def test_query_orderings_stable(self, system):
        model = QueryCostModel(PROFILE, system)
        scan = model.qnas(0, 4, "bw")
        for extension in Extension:
            supported = model.q(extension, 0, 4, "bw", BI)
            assert 0 < supported < scan
            # Non-decomposed stays at most as costly as binary for the
            # whole-path lookup regardless of geometry.
            assert model.q(extension, 0, 4, "bw", NODEC) <= supported

    def test_update_orderings_stable(self, system):
        model = UpdateCostModel(PROFILE, system)
        left = model.total(Extension.LEFT, 3, BI)
        right = model.total(Extension.RIGHT, 3, BI)
        full = model.total(Extension.FULL, 3, BI)
        can = model.total(Extension.CANONICAL, 3, BI)
        assert left < right
        assert full < can

    def test_bytes_independent_of_page_size(self, system):
        """Relation byte sizes depend on OID size, not page size."""
        storage = StorageModel(PROFILE, system)
        reference = StorageModel(
            PROFILE, SystemParameters(page_size=2048, oid_size=system.oid_size)
        )
        for extension in Extension:
            assert storage.relation_bytes(extension, NODEC) == pytest.approx(
                reference.relation_bytes(extension, NODEC)
            )


class TestPageSizeEffects:
    def test_bigger_pages_fewer_accesses(self):
        small = QueryCostModel(PROFILE, SystemParameters(page_size=1024))
        large = QueryCostModel(PROFILE, SystemParameters(page_size=16384))
        assert large.qnas(0, 4, "bw") < small.qnas(0, 4, "bw")
        assert large.q(Extension.FULL, 0, 4, "bw", BI) <= small.q(
            Extension.FULL, 0, 4, "bw", BI
        )

    def test_fanout_scales_with_page_size(self):
        assert (
            SystemParameters(page_size=16384).btree_fanout
            > SystemParameters(page_size=1024).btree_fanout
        )
