"""Schema-wide budgeted design selection."""

import pytest

from repro.costmodel import (
    ApplicationProfile,
    DesignAdvisor,
    OperationMix,
    QuerySpec,
    UpdateSpec,
)
from repro.costmodel.schema_advisor import (
    PathWorkload,
    SchemaDesignAdvisor,
)
from repro.errors import CostModelError

HOT_PROFILE = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)

COLD_PROFILE = ApplicationProfile(
    c=(100, 500, 1000),
    d=(90, 400),
    fan=(2, 2),
    size=(300, 200, 100),
)

HOT_MIX = OperationMix(
    queries=((1.0, QuerySpec(0, 4, "bw")),),
    updates=((1.0, UpdateSpec(3)),),
)
COLD_MIX = OperationMix(
    queries=((1.0, QuerySpec(0, 2, "bw")),),
    updates=((1.0, UpdateSpec(0)),),
)


def make_workloads(hot_weight=10.0, cold_weight=1.0):
    return [
        PathWorkload("orders", HOT_PROFILE, HOT_MIX, 0.1, hot_weight),
        PathWorkload("audit", COLD_PROFILE, COLD_MIX, 0.1, cold_weight),
    ]


class TestValidation:
    def test_needs_workloads(self):
        with pytest.raises(CostModelError):
            SchemaDesignAdvisor([])

    def test_unique_names(self):
        workload = make_workloads()[0]
        with pytest.raises(CostModelError):
            SchemaDesignAdvisor([workload, workload])

    def test_negative_weight_rejected(self):
        with pytest.raises(CostModelError):
            PathWorkload("x", COLD_PROFILE, COLD_MIX, 0.1, weight=-1)


class TestUnbudgeted:
    def test_matches_per_path_optimum(self):
        advisor = SchemaDesignAdvisor(make_workloads())
        design = advisor.plan(budget_bytes=None)
        for workload in make_workloads():
            individual = DesignAdvisor(workload.profile).best(
                workload.mix, workload.p_up
            )
            chosen = design.choices[workload.name]
            assert chosen.cost == pytest.approx(individual.cost, rel=1e-9)

    def test_savings_factor(self):
        design = SchemaDesignAdvisor(make_workloads()).plan()
        assert design.savings_factor > 5
        assert design.weighted_cost < design.baseline_cost


class TestBudgeted:
    def test_zero_budget_keeps_baselines(self):
        design = SchemaDesignAdvisor(make_workloads()).plan(budget_bytes=0)
        for choice in design.choices.values():
            assert choice.extension is None
        assert design.total_bytes == 0
        assert design.weighted_cost == pytest.approx(design.baseline_cost)

    def test_tight_budget_prefers_heavy_path(self):
        """With room for only one index, the weighted-hot path gets it."""
        advisor = SchemaDesignAdvisor(make_workloads(hot_weight=50, cold_weight=0.1))
        unbudgeted = advisor.plan()
        hot_bytes = unbudgeted.choices["orders"].storage_bytes
        design = advisor.plan(budget_bytes=hot_bytes * 1.05)
        assert design.choices["orders"].extension is not None
        # The hot path's design consumed (almost) the entire budget.
        assert design.total_bytes <= hot_bytes * 1.05

    def test_budget_respected(self):
        budget = 64 * 1024
        design = SchemaDesignAdvisor(make_workloads()).plan(budget_bytes=budget)
        assert design.total_bytes <= budget

    def test_monotone_in_budget(self):
        advisor = SchemaDesignAdvisor(make_workloads())
        costs = [
            advisor.plan(budget_bytes=budget).weighted_cost
            for budget in (0, 32 * 1024, 256 * 1024, 4 * 1024 * 1024, None)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:])), costs

    def test_describe(self):
        design = SchemaDesignAdvisor(make_workloads()).plan(budget_bytes=512 * 1024)
        text = design.describe()
        assert "schema design" in text
        assert "orders" in text and "audit" in text
