"""The physical-design advisor."""

import pytest

from repro.asr import Decomposition, Extension
from repro.costmodel import (
    ApplicationProfile,
    DesignAdvisor,
    MixCostModel,
    OperationMix,
    QuerySpec,
    UpdateSpec,
)

PROFILE = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)

MIX = OperationMix(
    queries=((0.5, QuerySpec(0, 4, "bw")), (0.5, QuerySpec(0, 3, "bw"))),
    updates=((1.0, UpdateSpec(3)),),
)


@pytest.fixture()
def advisor():
    return DesignAdvisor(PROFILE)


class TestEnumeration:
    def test_full_design_space(self, advisor):
        choices = advisor.enumerate(MIX, p_up=0.2)
        # 4 extensions x 2^(n-1) decompositions + no-support baseline.
        assert len(choices) == 4 * 8 + 1

    def test_sorted_by_cost(self, advisor):
        choices = advisor.enumerate(MIX, p_up=0.2)
        costs = [choice.cost for choice in choices]
        assert costs == sorted(costs)

    def test_baseline_can_be_excluded(self, advisor):
        choices = advisor.enumerate(MIX, p_up=0.2, include_baseline=False)
        assert all(choice.extension is not None for choice in choices)

    def test_cost_matches_mix_model(self, advisor):
        model = MixCostModel(PROFILE)
        for choice in advisor.enumerate(MIX, p_up=0.3)[:5]:
            if choice.extension is None:
                continue
            assert choice.cost == pytest.approx(
                model.mix_cost(choice.extension, choice.decomposition, MIX, 0.3)
            )


class TestBest:
    def test_query_heavy_prefers_support(self, advisor):
        best = advisor.best(MIX, p_up=0.05)
        assert best.extension in (Extension.FULL, Extension.LEFT)
        assert best.normalized < 0.1

    def test_pure_updates_prefer_baseline(self, advisor):
        best = advisor.best(MIX, p_up=1.0)
        assert best.extension is None

    def test_storage_budget_respected(self, advisor):
        budget = 400 * 1024
        best = advisor.best(MIX, p_up=0.1, max_storage_bytes=budget)
        assert best.extension is None or best.storage_bytes <= budget

    def test_impossible_budget_leaves_baseline(self, advisor):
        best = advisor.best(MIX, p_up=0.1, max_storage_bytes=1.0)
        assert best.extension is None


class TestReport:
    def test_report_format(self, advisor):
        text = advisor.report(MIX, p_up=0.2, top=3)
        assert "design ranking" in text
        assert text.count("\n") == 3
        assert "pages/op" in text

    def test_describe_baseline(self, advisor):
        choices = advisor.enumerate(MIX, p_up=1.0)
        baseline = next(c for c in choices if c.extension is None)
        assert "no access support" in baseline.describe()
