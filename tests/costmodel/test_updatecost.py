"""Update cost model (section 6): search, cluster counts, totals."""

import pytest

from repro.asr import Decomposition, Extension
from repro.costmodel import ApplicationProfile, UpdateCostModel
from repro.errors import CostModelError

FIG11 = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)

BI = Decomposition.binary(4)
NODEC = Decomposition.none(4)


@pytest.fixture()
def model():
    return UpdateCostModel(FIG11)


class TestSearch:
    def test_full_needs_no_data_search(self, model):
        """Full extension: everything needed is already in the ASR."""
        for i in range(4):
            search = model.search(Extension.FULL, i, BI)
            sup_fw = model.querycost.qsup(Extension.FULL, i, i + 1, "fw", BI)
            sup_bw = model.querycost.qsup(Extension.FULL, i, i + 1, "bw", BI)
            assert search == min(sup_fw, sup_bw)

    def test_canonical_searches_both_directions(self, model):
        """Canonical pays data searches on both sides (for interior i)."""
        assert model.search(Extension.CANONICAL, 2, BI) > model.search(
            Extension.FULL, 2, BI
        )

    def test_left_forward_search_only(self, model):
        # ins_3 at the right end: the left extension's forward search from
        # t_4 is trivial (i + 1 = n), so it should be close to full's cost.
        left = model.search(Extension.LEFT, 3, BI)
        full = model.search(Extension.FULL, 3, BI)
        assert left <= full * 2 + 10

    def test_right_pays_extent_scans(self, model):
        """Right extension's backward search scans t_0..t_i extents."""
        right = model.search(Extension.RIGHT, 3, BI)
        scan = sum(model.storage.op(l) for l in range(4))
        assert right <= scan + 100
        assert right > model.search(Extension.FULL, 3, BI)

    def test_index_guard(self, model):
        with pytest.raises(CostModelError):
            model.search(Extension.FULL, 4, BI)
        with pytest.raises(CostModelError):
            model.search(Extension.FULL, -1, BI)


class TestClusterCounts:
    def test_full_zero_outside_covering_partition(self, model):
        # Full extension: only the partition covering (i, i+1) is touched.
        for a, b in BI.partitions:
            for i in range(4):
                qfw = model.qfw(Extension.FULL, i, a, b)
                qbw = model.qbw(Extension.FULL, i, a, b)
                if a <= i < b:
                    assert qfw > 0 and qbw > 0
                else:
                    assert qfw == 0 and qbw == 0

    def test_left_zero_for_partitions_left_of_update(self, model):
        assert model.qfw(Extension.LEFT, 3, 0, 1) == 0
        assert model.qbw(Extension.LEFT, 3, 0, 1) == 0

    def test_right_zero_for_partitions_right_of_update(self, model):
        assert model.qfw(Extension.RIGHT, 0, 3, 4) == 0
        assert model.qbw(Extension.RIGHT, 0, 3, 4) == 0

    def test_all_nonnegative(self, model):
        for extension in Extension:
            for i in range(4):
                for a, b in list(BI.partitions) + [(0, 4), (0, 3), (2, 4)]:
                    assert model.qfw(extension, i, a, b) >= 0.0
                    assert model.qbw(extension, i, a, b) >= 0.0


class TestAup:
    def test_nonnegative(self, model):
        for extension in Extension:
            for i in range(4):
                for dec in (BI, NODEC, Decomposition.of(0, 3, 4)):
                    assert model.aup(extension, i, dec) >= 0.0

    def test_full_touches_single_partition_under_binary(self, model):
        # Two trees, each: root + leaf read/write ≥ 3 accesses, ≤ ~10.
        cost = model.aup(Extension.FULL, 3, BI)
        assert 4.0 <= cost <= 20.0

    def test_span_guard(self, model):
        with pytest.raises(CostModelError):
            model.aup(Extension.FULL, 1, Decomposition.of(0, 2))


class TestTotals:
    def test_total_composition(self, model):
        for extension in Extension:
            total = model.total(extension, 2, BI)
            assert total == pytest.approx(
                model.object_update_cost
                + model.search(extension, 2, BI)
                + model.aup(extension, 2, BI)
            )

    def test_nosupport_total(self, model):
        assert model.nosupport_total() == 3.0

    def test_figure11_ordering(self, model):
        """ins_3: left << right; canonical expensive; full cheap."""
        left = model.total(Extension.LEFT, 3, BI)
        right = model.total(Extension.RIGHT, 3, BI)
        can = model.total(Extension.CANONICAL, 3, BI)
        full = model.total(Extension.FULL, 3, BI)
        assert left < right / 20
        assert full < can / 10

    def test_figure11_ins0_reversal(self, model):
        assert model.total(Extension.RIGHT, 0, BI) < model.total(
            Extension.LEFT, 0, BI
        )

    def test_figure13_size_sensitivity(self):
        """Canonical/right grow with object size; full flat (ins_1)."""
        small = UpdateCostModel(FIG11.with_size((100,) * 5))
        large = UpdateCostModel(FIG11.with_size((800,) * 5))
        assert large.total(Extension.CANONICAL, 1, BI) > small.total(
            Extension.CANONICAL, 1, BI
        )
        assert large.total(Extension.RIGHT, 1, BI) > small.total(
            Extension.RIGHT, 1, BI
        )
        assert large.total(Extension.FULL, 1, BI) == small.total(
            Extension.FULL, 1, BI
        )
