"""Application/system parameters (Figure 3) and their derivations."""

import pytest

from repro.costmodel import ApplicationProfile, SystemParameters
from repro.errors import CostModelError


class TestSystemParameters:
    def test_paper_defaults(self):
        system = SystemParameters()
        assert system.page_size == 4056
        assert system.oid_size == 8
        assert system.pp_size == 4
        assert system.btree_fanout == 338

    def test_validation(self):
        with pytest.raises(CostModelError):
            SystemParameters(page_size=0)


@pytest.fixture()
def profile():
    return ApplicationProfile(
        c=(1000, 5000, 10000, 50000, 100000),
        d=(900, 4000, 8000, 20000),
        fan=(2, 2, 3, 4),
        size=(500, 400, 300, 300, 100),
    )


class TestValidation:
    def test_n(self, profile):
        assert profile.n == 4

    def test_length_mismatches(self):
        with pytest.raises(CostModelError):
            ApplicationProfile(c=(1, 2, 3), d=(1,), fan=(1, 1))
        with pytest.raises(CostModelError):
            ApplicationProfile(c=(1, 2), d=(1,), fan=(1,), size=(1,))
        with pytest.raises(CostModelError):
            ApplicationProfile(c=(1, 2), d=(1,), fan=(1,), shar=(1, 1))

    def test_d_bounded_by_c(self):
        with pytest.raises(CostModelError):
            ApplicationProfile(c=(10, 10), d=(11,), fan=(1,))

    def test_positive_counts(self):
        with pytest.raises(CostModelError):
            ApplicationProfile(c=(0, 10), d=(0,), fan=(1,))
        with pytest.raises(CostModelError):
            ApplicationProfile(c=(10, 10), d=(1,), fan=(-1,))
        with pytest.raises(CostModelError):
            ApplicationProfile(c=(10, 10), d=(1,), fan=(1,), size=(0, 1))

    def test_single_step_minimum(self):
        with pytest.raises(CostModelError):
            ApplicationProfile(c=(10,), d=(), fan=())

    def test_index_guards(self, profile):
        with pytest.raises(CostModelError):
            profile.d_(4)
        with pytest.raises(CostModelError):
            profile.fan_(-1)
        with pytest.raises(CostModelError):
            profile.c_(5)
        with pytest.raises(CostModelError):
            profile.e_(0)

    def test_missing_sizes(self):
        bare = ApplicationProfile(c=(10, 10), d=(5,), fan=(1,))
        with pytest.raises(CostModelError):
            bare.size_(0)


class TestDerived:
    def test_ref_i(self, profile):
        assert profile.ref_(0) == 1800
        assert profile.ref_(3) == 80000

    def test_e_bounded_by_c(self, profile):
        for i in range(1, 5):
            assert 0 < profile.e_(i) <= profile.c_(i)

    def test_default_shar_at_least_one(self, profile):
        for i in range(4):
            assert profile.shar_(i) >= 1.0

    def test_sparse_references_barely_shared(self):
        sparse = ApplicationProfile(c=(10, 100000), d=(10,), fan=(1,))
        assert sparse.shar_(0) == pytest.approx(1.0, abs=1e-3)
        assert sparse.e_(1) == pytest.approx(10, rel=1e-3)

    def test_dense_references_hit_everyone(self):
        dense = ApplicationProfile(c=(10000, 10), d=(10000,), fan=(5,))
        assert dense.e_(1) == pytest.approx(10, rel=1e-6)

    def test_explicit_shar_overrides(self):
        explicit = ApplicationProfile(c=(10, 100), d=(10,), fan=(2,), shar=(2,))
        assert explicit.shar_(0) == 2
        assert explicit.e_(1) == 10  # 10*2/2

    def test_zero_d_zero_everything(self):
        empty = ApplicationProfile(c=(10, 10), d=(0,), fan=(2,))
        assert empty.shar_(0) == 0
        assert empty.e_(1) == 0
        assert empty.ref_(0) == 0

    def test_spread(self, profile):
        assert profile.spread_(0) == pytest.approx(
            profile.d_(0) / profile.e_(1)
        )


class TestTransforms:
    def test_with_d(self, profile):
        changed = profile.with_d((1, 1, 1, 1))
        assert changed.d == (1, 1, 1, 1)
        assert changed.c == profile.c

    def test_with_fan_and_size(self, profile):
        assert profile.with_fan((9, 9, 9, 9)).fan == (9, 9, 9, 9)
        assert profile.with_size((1,) * 5).size == (1.0,) * 5

    def test_profiles_hashable(self, profile):
        assert hash(profile) == hash(
            ApplicationProfile(profile.c, profile.d, profile.fan, profile.size)
        )
