"""Derived probabilistic quantities: bounds, limits, and monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import ApplicationProfile, DerivedQuantities
from repro.errors import CostModelError


@pytest.fixture()
def q():
    profile = ApplicationProfile(
        c=(1000, 5000, 10000, 50000, 100000),
        d=(900, 4000, 8000, 20000),
        fan=(2, 2, 3, 4),
    )
    return DerivedQuantities(profile)


class TestElementary:
    def test_p_a(self, q):
        assert q.p_a(0) == pytest.approx(0.9)
        assert q.p_a(3) == pytest.approx(0.4)

    def test_p_h_in_unit_interval(self, q):
        for i in range(1, 5):
            assert 0.0 <= q.p_h(i) <= 1.0


class TestRefByAndRef:
    def test_refby_base_case(self, q):
        assert q.refby(0, 1) == q.profile.e_(1)

    def test_refby_bounded(self, q):
        for i in range(0, 4):
            for j in range(i + 1, 5):
                assert 0.0 <= q.refby(i, j) <= q.profile.c_(j)

    def test_ref_base_case(self, q):
        assert q.ref(3, 4) == q.profile.d_(3)

    def test_ref_bounded_by_d(self, q):
        for i in range(0, 4):
            for j in range(i + 1, 5):
                assert 0.0 <= q.ref(i, j) <= q.profile.d_(i) + 1e-9

    def test_longer_paths_reach_fewer_or_equal(self, q):
        # Ref(i, j) weakly decreases as j grows: reaching further is harder.
        for i in range(0, 3):
            values = [q.ref(i, j) for j in range(i + 1, 5)]
            assert all(a >= b - 1e-6 for a, b in zip(values, values[1:]))

    def test_probabilities(self, q):
        assert q.p_refby(2, 2) == 1.0
        assert q.p_ref(4, 4) == 1.0
        for i in range(0, 4):
            for j in range(i, 5):
                assert 0.0 <= q.p_refby(i, j) <= 1.0
                assert 0.0 <= q.p_ref(i, j) <= 1.0

    def test_invalid_pairs(self, q):
        with pytest.raises(CostModelError):
            q.refby(2, 2)
        with pytest.raises(CostModelError):
            q.ref(3, 1)


class TestPathCounts:
    def test_adjacent_path_count(self, q):
        assert q.path(0, 1) == q.profile.ref_(0)

    def test_path_multiplies_fanout(self, q):
        assert q.path(0, 2) == pytest.approx(
            q.profile.ref_(0) * q.p_a(1) * q.profile.fan_(1)
        )

    def test_bounds_probabilities(self, q):
        for i in range(0, 4):
            for j in range(i, 5):
                assert 0.0 <= q.p_lb(i, j) <= 1.0
                assert 0.0 <= q.p_rb(i, j) <= 1.0
        assert q.p_lb(3, 3) == 1.0
        assert q.p_rb(3, 2) == 1.0


class TestThreeArgument:
    def test_k_zero(self, q):
        assert q.refby_k(0, 2, 0) == 0.0
        assert q.ref_k(0, 2, 0) == 0.0

    def test_monotone_in_k(self, q):
        for j in range(1, 5):
            previous = 0.0
            for k in (1, 5, 50, 500):
                value = q.refby_k(0, j, k)
                assert value >= previous - 1e-9
                previous = value

    def test_saturates_near_two_arg(self, q):
        # RefBy(i, j, d_i) approximates the two-argument RefBy(i, j).  The
        # paper's base cases differ (Eq. 6 charges all e_{i+1} targets,
        # Eq. 29 applies the collision estimate to the k sources), so the
        # k-version is a *lower* estimate of the same order of magnitude.
        saturated = q.refby_k(0, 3, q.profile.d_(0))
        assert 0.4 * q.refby(0, 3) <= saturated <= 1.05 * q.refby(0, 3)

    def test_ref_k_saturates(self, q):
        # A target subset of size c_j reaches essentially the plain Ref.
        assert q.ref_k(0, 4, q.profile.c_(4)) == pytest.approx(
            q.ref(0, 4), rel=0.05
        )


class TestPathProbabilities:
    def test_p_path_bounds(self, q):
        for l in range(0, 5):
            assert 0.0 <= q.p_path(l) <= 1.0
            assert q.p_nopath(l) == pytest.approx(1.0 - q.p_path(l))

    def test_endpoints(self, q):
        assert q.p_path(0) == pytest.approx(q.p_ref(0, 4))
        assert q.p_path(4) == pytest.approx(q.p_refby(0, 4))


# ----------------------------------------------------------------------
# hypothesis: bounds hold for arbitrary profiles
# ----------------------------------------------------------------------

counts = st.integers(1, 10_000)


@st.composite
def profiles(draw):
    n = draw(st.integers(1, 5))
    c = [draw(counts) for _ in range(n + 1)]
    d = [draw(st.integers(0, c[i])) for i in range(n)]
    fan = [draw(st.integers(0, 50)) for _ in range(n)]
    return ApplicationProfile(tuple(c), tuple(d), tuple(fan))


@settings(max_examples=150, deadline=None)
@given(profiles())
def test_all_quantities_well_behaved(profile):
    q = DerivedQuantities(profile)
    n = profile.n
    for i in range(n):
        assert 0.0 <= q.p_a(i) <= 1.0
    for i in range(1, n + 1):
        assert 0.0 <= q.p_h(i) <= 1.0
    for i in range(n):
        for j in range(i + 1, n + 1):
            assert 0.0 <= q.refby(i, j) <= profile.c_(j)
            assert 0.0 <= q.ref(i, j) <= profile.c_(i)
            assert q.path(i, j) >= 0.0
            assert 0.0 <= q.p_lb(i, j) <= 1.0
            assert 0.0 <= q.p_rb(i, j) <= 1.0
            for k in (1, 10):
                assert 0.0 <= q.refby_k(i, j, k) <= profile.c_(j)
                assert 0.0 <= q.ref_k(i, j, k) <= profile.c_(i)
