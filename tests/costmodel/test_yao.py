"""Yao's block-access formula: exact values, limits, monotonicity."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import yao


class TestExactValues:
    def test_degenerate(self):
        assert yao(0, 10, 100) == 0.0
        assert yao(5, 0, 100) == 0.0
        assert yao(5, 10, 0) == 0.0

    def test_single_page(self):
        assert yao(1, 1, 100) == 1.0
        assert yao(50, 1, 100) == 1.0

    def test_fetch_everything_touches_everything(self):
        assert yao(100, 10, 100) == 10.0

    def test_k_capped_at_n(self):
        assert yao(1000, 10, 100) == 10.0

    def test_one_record(self):
        # One record out of n on m pages: exactly one page.
        assert yao(1, 10, 100) == 1.0

    def test_known_value(self):
        # 10 of 100 records on 10 pages (10 per page):
        # E[pages] = 10 * (1 - C(90,10)/C(100,10)) ≈ 6.7 → ceil 7.
        expected = 10 * (1 - math.comb(90, 10) / math.comb(100, 10))
        assert yao(10, 10, 100) == math.ceil(expected)

    def test_more_than_complement_forces_all_pages(self):
        # k > n - n/m: some factor hits zero, every page touched.
        assert yao(95, 10, 100) == 10.0


class TestShape:
    def test_monotone_in_k(self):
        values = [yao(k, 50, 1000) for k in range(0, 1000, 37)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_bounded_by_pages_and_k(self):
        for k in (1, 7, 33, 150):
            value = yao(k, 50, 1000)
            assert 1.0 <= value <= 50.0
            assert value <= k  # can't touch more pages than records fetched

    def test_fractional_arguments_accepted(self):
        assert yao(2.5, 10.0, 100.0) >= yao(2, 10, 100) - 1.0


class TestFractionalInterpolation:
    """Regression: fractional ``k`` used to be rounded up to ``⌈k⌉`` steps,
    so ``yao(2.1, …)`` was priced as fetching three whole records."""

    def test_agrees_with_exact_formula_at_integers(self):
        for k in range(0, 60):
            assert yao(float(k), 17, 300) == yao(k, 17, 300)
            assert yao(k + 0.0, 17, 300) == float(int(yao(k, 17, 300)))

    def test_fractional_k_lies_between_neighbouring_integers(self):
        for k10 in range(11, 400, 7):  # k = 1.1, 1.8, 2.5, …
            k = k10 / 10.0
            lo, hi = yao(math.floor(k), 25, 500), yao(math.ceil(k), 25, 500)
            assert lo <= yao(k, 25, 500) <= hi

    def test_no_ceiling_overestimate(self):
        # The old code returned yao(3,...) for k=2.1; interpolation must
        # price it strictly below whenever the neighbours differ.
        lo, hi = yao(2, 40, 400), yao(3, 40, 400)
        assert lo < hi  # precondition: the step actually moves
        assert yao(2.1, 40, 400) < hi
        assert abs(yao(2.1, 40, 400) - (lo + 0.1 * (hi - lo))) < 1e-9

    def test_monotone_over_fine_fractional_grid(self):
        values = [yao(k / 4.0, 50, 1000) for k in range(0, 4000)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    @settings(max_examples=200)
    @given(
        st.floats(0.1, 900.0, allow_nan=False),
        st.floats(0.1, 900.0, allow_nan=False),
    )
    def test_interpolation_bracketed(self, k_a, k_b):
        a, b = sorted((k_a, k_b))
        assert yao(a, 30, 900) <= yao(b, 30, 900) + 1e-12


@settings(max_examples=200)
@given(
    st.floats(0, 1e6, allow_nan=False),
    st.floats(0, 1e4, allow_nan=False),
    st.floats(0, 1e6, allow_nan=False),
)
def test_always_bounded(k, m, n):
    value = yao(k, m, n)
    assert 0.0 <= value <= math.ceil(m) + 1e-9
    if k >= 1 and m >= 1 and n >= 1:
        assert value >= 1.0
