"""Operation mixes (section 6.4): validation, costs, break-evens."""

import pytest

from repro.asr import Decomposition, Extension
from repro.costmodel import (
    ApplicationProfile,
    MixCostModel,
    OperationMix,
    QuerySpec,
    UpdateSpec,
)
from repro.errors import CostModelError

FIG11 = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)

MIX = OperationMix(
    queries=(
        (0.5, QuerySpec(0, 4, "bw")),
        (0.25, QuerySpec(0, 3, "bw")),
        (0.25, QuerySpec(1, 2, "fw")),
    ),
    updates=((0.5, UpdateSpec(2)), (0.5, UpdateSpec(3))),
)

BI = Decomposition.binary(4)


@pytest.fixture()
def model():
    return MixCostModel(FIG11)


class TestValidation:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(CostModelError):
            OperationMix(queries=((0.5, QuerySpec(0, 1, "fw")),))
        with pytest.raises(CostModelError):
            OperationMix(
                queries=((1.0, QuerySpec(0, 1, "fw")),),
                updates=((0.7, UpdateSpec(0)),),
            )

    def test_empty_updates_allowed(self):
        OperationMix(queries=((1.0, QuerySpec(0, 1, "fw")),))

    def test_p_up_bounds(self, model):
        with pytest.raises(CostModelError):
            model.mix_cost(Extension.FULL, BI, MIX, 1.5)
        with pytest.raises(CostModelError):
            model.nosupport_cost(MIX, -0.1)

    def test_str_rendering(self):
        text = str(MIX)
        assert "Q0,4(bw)" in text and "ins_2" in text


class TestCosts:
    def test_linear_in_p_up(self, model):
        low = model.mix_cost(Extension.FULL, BI, MIX, 0.0)
        mid = model.mix_cost(Extension.FULL, BI, MIX, 0.5)
        high = model.mix_cost(Extension.FULL, BI, MIX, 1.0)
        assert mid == pytest.approx((low + high) / 2)

    def test_endpoints(self, model):
        assert model.mix_cost(Extension.FULL, BI, MIX, 0.0) == pytest.approx(
            model.query_mix_cost(Extension.FULL, BI, MIX)
        )
        assert model.mix_cost(Extension.FULL, BI, MIX, 1.0) == pytest.approx(
            model.update_mix_cost(Extension.FULL, BI, MIX)
        )

    def test_nosupport_update_is_object_write_only(self, model):
        assert model.nosupport_cost(MIX, 1.0) == pytest.approx(3.0)

    def test_normalized_baseline_is_one(self, model):
        assert model.normalized_cost(Extension.FULL, BI, MIX, 0.5) == pytest.approx(
            model.mix_cost(Extension.FULL, BI, MIX, 0.5)
            / model.nosupport_cost(MIX, 0.5)
        )

    def test_query_dominated_mixes_favour_support(self, model):
        for extension in (Extension.FULL, Extension.LEFT):
            assert model.normalized_cost(extension, BI, MIX, 0.05) < 0.05


class TestBreakEven:
    def test_left_vs_full_crossover(self, model):
        point = model.break_even(
            (Extension.LEFT, BI), (Extension.FULL, BI), MIX
        )
        assert point is not None and 0.02 < point < 0.45
        # Left wins below, loses above.
        below = point / 2
        above = min(1.0, point * 2)
        assert model.mix_cost(Extension.LEFT, BI, MIX, below) <= model.mix_cost(
            Extension.FULL, BI, MIX, below
        )
        assert model.mix_cost(Extension.LEFT, BI, MIX, above) >= model.mix_cost(
            Extension.FULL, BI, MIX, above
        )

    def test_nosupport_vs_full_near_one(self, model):
        point = model.break_even(None, (Extension.FULL, BI), MIX)
        assert point is not None and point > 0.97

    def test_dominated_pair_returns_none(self, model):
        # Full dominates canonical for this mix across all of [0, 1].
        point = model.break_even(
            (Extension.FULL, BI), (Extension.CANONICAL, BI), MIX
        )
        assert point is None
