"""Cardinality estimates (section 4.2): structure and empirical accuracy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import Extension, build_extension
from repro.costmodel import (
    ApplicationProfile,
    extension_cardinality,
    partition_cardinality,
)
from repro.errors import CostModelError
from repro.workload import ChainGenerator, measure_profile

FIG4 = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
)


class TestStructure:
    def test_canonical_is_path_count_when_anchored(self):
        from repro.costmodel.derived import derived_for

        q = derived_for(FIG4)
        assert extension_cardinality(FIG4, Extension.CANONICAL) == pytest.approx(
            q.p_refby(0, 0) * q.path(0, 4) * q.p_ref(4, 4)
        )

    def test_lattice_ordering(self):
        can = extension_cardinality(FIG4, Extension.CANONICAL)
        left = extension_cardinality(FIG4, Extension.LEFT)
        right = extension_cardinality(FIG4, Extension.RIGHT)
        full = extension_cardinality(FIG4, Extension.FULL)
        assert can <= left <= full
        assert can <= right <= full

    def test_partitions_smaller_than_whole_for_canonical(self):
        whole = partition_cardinality(FIG4, Extension.CANONICAL, 0, 4)
        for i in range(4):
            part = partition_cardinality(FIG4, Extension.CANONICAL, i, i + 1)
            assert part <= whole + 1e-6

    def test_invalid_partition(self):
        with pytest.raises(CostModelError):
            partition_cardinality(FIG4, Extension.FULL, 2, 2)
        with pytest.raises(CostModelError):
            partition_cardinality(FIG4, Extension.FULL, 0, 9)

    def test_all_nonnegative(self):
        for extension in Extension:
            for i in range(4):
                for j in range(i + 1, 5):
                    assert partition_cardinality(FIG4, extension, i, j) >= 0.0

    def test_full_d_collapses_extensions(self):
        saturated = ApplicationProfile(
            c=(100, 100, 100), d=(100, 100), fan=(1, 1), shar=(1, 1)
        )
        values = {
            extension: extension_cardinality(saturated, extension)
            for extension in Extension
        }
        spread = max(values.values()) / min(values.values())
        assert spread < 1.2  # Figure 5's convergence claim

    def test_zero_d_zero_cardinality(self):
        empty = ApplicationProfile(c=(10, 10), d=(0,), fan=(2,))
        for extension in Extension:
            assert extension_cardinality(empty, extension) == 0.0


class TestEmpiricalAccuracy:
    """Model estimates vs actual extension sizes on generated worlds."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_within_tolerance(self, seed):
        profile = ApplicationProfile(
            c=(40, 80, 160, 320),
            d=(36, 64, 128),
            fan=(2, 3, 2),
            size=(400, 300, 200, 100),
        )
        generated = ChainGenerator(seed=seed).generate(profile)
        measured = measure_profile(generated)
        for extension in Extension:
            actual = len(build_extension(generated.db, generated.path, extension))
            estimate = partition_cardinality(measured, extension, 0, measured.n)
            assert actual > 0
            assert abs(estimate - actual) / actual < 0.4, (extension, actual, estimate)


@st.composite
def small_profiles(draw):
    n = draw(st.integers(1, 4))
    c = [draw(st.integers(2, 500)) for _ in range(n + 1)]
    d = [draw(st.integers(0, c[i])) for i in range(n)]
    fan = [draw(st.integers(1, 5)) for _ in range(n)]
    return ApplicationProfile(tuple(c), tuple(d), tuple(fan))


@settings(max_examples=100, deadline=None)
@given(small_profiles())
def test_lattice_holds_generally(profile):
    can = extension_cardinality(profile, Extension.CANONICAL)
    left = extension_cardinality(profile, Extension.LEFT)
    right = extension_cardinality(profile, Extension.RIGHT)
    full = extension_cardinality(profile, Extension.FULL)
    tolerance = 1e-6 + 0.01 * full
    assert can <= left + tolerance
    assert can <= right + tolerance
    assert left <= full + tolerance
    assert right <= full + tolerance
