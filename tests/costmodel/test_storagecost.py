"""Storage costs and tree-shape estimates (Eqs. 13-28)."""

import math

import pytest

from repro.asr import Decomposition, Extension
from repro.costmodel import ApplicationProfile, StorageModel, SystemParameters
from repro.errors import CostModelError

FIG4 = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)


@pytest.fixture()
def storage():
    return StorageModel(FIG4)


class TestTupleGeometry:
    def test_ats(self, storage):
        assert storage.ats(0, 4) == 40
        assert storage.ats(3, 4) == 16

    def test_atpp(self, storage):
        assert storage.atpp(0, 4) == 4056 // 40

    def test_as_bytes_consistent(self, storage):
        for extension in Extension:
            count = storage.count(extension, 0, 4)
            assert storage.as_bytes(extension, 0, 4) == count * 40

    def test_ap_is_ceiling(self, storage):
        for extension in Extension:
            count = storage.count(extension, 0, 4)
            assert storage.ap(extension, 0, 4) == math.ceil(
                count / storage.atpp(0, 4)
            )


class TestAggregates:
    def test_relation_bytes_additive(self, storage):
        dec = Decomposition.of(0, 2, 4)
        total = storage.relation_bytes(Extension.FULL, dec)
        assert total == pytest.approx(
            storage.as_bytes(Extension.FULL, 0, 2)
            + storage.as_bytes(Extension.FULL, 2, 4)
        )

    def test_wrong_span_rejected(self, storage):
        with pytest.raises(CostModelError):
            storage.relation_bytes(Extension.FULL, Decomposition.of(0, 2))

    def test_figure4_shape(self, storage):
        """Canonical/left drastically smaller; binary halves storage."""
        binary, nodec = Decomposition.binary(4), Decomposition.none(4)
        for extension in (Extension.CANONICAL, Extension.LEFT):
            assert storage.relation_bytes(extension, nodec) < storage.relation_bytes(
                Extension.FULL, nodec
            ) / 4
        for extension in Extension:
            ratio = storage.relation_bytes(extension, nodec) / storage.relation_bytes(
                extension, binary
            )
            assert ratio > 1.4


class TestTreeShape:
    def test_ht_small_relation(self):
        tiny = ApplicationProfile(c=(4, 4), d=(4,), fan=(1,), size=(100, 100))
        storage = StorageModel(tiny)
        assert storage.ht(Extension.CANONICAL, 0, 1) <= 1

    def test_ht_grows_with_pages(self, storage):
        pages = storage.ap(Extension.FULL, 0, 4)
        height = storage.ht(Extension.FULL, 0, 4)
        fanout = storage.system.btree_fanout
        assert fanout ** height >= pages

    def test_pg_matches_printed_two_level_case(self, storage):
        for extension in Extension:
            for i, j in [(0, 4), (0, 2), (2, 4)]:
                height = storage.ht(extension, i, j)
                pg = storage.pg(extension, i, j)
                if height == 2:
                    assert pg == 1 + math.ceil(
                        storage.ap(extension, i, j) / storage.system.btree_fanout
                    )
                elif height == 1:
                    assert pg == 1
                elif height == 0:
                    assert pg == 0

    def test_empty_relation_shape(self):
        empty = ApplicationProfile(c=(10, 10), d=(0,), fan=(1,), size=(100, 100))
        storage = StorageModel(empty)
        assert storage.ap(Extension.CANONICAL, 0, 1) == 0
        assert storage.ht(Extension.CANONICAL, 0, 1) == 0
        assert storage.pg(Extension.CANONICAL, 0, 1) == 0
        assert storage.nlp(Extension.CANONICAL, 0, 1) == 0


class TestLeafPagesPerKey:
    def test_all_positive_for_populated_relations(self, storage):
        for extension in Extension:
            for i, j in [(0, 4), (0, 1), (3, 4), (1, 3)]:
                assert storage.nlp(extension, i, j) >= 1
                assert storage.rnlp(extension, i, j) >= 1

    def test_nlp_small_relative_to_pages(self, storage):
        # Per-key leaf pages cannot exceed the partition's total pages.
        for extension in Extension:
            assert storage.nlp(extension, 0, 4) <= storage.ap(extension, 0, 4)
            assert storage.rnlp(extension, 0, 4) <= storage.ap(extension, 0, 4)


class TestObjectPages:
    def test_opp_and_op(self, storage):
        assert storage.opp(0) == 4056 // 500
        assert storage.op(0) == math.ceil(1000 / (4056 // 500))

    def test_huge_objects_one_per_page(self):
        profile = ApplicationProfile(
            c=(10, 10), d=(5,), fan=(1,), size=(9000, 100)
        )
        storage = StorageModel(profile)
        assert storage.opp(0) == 1
        assert storage.op(0) == 10

    def test_custom_system_parameters(self):
        storage = StorageModel(FIG4, SystemParameters(page_size=1024))
        assert storage.atpp(0, 4) == 1024 // 40
