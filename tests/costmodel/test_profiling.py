"""profile_from_database: measuring Figure 3 parameters from live worlds."""

import pytest

from repro.costmodel import profile_from_database
from repro.workload import ChainGenerator, measure_profile
from repro.costmodel import ApplicationProfile


class TestCompanyWorld:
    def test_counts(self, company_world):
        db, path, _o = company_world
        profile = profile_from_database(db, path)
        assert profile.n == 3
        assert profile.c[0] == len(db.extent("Division"))
        assert profile.c[1] == len(db.extent("Product"))
        assert profile.c[2] == len(db.extent("BasePart"))

    def test_defined_counts(self, company_world):
        db, path, _o = company_world
        profile = profile_from_database(db, path)
        assert profile.d[0] == 2  # Auto, Truck define Manufactures
        assert profile.d[1] == 2  # 560 SEC and Sausage define Composition
        assert profile.d[2] == 2  # both BaseParts have Names

    def test_atomic_terminal_counts_values(self, company_world):
        db, path, o = company_world
        profile = profile_from_database(db, path)
        assert profile.c[3] == 2  # "Door" and "Pepper"
        db.set_attr(o["pepper"], "Name", "Door")
        assert profile_from_database(db, path).c[3] == 1

    def test_fan_and_shar(self, company_world):
        db, path, _o = company_world
        profile = profile_from_database(db, path)
        # Manufactures: {sec} and {sec, trak} -> 3 refs / 2 owners.
        assert profile.fan[0] == pytest.approx(1.5)
        # sec referenced by both sets: shar = 3 refs / 2 targets.
        assert profile.shar[0] == pytest.approx(1.5)

    def test_sizes_from_mapping(self, company_world):
        db, path, _o = company_world
        profile = profile_from_database(
            db, path, {"Division": 300, "Product": 200}, default_size=50
        )
        assert profile.size[0] == 300
        assert profile.size[1] == 200
        assert profile.size[2] == 50  # default


class TestAgainstGeneratorMeasurement:
    def test_matches_measure_profile(self):
        base = ApplicationProfile(
            c=(20, 40, 80), d=(18, 32), fan=(2, 2), size=(300, 200, 100)
        )
        generated = ChainGenerator(seed=13).generate(base)
        via_generator = measure_profile(generated)
        via_generic = profile_from_database(
            generated.db,
            generated.path,
            {f"T{i}": int(base.size[i]) for i in range(3)},
        )
        assert via_generic.c == via_generator.c
        assert via_generic.d == via_generator.d
        assert via_generic.fan == pytest.approx(via_generator.fan)
        assert via_generic.shar == pytest.approx(via_generator.shar)

    def test_usable_by_cost_model(self, company_world):
        from repro.costmodel import QueryCostModel

        db, path, _o = company_world
        profile = profile_from_database(db, path, default_size=120)
        model = QueryCostModel(profile)
        assert model.qnas(0, path.n, "bw") >= 1.0
