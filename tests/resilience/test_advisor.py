"""The background advisor loop: gates, dry-run, rollback accounting."""

import time

import pytest

from repro.errors import CostModelError
from repro.resilience import AdvisorLoop
from repro.telemetry import MetricsRegistry


class FakeExtension:
    def __init__(self, value):
        self.value = value


class FakeASR:
    def __init__(self, extension="full", decomposition="(0, 4)"):
        self.extension = FakeExtension(extension)
        self.decomposition = decomposition


class FakeChoice:
    def __init__(self, extension, cost, decomposition="(0, 2, 4)"):
        self.extension = extension
        self.cost = cost
        self.decomposition = decomposition


class FakeDecision:
    def __init__(self, current_cost, best, retuned):
        self.current_cost = current_cost
        self.best = best
        self.retuned = retuned

    def describe(self):
        return f"current {self.current_cost:.1f}; best {self.best.cost:.1f}"


class FakeRecorder:
    def __init__(self, total=1000):
        self.total_operations = total
        self.resets = 0

    def reset(self):
        self.resets += 1
        self.total_operations = 0


class FakeDesigner:
    """Scripted designer: each recommend() pops the next decision."""

    def __init__(self, decisions, fail_apply=False):
        self.decisions = list(decisions)
        self.recorder = FakeRecorder()
        self.asr = FakeASR()
        self.applied = []
        self.fail_apply = fail_apply

    def recommend(self):
        decision = self.decisions.pop(0)
        if isinstance(decision, Exception):
            raise decision
        return decision

    def apply(self, decision):
        if self.fail_apply:
            raise RuntimeError("simulated build failure")
        self.applied.append(decision)
        self.asr = FakeASR("left", str(decision.best.decomposition))
        return True


def switch_decision(gain=2.0, best_cost=10.0):
    return FakeDecision(
        current_cost=best_cost * gain,
        best=FakeChoice("left", best_cost),
        retuned=True,
    )


class TestGates:
    def test_evidence_floor(self):
        designer = FakeDesigner([switch_decision()])
        designer.recorder.total_operations = 3
        loop = AdvisorLoop(designer, min_ops=32)
        assert loop.sweep() is False
        assert loop.rejected == {"insufficient-ops": 1}
        assert len(designer.decisions) == 1  # recommend never called

    def test_force_skips_evidence_floor(self):
        designer = FakeDesigner([switch_decision()])
        designer.recorder.total_operations = 0
        loop = AdvisorLoop(designer, min_ops=32)
        assert loop.sweep(force=True) is True

    def test_empty_recorder_maps_to_insufficient_ops(self):
        designer = FakeDesigner([CostModelError("no operations recorded yet")])
        loop = AdvisorLoop(designer)
        assert loop.sweep() is False
        assert loop.rejected == {"insufficient-ops": 1}

    def test_recommend_crash_is_counted_not_raised(self):
        designer = FakeDesigner([RuntimeError("boom")])
        loop = AdvisorLoop(designer)
        assert loop.sweep() is False
        assert loop.rejected == {"recommend-failed": 1}

    def test_baseline_refused(self):
        decision = FakeDecision(20.0, FakeChoice(None, 2.0), retuned=True)
        loop = AdvisorLoop(FakeDesigner([decision]))
        assert loop.sweep() is False
        assert loop.rejected == {"baseline": 1}

    def test_not_better_kept(self):
        decision = FakeDecision(10.0, FakeChoice("left", 9.0), retuned=False)
        loop = AdvisorLoop(FakeDesigner([decision]))
        assert loop.sweep() is False
        assert loop.rejected == {"not-better": 1}

    def test_hysteresis_threshold(self):
        loop = AdvisorLoop(FakeDesigner([switch_decision(gain=1.1)]), threshold=1.2)
        assert loop.sweep() is False
        assert loop.rejected == {"below-threshold": 1}

    def test_cooldown_paces_retunes(self):
        clock = {"now": 100.0}
        designer = FakeDesigner([switch_decision(), switch_decision()])
        loop = AdvisorLoop(
            designer, interval=1.0, cooldown=10.0, time_fn=lambda: clock["now"]
        )
        assert loop.sweep() is True
        designer.recorder.total_operations = 1000  # re-earn the evidence floor
        clock["now"] += 5.0  # inside the cooldown window
        assert loop.sweep() is False
        assert loop.rejected == {"cooldown": 1}
        assert len(designer.applied) == 1

    def test_cooldown_expires(self):
        clock = {"now": 100.0}
        designer = FakeDesigner([switch_decision(), switch_decision()])
        loop = AdvisorLoop(designer, cooldown=10.0, time_fn=lambda: clock["now"])
        assert loop.sweep() is True
        designer.recorder.total_operations = 1000
        clock["now"] += 11.0
        assert loop.sweep() is True
        assert len(designer.applied) == 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AdvisorLoop(FakeDesigner([]), threshold=0.9)


class TestApply:
    def test_applied_retune_resets_recorder_and_counts(self):
        registry = MetricsRegistry()
        designer = FakeDesigner([switch_decision()])
        loop = AdvisorLoop(designer, registry=registry)
        assert loop.sweep() is True
        assert loop.retunes == 1
        assert designer.recorder.resets == 1
        assert designer.applied
        assert registry.counter_value("advisor.retunes") == 1
        assert registry.counter_value("advisor.sweeps") == 1
        assert registry.gauge_value("advisor.predicted_gain") == pytest.approx(2.0)
        entry = loop.describe()["history"][-1]
        assert entry["applied"] is True
        assert entry["from"]["extension"] == "full"
        assert entry["to"]["extension"] == "left"

    def test_build_failure_counts_and_keeps_sweeping(self):
        registry = MetricsRegistry()
        designer = FakeDesigner(
            [switch_decision(), switch_decision()], fail_apply=True
        )
        loop = AdvisorLoop(designer, registry=registry)
        assert loop.sweep() is False
        assert loop.rejected == {"build-failed": 1}
        assert loop.retunes == 0
        assert designer.recorder.resets == 0  # evidence kept for the retry
        designer.fail_apply = False
        assert loop.sweep() is True

    def test_dry_run_decides_without_acting(self):
        designer = FakeDesigner([switch_decision()])
        loop = AdvisorLoop(designer, dry_run=True)
        assert loop.sweep() is False
        assert loop.rejected == {"dry-run": 1}
        assert not designer.applied
        entry = loop.describe()["history"][-1]
        assert entry["applied"] is False


class TestCalibration:
    class FakeDrift:
        def __init__(self, entries):
            self.entries = entries

        def report(self):
            return {"by_key": self.entries}

    def test_current_extension_ratio_scales_gain(self):
        drift = self.FakeDrift(
            [
                {"extension": "full", "geo_mean_ratio": 0.5, "count": 10},
                {"extension": "left", "geo_mean_ratio": 9.0, "count": 99},
            ]
        )
        designer = FakeDesigner([switch_decision(gain=2.0)])
        loop = AdvisorLoop(designer, threshold=1.2, drift=drift)
        # Only the *current* design's (full) ratio applies: 2.0 * 0.5 < 1.2.
        assert loop.sweep() is False
        assert loop.rejected == {"below-threshold": 1}

    def test_no_matching_entries_means_no_calibration(self):
        drift = self.FakeDrift(
            [{"extension": "right", "geo_mean_ratio": 0.1, "count": 5}]
        )
        loop = AdvisorLoop(
            FakeDesigner([switch_decision(gain=2.0)]), threshold=1.2, drift=drift
        )
        assert loop.sweep() is True


class TestLifecycle:
    def test_background_loop_sweeps_and_stops(self):
        designer = FakeDesigner([switch_decision() for _ in range(500)])
        loop = AdvisorLoop(designer, interval=0.01, cooldown=0.0).start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and loop.retunes < 1:
                time.sleep(0.005)
        finally:
            loop.stop()
        assert loop.retunes >= 1
        assert not loop.running

    def test_double_start_rejected(self):
        loop = AdvisorLoop(FakeDesigner([]), interval=0.01).start()
        try:
            with pytest.raises(RuntimeError):
                loop.start()
        finally:
            loop.stop()

    def test_describe_is_json_shaped(self):
        loop = AdvisorLoop(FakeDesigner([switch_decision()]))
        loop.sweep()
        described = loop.describe()
        assert described["retunes"] == 1
        assert described["design"] == {
            "extension": "left",
            "decomposition": "(0, 2, 4)",
        }
        assert described["recorded_ops"] == 0  # reset on the applied retune
        assert described["last_decision"]["predicted_gain"] == pytest.approx(2.0)
