"""Per-ASR circuit breakers: open on fault evidence, close via a probe."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import BreakerBoard, CircuitBreaker
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.telemetry import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("threshold", 3)
    kwargs.setdefault("cooldown_s", 1.0)
    return CircuitBreaker("P [full]", time_fn=clock, **kwargs), clock


class TestStateMachine:
    def test_opens_at_threshold(self):
        b, _ = breaker()
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED and b.allow()
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()

    def test_cooldown_admits_exactly_one_probe(self):
        b, clock = breaker()
        for _ in range(3):
            b.record_failure()
        clock.advance(0.5)
        assert not b.allow()  # still cooling down
        clock.advance(0.6)
        assert b.allow()  # the probe
        assert b.state == HALF_OPEN
        assert not b.allow()  # no second probe inside the window

    def test_probe_success_closes_and_clears(self):
        b, clock = breaker()
        for _ in range(3):
            b.record_failure()
        clock.advance(1.1)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.failures == 0
        assert b.allow()

    def test_probe_failure_reopens_immediately(self):
        b, clock = breaker()
        for _ in range(3):
            b.record_failure()
        clock.advance(1.1)
        assert b.allow()
        b.record_failure()  # one failed probe, not `threshold` of them
        assert b.state == OPEN
        assert not b.allow()
        clock.advance(1.1)
        assert b.allow()  # the next cooldown earns another probe

    def test_stuck_probe_expires_after_another_cooldown(self):
        # A prober that dies without reporting must not wedge the
        # breaker half-open forever.
        b, clock = breaker()
        for _ in range(3):
            b.record_failure()
        clock.advance(1.1)
        assert b.allow()
        clock.advance(1.1)
        assert b.allow()  # replacement probe

    def test_routine_closed_successes_do_not_reset_failures(self):
        # The deliberate asymmetry: under a storm's fault/heal/query
        # rhythm the count must keep accumulating, or the breaker
        # never opens.  Only a half-open probe clears it.
        b, _ = breaker()
        b.record_failure()
        b.record_failure()
        assert b.failures == 2

    def test_transitions_are_counted(self):
        b, clock = breaker()
        for _ in range(3):
            b.record_failure()
        clock.advance(1.1)
        b.allow()
        b.record_success()
        description = b.describe()
        assert description["transitions"] == {
            "closed->open": 1,
            "open->half-open": 1,
            "half-open->closed": 1,
        }

    def test_reset_force_closes(self):
        b, _ = breaker()
        for _ in range(3):
            b.record_failure()
        b.reset()
        assert b.state == CLOSED and b.failures == 0 and b.allow()

    def test_gauges_and_transition_counters_published(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        b = CircuitBreaker(
            "P [full]", threshold=1, cooldown_s=1.0, registry=registry, time_fn=clock
        )
        b.record_failure()
        assert registry.gauge_value("breaker.state", asr="P [full]") == 1.0
        assert (
            registry.counter_value(
                "breaker.transitions", asr="P [full]", **{"from": "closed", "to": "open"}
            )
            == 1
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown_s=-1.0)


# One symbolic event stream, replayed against the real breaker: after
# any prefix of failures/successes/probes/time-steps the state must
# remain sane and `allow()` must agree with the state's contract.
EVENTS = st.lists(
    st.sampled_from(["fail", "success", "allow", "tick"]), min_size=0, max_size=60
)


class TestBreakerProperties:
    @settings(max_examples=200, deadline=None)
    @given(events=EVENTS, threshold=st.integers(min_value=1, max_value=5))
    def test_state_invariants_hold_under_any_event_stream(self, events, threshold):
        clock = FakeClock()
        b = CircuitBreaker("p", threshold=threshold, cooldown_s=1.0, time_fn=clock)
        for event in events:
            if event == "fail":
                b.record_failure()
            elif event == "success":
                b.record_success()
            elif event == "allow":
                b.allow()
            else:
                clock.advance(0.4)
            assert b.state in (CLOSED, OPEN, HALF_OPEN)
            assert b.failures >= 0
            if b.state == CLOSED:
                # A closed breaker is always below threshold (reaching
                # it opens immediately) and always admits.
                assert b.failures < threshold
                assert b.allow()
            total = sum(b.transitions.values())
            entered_open = b.transitions.get((CLOSED, OPEN), 0) + b.transitions.get(
                (HALF_OPEN, OPEN), 0
            )
            left_open = b.transitions.get((OPEN, HALF_OPEN), 0)
            assert left_open <= entered_open  # can't leave more than entered
            assert total >= 0

    @settings(max_examples=100, deadline=None)
    @given(failures=st.integers(min_value=0, max_value=12))
    def test_open_iff_threshold_reached(self, failures):
        b, _ = breaker(threshold=4)
        for _ in range(failures):
            b.record_failure()
        assert (b.state == OPEN) == (failures >= 4)


class FakeASR:
    def __init__(self, path="Division.Manufactures", extension="full"):
        self.path = path
        self.extension = type("Ext", (), {"value": extension})()


class TestBreakerBoard:
    def test_lazy_per_asr_breakers_keyed_by_identity(self):
        board = BreakerBoard()
        a, b = FakeASR("P1"), FakeASR("P2")
        assert board.breaker_for(a) is board.breaker_for(a)
        assert board.breaker_for(a) is not board.breaker_for(b)
        assert board.breaker_for(a).name == "P1 [full]"

    def test_quarantine_listener_counts_failures(self):
        board = BreakerBoard(threshold=2)
        asr = FakeASR()
        board.on_asr_state(asr, "quarantined")
        board.on_asr_state(asr, "consistent")  # not evidence either way
        board.on_asr_state(asr, "quarantined")
        assert board.breaker_for(asr).state == OPEN
        assert not board.allow_query(asr)

    def test_routine_success_is_not_forwarded(self):
        board = BreakerBoard(threshold=3)
        asr = FakeASR()
        board.record_failure(asr)
        board.record_failure(asr)
        board.record_success(asr)  # closed: a routine query success
        assert board.breaker_for(asr).failures == 2

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=1, cooldown_s=1.0, time_fn=clock)
        asr = FakeASR()
        board.record_failure(asr)
        assert not board.allow_query(asr)
        clock.advance(1.1)
        assert board.allow_query(asr)  # the probe
        board.record_success(asr)
        assert board.breaker_for(asr).state == CLOSED

    def test_describe_rolls_up_open_set_and_transitions(self):
        board = BreakerBoard(threshold=1)
        asr = FakeASR("P9")
        board.record_failure(asr)
        description = board.describe()
        assert description["open"] == ["P9 [full]"]
        assert description["total_transitions"] == 1
        assert "P9 [full]" in description["breakers"]
