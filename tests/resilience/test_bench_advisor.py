"""`repro bench advisor`: the self-tuning soak, as a library and from the CLI."""

import json

from repro.bench.advisor import AdvisorBenchConfig, run_advisor, write_report
from repro.bench.serve import ServeConfig

from tests.test_cli import run_cli

# The serve-world defaults are load-bearing: the soak's phase mixes were
# chosen against the default profile's cost landscape (see the module
# docstring of repro.bench.advisor).  Only the wall-clock cap shrinks.
FAST_SOAK = AdvisorBenchConfig(
    serve=ServeConfig(seed=7, io_micros=20.0, max_spans=64),
    phase_seconds=15.0,
)


class TestRunAdvisor:
    def test_soak_converges_and_proves_the_epoch(self, tmp_path):
        out = tmp_path / "BENCH_advisor.json"
        report = run_advisor(
            AdvisorBenchConfig(**{**FAST_SOAK.__dict__, "out": str(out)})
        )
        write_report(report, str(out))
        assert report["benchmark"] == "advisor"
        # The acceptance gates of the CI advisor-smoke job.
        assert report["ok"], report
        assert all(phase["converged"] for phase in report["phases"])
        assert all(
            phase["decisive_sweeps"] <= FAST_SOAK.max_decisive_sweeps
            for phase in report["phases"]
            if "decisive_sweeps" in phase
        )
        assert report["rollback"]["ok"]
        assert report["rollback"]["epoch_before"] == report["rollback"]["epoch_after"]
        proof = report["epoch_proof"]
        assert proof["single_bump"] and proof["warmed_cached"]
        assert proof["post_retune_miss"] and proof["rows_stable"]
        assert report["healthz"]["all_ok"]
        assert report["end_state"]["consistent"]
        assert report["end_state"]["accounting_ok"]
        assert report["advisor"]["retunes"] >= 3
        # Round-trips as JSON, and the config is replayable from it.
        persisted = json.loads(out.read_text())
        assert persisted["config"]["advisor_threshold"] == FAST_SOAK.advisor_threshold
        assert persisted["config"]["seed"] == 7


class TestAdvisorCLI:
    def test_bench_advisor_prints_verdicts_and_exits_zero(self, tmp_path):
        out_path = tmp_path / "BENCH_advisor.json"
        code, text = run_cli(
            "bench",
            "advisor",
            "--seed",
            "7",
            "--io-micros",
            "20",
            "--phase-seconds",
            "15",
            "--out",
            str(out_path),
        )
        assert code == 0, text
        assert "phase query-heavy: converged" in text
        assert "phase update-heavy: converged" in text
        assert "rollback: build failure left the old design serving" in text
        assert "epoch proof: retune bumped" in text
        assert "post-retune plan recompiled" in text
        assert "healthz:" in text and "all 200: True" in text
        assert out_path.exists()
        assert json.loads(out_path.read_text())["ok"] is True

    def test_bench_serve_rejects_advisor_misuse(self, tmp_path):
        # The advisor flags belong to `serve` and `bench advisor`; plain
        # `bench serve` has no loop to arm, and says so.
        code, text = run_cli(
            "bench", "serve", "--advisor-interval", "0.5", "--ops", "8",
            "--out", str(tmp_path / "x.json"),
        )
        assert code == 2
        assert "bench advisor" in text
