"""`repro bench chaos`: the SLO-gated soak, as a library and from the CLI."""

import json

from repro.bench.chaos import ChaosBenchConfig, run_chaos, write_report
from repro.bench.serve import ServeConfig
from repro.resilience import ChaosConfig, RecoveryPolicy

from tests.test_cli import run_cli

FAST_SOAK = dict(
    serve=ServeConfig(
        clients=2, ops=32, seed=7, capacity=64, io_micros=20.0, max_spans=64
    ),
    chaos=ChaosConfig(rate=0.5, burst=2, seed=7),
    recovery=RecoveryPolicy(backoff_s=0.001, jitter=0.25),
    healer_interval=0.01,
    soak_ops=60,
    min_recoveries=1,
    soak_seconds=30.0,
    settle_seconds=10.0,
)


class TestRunChaos:
    def test_soak_meets_the_slo_gate(self, tmp_path):
        out = tmp_path / "BENCH_chaos.json"
        report = run_chaos(ChaosBenchConfig(out=str(out), **FAST_SOAK))
        write_report(report, str(out))
        assert report["benchmark"] == "chaos"
        # The acceptance gate of the CI chaos-soak-smoke job.
        assert report["end_state"]["consistent"]
        assert report["end_state"]["quarantined"] == []
        assert report["end_state"]["accounting_ok"]
        assert report["end_state"]["drain_errors"] == []
        assert report["healthz"]["status"] == 200
        assert report["healer"]["recoveries"] >= 1
        assert report["chaos"]["strikes"] >= 1
        assert report["chaos"]["faults_injected"] >= 1
        assert report["latency_ms"]["p99_ms"] >= report["latency_ms"]["p50_ms"]
        assert report["healer"]["mttr_ms"]["count"] >= 1
        assert "total_transitions" in report["breakers"]
        # Round-trips as JSON, and the config is replayable from it.
        persisted = json.loads(out.read_text())
        assert persisted["config"]["seed"] == 7
        assert persisted["config"]["chaos_rate"] == 0.5

    def test_soak_runs_on_the_async_core(self, tmp_path):
        config = dict(FAST_SOAK)
        config["serve"] = ServeConfig(
            clients=2,
            ops=32,
            seed=7,
            capacity=64,
            io_micros=20.0,
            max_spans=64,
            use_async=True,
            max_inflight=16,
            op_deadline_ms=500.0,
        )
        out = tmp_path / "BENCH_chaos_async.json"
        report = run_chaos(ChaosBenchConfig(out=str(out), **config))
        assert report["daemon"]["core"] == "async"
        assert report["end_state"]["consistent"]
        assert report["healer"]["recoveries"] >= 1
        assert report["config"]["op_deadline_ms"] == 500.0


class TestChaosCLI:
    def test_bench_chaos_prints_headline_and_exits_zero(self, tmp_path):
        out_path = tmp_path / "BENCH_chaos.json"
        code, text = run_cli(
            "bench",
            "chaos",
            "--clients",
            "2",
            "--ops",
            "32",
            "--seed",
            "7",
            "--io-micros",
            "20",
            "--chaos-rate",
            "0.5",
            "--chaos-burst",
            "2",
            "--healer-interval",
            "0.01",
            "--soak-ops",
            "60",
            "--soak-seconds",
            "30",
            "--settle-seconds",
            "10",
            "--out",
            str(out_path),
        )
        assert code == 0, text
        assert "chaos soak" in text
        assert "healer:" in text
        assert "breakers:" in text
        assert "healthz 200" in text
        assert out_path.exists()

    def test_bench_serve_rejects_chaos_flags(self, tmp_path):
        code, text = run_cli(
            "bench", "serve", "--chaos-rate", "0.5", "--ops", "8",
            "--out", str(tmp_path / "x.json"),
        )
        assert code == 2
        assert "bench chaos" in text

    def test_bad_chaos_point_rejected_at_parse_time(self):
        import pytest

        with pytest.raises(SystemExit):
            run_cli("bench", "chaos", "--chaos-crash-points", "asr.apply.bogus")
