"""The background healer: quarantined ASRs recover without an operator."""

import threading
import time

import pytest

from repro.asr import ASRState, Decomposition, Extension
from repro.resilience import BreakerBoard, HealerLoop, RecoveryPolicy

from tests.asr.test_crash_recovery import managed_world, seed_rows


def quarantine(db, parts, sets, injector, manager, *, times=1):
    """Tear an eager apply so the first ASR lands in quarantine."""
    manager.auto_recover = False
    injector.fault_at("asr.apply.mid-delta", times=times)
    db.set_insert(sets[0], parts[5])
    (asr,) = manager.asrs
    assert asr.quarantined
    return asr


class TestSweep:
    def test_sweep_recovers_a_quarantined_asr(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        seed_rows(db, parts, sets, prods)
        asr = quarantine(db, parts, sets, injector, manager)
        healer = HealerLoop(manager)  # not started: sweeps driven by hand
        assert healer.sweep() == 1
        assert asr.state is ASRState.CONSISTENT
        assert healer.recoveries == 1
        assert healer.failures == 0
        manager.check_consistency()

    def test_sweep_with_nothing_quarantined_is_a_noop(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL)
        assert HealerLoop(manager).sweep() == 0

    def test_failed_attempts_ladder_then_give_up(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        asr = quarantine(db, parts, sets, injector, manager)
        # Every replay retry inside recover() hits the armed fault, and
        # without the rebuild fallback recover() raises — so each sweep
        # is one failed episode attempt.
        policy = RecoveryPolicy(episode_attempts=2, rebuild_fallback=False)
        manager.policy = policy  # recover() itself must not rebuild
        injector.fault_at("asr.recover.replay", times=1000)
        healer = HealerLoop(manager, policy=policy)
        assert healer.sweep() == 0
        assert healer.failures == 1
        assert healer.describe()["retrying"] == [str(asr.path)]
        assert healer.sweep() == 0  # second attempt exhausts the episode
        assert healer.describe()["gave_up"] == [str(asr.path)]
        assert healer.sweep() == 0  # given up: no further recover() calls
        assert healer.failures == 2

    def test_forced_sweep_ignores_give_up_and_heals(self):
        # The drain path: chaos is disarmed, so the final forced sweep
        # (rebuild fallback included) reaches consistency.
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        asr = quarantine(db, parts, sets, injector, manager)
        policy = RecoveryPolicy(episode_attempts=1, rebuild_fallback=False)
        manager.policy = policy
        injector.fault_at("asr.recover.replay", times=1000)
        healer = HealerLoop(manager, policy=policy)
        healer.sweep()
        assert healer.describe()["gave_up"]
        injector.disarm()
        healer.policy = RecoveryPolicy()  # drain runs under the real policy
        manager.policy = RecoveryPolicy()
        assert healer.sweep(force=True) == 1
        assert asr.state is ASRState.CONSISTENT

    def test_backoff_pacing_skips_episodes_before_next_try(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        quarantine(db, parts, sets, injector, manager)
        injector.fault_at("asr.recover.replay", times=1000)
        policy = RecoveryPolicy(
            backoff_s=30.0, episode_attempts=5, rebuild_fallback=False
        )
        # Pacing lives in the healer; failing recoveries need the
        # manager to share the no-rebuild policy — but zero backoff
        # there, or recover()'s internal retries sleep for minutes.
        manager.policy = RecoveryPolicy(rebuild_fallback=False)
        healer = HealerLoop(manager, policy=policy)
        healer.sweep()
        assert healer.failures == 1
        healer.sweep()  # next_try is ~30s out: no second recover() call
        assert healer.failures == 1

    def test_breaker_feed_on_failed_attempts(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        asr = quarantine(db, parts, sets, injector, manager)
        board = BreakerBoard(threshold=10)
        injector.fault_at("asr.recover.replay", times=1000)
        manager.policy = RecoveryPolicy(rebuild_fallback=False)
        healer = HealerLoop(
            manager,
            policy=RecoveryPolicy(rebuild_fallback=False),
            breakers=board,
        )
        healer.sweep()
        assert board.breaker_for(asr).failures == 1

    def test_mttr_observed_on_recovery(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        quarantine(db, parts, sets, injector, manager)
        clock = {"now": 100.0}
        healer = HealerLoop(manager, time_fn=lambda: clock["now"])
        healer.sweep()  # opens the episode and heals it in one pass
        mttr = healer.describe()["mttr_ms"]
        assert mttr["count"] == 1
        assert mttr["mean_ms"] >= 0.0


class TestLoopLifecycle:
    def test_started_loop_heals_in_background(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        asr = quarantine(db, parts, sets, injector, manager)
        healer = HealerLoop(manager, interval=0.01).start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and asr.quarantined:
                time.sleep(0.005)
        finally:
            healer.stop()
        assert asr.state is ASRState.CONSISTENT
        assert healer.recoveries == 1
        assert not healer.running

    def test_double_start_rejected(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        healer = HealerLoop(manager, interval=0.01).start()
        try:
            with pytest.raises(RuntimeError):
                healer.start()
        finally:
            healer.stop(final_sweep=False)

    def test_stop_runs_one_final_forced_sweep(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        asr = quarantine(db, parts, sets, injector, manager)
        healer = HealerLoop(
            manager, policy=RecoveryPolicy(backoff_s=60.0)
        )  # never started; pacing would defer the retry for a minute
        healer.sweep()  # opens the episode…
        assert asr.quarantined or healer.recoveries  # (fault already consumed)
        healer.stop(final_sweep=True)
        assert asr.state is ASRState.CONSISTENT


class TestHealerRacesAStorm:
    def test_concurrent_faults_updates_and_readers_all_converge(self):
        """The tentpole race: a fault storm vs the healer, live traffic on.

        A writer thread keeps tearing applies (every fault quarantines
        the ASR again), reader threads keep querying through the
        manager's read lock, and the healer loop races both.  Throughout,
        the manager's accounting must hold; at the end, with the storm
        over, one last sweep must land the ASR CONSISTENT and equal to a
        from-scratch rebuild.
        """
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        seed_rows(db, parts, sets, prods)
        manager.auto_recover = False
        (asr,) = manager.asrs
        healer = HealerLoop(manager, interval=0.001).start()
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            try:
                for k in range(40):
                    injector.fault_at("asr.apply.mid-delta", times=1)
                    db.set_insert(sets[k % 4], parts[(k + 1) % 6])
                    db.set_remove(sets[k % 4], parts[(k + 1) % 6])
                    time.sleep(0.001)
            except BaseException as error:  # noqa: BLE001 - assert below
                errors.append(error)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    with manager.shared():
                        _ = asr.tuple_count
            except BaseException as error:  # noqa: BLE001 - assert below
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        injector.disarm()
        healer.stop(final_sweep=True)
        assert not errors
        assert healer.recoveries >= 1
        assert asr.state is ASRState.CONSISTENT
        manager.check_consistency()
