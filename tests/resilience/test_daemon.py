"""The daemon's resilience layer end to end: chaos, healer, healthz, sheds."""

import json

import pytest

from repro.bench.serve import ServeConfig
from repro.faults import FaultInjector
from repro.resilience import ChaosConfig, RecoveryPolicy
from repro.server import ServeDaemon

from tests.test_server import async_config, get, tiny_config, wait_until

STORM = ChaosConfig(rate=0.5, burst=3, seed=7)


def chaos_config(tmp_path, *, use_async=False, **overrides):
    serve = dict(
        clients=3, ops=48, seed=7, capacity=64, io_micros=20.0, max_spans=64
    )
    if use_async:
        serve.update(use_async=True, max_inflight=16)
    defaults = dict(
        serve=ServeConfig(**serve),
        recovery=RecoveryPolicy(backoff_s=0.001, jitter=0.25),
        healer_interval=0.01,
        chaos=STORM,
    )
    defaults.update(overrides)
    return tiny_config(tmp_path, **defaults)


class TestChaosStorm:
    @pytest.mark.parametrize("use_async", [False, True], ids=["threaded", "async"])
    def test_storm_heals_and_drains_consistent(self, tmp_path, use_async):
        """The tentpole soak in miniature, on both serving cores.

        While the storm rages, every `/healthz` poll must show the
        accounting invariant holding (shared == retired + live, checked
        server-side) and `/stats` a finite drift ratio; the healer must
        record at least one recovery; the drain must end with zero
        quarantined ASRs and no errors.
        """
        daemon = ServeDaemon(chaos_config(tmp_path, use_async=use_async)).start()
        try:
            polled = {"healthz": 0}

            def storm_done():
                status, _, body = get(daemon, "/healthz")
                payload = json.loads(body)
                assert payload["accounting"]["ok"], "accounting broke mid-storm"
                polled["healthz"] += 1
                return (
                    daemon.healer.recoveries >= 1
                    and daemon.chaos.injector.faults_injected >= 1
                )

            assert wait_until(storm_done, timeout=30.0, interval=0.02)
            assert polled["healthz"] >= 1
            _, _, stats_body = get(daemon, "/stats")
            overall = json.loads(stats_body)["drift"]["overall"]
            assert overall["finite"]
        finally:
            report = daemon.shutdown()
        resilience = report["resilience"]
        assert resilience["end_state"]["consistent"]
        assert resilience["end_state"]["quarantined"] == []
        assert resilience["healer"]["recoveries"] >= 1
        assert resilience["chaos"]["strikes"] >= 1
        assert resilience["chaos"]["stopped"]
        assert report["accounting"]["ok"]
        assert report["drained"]["errors"] == []

    def test_storm_report_shape(self, tmp_path):
        daemon = ServeDaemon(chaos_config(tmp_path)).start()
        try:
            assert wait_until(lambda: daemon.ops_served > 0)
        finally:
            report = daemon.shutdown()
        resilience = report["resilience"]
        assert set(resilience) == {
            "healer",
            "chaos",
            "breakers",
            "deadline_shed",
            "chaos_casualties",
            "admission",
            "end_state",
        }
        assert resilience["healer"]["mttr_ms"].keys() == {
            "count",
            "mean_ms",
            "max_ms",
        }
        assert "total_transitions" in resilience["breakers"]

    def test_crash_points_kill_the_op_not_the_client(self, tmp_path):
        # ':crash' strikes raise SimulatedCrash out of the victim
        # operation; under chaos the client loop absorbs it as a
        # casualty and keeps serving.
        config = chaos_config(
            tmp_path,
            chaos=ChaosConfig(
                rate=0.8, seed=7, points=(("asr.apply.mid-delta", "crash"),)
            ),
        )
        daemon = ServeDaemon(config).start()
        try:
            assert wait_until(
                lambda: daemon.world.registry.counter_value("chaos.casualties") >= 1,
                timeout=30.0,
            )
            assert wait_until(lambda: daemon.ops_served > 0)
        finally:
            report = daemon.shutdown()
        assert report["resilience"]["chaos_casualties"] >= 1
        assert report["drained"]["errors"] == []
        assert report["resilience"]["end_state"]["consistent"]


class TestHealthzTiers:
    def quarantine_one(self, daemon, *, unhealable=False):
        """Deterministically tear one apply on a chaos-free daemon.

        With ``unhealable`` the replay point is armed *first* — the
        healer reacts within milliseconds of the quarantine, so arming
        it afterwards would lose the race.
        """
        manager = daemon.world.manager
        manager.auto_recover = False
        injector = FaultInjector(seed=0)
        manager.fault_injector = injector
        if unhealable:
            injector.fault_at("asr.recover.replay", times=10_000)
        injector.fault_at("asr.apply.mid-delta", times=1)
        assert wait_until(lambda: bool(manager.quarantined), timeout=20.0)

    def test_healing_quarantine_keeps_200_with_detail(self, tmp_path):
        # The healer is retrying but cannot win (replay faults forever,
        # no rebuild): actively-healing quarantine is 200, with detail.
        config = tiny_config(
            tmp_path,
            recovery=RecoveryPolicy(
                episode_attempts=10_000, rebuild_fallback=False
            ),
            healer_interval=0.01,
        )
        daemon = ServeDaemon(config).start()
        try:
            self.quarantine_one(daemon, unhealable=True)
            assert wait_until(lambda: daemon.healer.failures >= 1, timeout=20.0)
            status, _, body = get(daemon, "/healthz")
            payload = json.loads(body)
            assert status == 200 and payload["ok"]
            assert payload["healing"] and not payload["quarantined_hard"]
            assert payload["healer"]["retrying"] == payload["healing"]
        finally:
            daemon.world.manager.fault_injector.disarm()
            daemon.world.manager.policy = RecoveryPolicy()
            daemon.shutdown()

    def test_hard_down_quarantine_is_503(self, tmp_path):
        # No healer at all: quarantine is hard-down and the probe must
        # see 503 so the orchestrator restarts the process.
        daemon = ServeDaemon(tiny_config(tmp_path, healer=False)).start()
        try:
            self.quarantine_one(daemon)
            status, _, body = get(daemon, "/healthz")
            payload = json.loads(body)
            assert status == 503 and not payload["ok"]
            assert payload["quarantined_hard"] and not payload["healing"]
            assert payload["healer"] is None
        finally:
            daemon.world.manager.fault_injector.disarm()
            daemon.shutdown()


class TestDeadlineShedding:
    def test_expired_queue_entries_shed_unexecuted(self, tmp_path):
        # Millisecond deadline against multi-millisecond device waits:
        # queued entries expire before a worker reaches them.
        config = async_config(tmp_path, op_deadline_ms=0.01)
        daemon = ServeDaemon(config).start()
        try:
            assert wait_until(
                lambda: daemon.world.registry.counter_value("deadline.shed") >= 1,
                timeout=30.0,
            )
            status, _, body = get(daemon, "/healthz")
            assert status == 200  # shedding is load management, not illness
            assert json.loads(body)["deadline_shed"] >= 1
        finally:
            report = daemon.shutdown()
        assert report["resilience"]["deadline_shed"] >= 1
        # Deadline sheds are their own counter, not folded into the
        # front-door rejects.
        assert "deadline.shed" in report["metrics"]["counters"]

    def test_no_deadline_means_no_sheds(self, tmp_path):
        daemon = ServeDaemon(async_config(tmp_path)).start()
        try:
            assert wait_until(lambda: daemon.ops_served > 0)
        finally:
            report = daemon.shutdown()
        assert report["resilience"]["deadline_shed"] == 0


class TestShedBackoff:
    def test_backoff_and_streak_surface_in_report_and_metrics(self, tmp_path):
        config = async_config(tmp_path, shed_backoff_ms=0.2, max_inflight=2)
        daemon = ServeDaemon(config).start()
        try:
            assert wait_until(
                lambda: daemon.world.registry.counter_value("admission.rejected") >= 1,
                timeout=30.0,
            )
        finally:
            report = daemon.shutdown()
        admission = report["resilience"]["admission"]
        assert admission["shed_backoff_ms"] == 0.2
        assert admission["rejected"] >= 1
        assert admission["max_shed_streak"] >= 1
        gauges = report["metrics"]["gauges"]
        assert "admission.shed_streak" in gauges
        assert gauges["admission.max_shed_streak"][0]["value"] >= 1
