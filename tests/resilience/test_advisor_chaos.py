"""Advisor + chaos: the design keeps retuning while faults land.

The scenario the resilience layer and the adaptive layer must survive
*together*: eight serve workers replay a mixed stream, the chaos
controller strikes the update path, the healer drains quarantine, and
the advisor re-materializes the chain ASR online — all at once.  The
gates mirror ``repro bench advisor``'s: ``/healthz`` never hard-down,
accounting and ASR consistency hold through a retune, and the epoch
proof shows a pre-retune compiled plan can never be served afterwards.
"""

import json
import time
import urllib.request

from repro.bench.serve import ServeConfig
from repro.resilience import ChaosConfig, RecoveryPolicy
from repro.server import ServeDaemon, ServerConfig
from repro.workload.opstream import select_stream
from repro.workload.profiles import FIG14_MIX


def _http_json(url: str, body: dict | None = None) -> tuple[int, dict]:
    request = urllib.request.Request(url)
    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, data=data, timeout=10) as response:
        return response.status, json.load(response)


def _config() -> ServerConfig:
    return ServerConfig(
        serve=ServeConfig(
            clients=8, ops=64, seed=11, capacity=64, io_micros=20.0, max_spans=64
        ),
        port=0,
        drift_interval=0.5,
        recovery=RecoveryPolicy(backoff_s=0.001, jitter=0.25),
        healer=True,
        healer_interval=0.01,
        chaos=ChaosConfig(rate=0.3, burst=2, seed=11),
        advisor_interval=0.05,
        advisor_threshold=1.05,
        advisor_min_ops=32,
    )


class TestAdvisorUnderChaos:
    def test_retune_lands_while_chaos_strikes(self):
        daemon = ServeDaemon(_config()).start()
        try:
            world = daemon.world
            manager = world.manager
            advisor = daemon.advisor
            chaos = daemon.chaos
            host, port = daemon.address
            base = f"http://{host}:{port}"
            healthz: list[int] = []

            def probe() -> None:
                status, _payload = _http_json(f"{base}/healthz")
                healthz.append(status)

            # Phase 1 — storm: advisor must retune while strikes land.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                probe()
                if advisor.retunes >= 1 and chaos.strikes >= 1:
                    break
                time.sleep(0.1)
            assert advisor.retunes >= 1, advisor.describe()
            assert chaos.strikes >= 1, chaos.describe()
            # Never hard-down: transient quarantine is the healer's job.
            assert healthz and all(status == 200 for status in healthz)

            # The retune is visible at the front door, not just in-process.
            status, payload = _http_json(f"{base}/advisor")
            assert status == 200
            assert payload["retunes"] >= 1
            assert payload["history"][-1]["applied"] is True
            assert payload["history"][-1]["to"] == payload["design"]

            # Phase 2 — quiesce: disarm chaos, stop the loop, go
            # pure-query (epoch freezes: no update flushes), let the
            # healer drain whatever the storm quarantined.
            chaos.stop()
            advisor.stop()
            daemon.set_stream(
                select_stream(
                    world.generated,
                    FIG14_MIX,
                    count=64,
                    seed=12,
                    query_fraction=1.0,
                )
            )
            world.recorder.reset()
            settle = time.monotonic() + 30.0
            while time.monotonic() < settle:
                if not manager.quarantined:
                    break
                time.sleep(0.02)
            assert not manager.quarantined
            time.sleep(0.5)  # drain in-flight update flushes
            manager.check_consistency()  # consistent *through* the retune
            probe()
            assert healthz[-1] == 200  # accounting holds post-storm

            # Phase 3 — epoch proof over real HTTP: a plan warmed before
            # the retune must recompile after it.  The storm's measured
            # mix skews query-heavy (strikes abort update flushes), so
            # the design parked at an undecomposed winner; seed the
            # recorder with an update-leaning mix whose cost-model
            # winner is a decomposed design — the *evidence* shifts
            # while the live stream stays pure-query, so every epoch
            # move below is the retune's.
            recorder = world.recorder
            path = world.generated.path
            # Counts dwarf what the live workers record in the window
            # between seeding and the sweep, so the mix holds ~75/25 —
            # the region where a decomposed FULL wins decisively (below
            # ~0.18 updates the current design is kept; above ~0.29 the
            # no-ASR baseline wins and the loop refuses it).
            recorder.record_query(0, path.n, "bw", count=350_000)
            recorder.record_query(0, 2, "bw", count=175_000)
            recorder.record_query(1, path.n, "fw", count=175_000)
            for edge in range(path.n):
                recorder.record_update(edge, count=58_000)
            probe_text = select_stream(
                world.generated, FIG14_MIX, count=1, seed=77, query_fraction=1.0
            )[0].text
            _status, first = _http_json(f"{base}/query", {"query": probe_text})
            _status, warmed = _http_json(f"{base}/query", {"query": probe_text})
            assert warmed["cached"] is True
            epoch_before = manager.epoch
            assert advisor.sweep(force=True), advisor.describe()
            manager.check_consistency()
            assert manager.epoch == epoch_before + 1  # exactly one bump
            _status, after = _http_json(f"{base}/query", {"query": probe_text})
            assert after["cached"] is False  # pre-retune plan unreachable
            assert after["epoch"] == manager.epoch
            assert after["rows"] == first["rows"]
        finally:
            report = daemon.shutdown()
        assert report["accounting"]["ok"]
        assert report["drained"]["errors"] == []
        assert report["resilience"]["end_state"]["consistent"]
        assert report["resilience"]["end_state"]["quarantined"] == []
