"""The shared RecoveryPolicy: one backoff ladder for every healer."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.resilience import RecoveryPolicy


class TestDelayLadder:
    def test_first_try_never_waits(self):
        policy = RecoveryPolicy(backoff_s=1.0)
        assert policy.delay(0) == 0.0

    def test_exponential_growth(self):
        policy = RecoveryPolicy(backoff_s=0.1, multiplier=2.0, max_delay_s=100.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_cap_bounds_every_rung(self):
        policy = RecoveryPolicy(backoff_s=1.0, multiplier=10.0, max_delay_s=5.0)
        assert policy.delay(4) == 5.0

    def test_zero_backoff_is_free(self):
        # The default keeps the simulator and the test suite fast while
        # still counting attempts.
        policy = RecoveryPolicy()
        assert all(policy.delay(k) == 0.0 for k in range(6))

    def test_jitter_is_seeded_and_bounded(self):
        policy = RecoveryPolicy(backoff_s=1.0, jitter=0.5, max_delay_s=100.0)
        draws = [policy.delay(1, random.Random(seed)) for seed in range(50)]
        assert all(0.5 <= value <= 1.5 for value in draws)
        assert len(set(draws)) > 1  # actually dithered
        assert policy.delay(1, random.Random(7)) == policy.delay(
            1, random.Random(7)
        )  # replayable

    def test_no_rng_means_no_jitter(self):
        policy = RecoveryPolicy(backoff_s=1.0, jitter=0.5)
        assert policy.delay(1) == 1.0

    @given(
        attempt=st.integers(min_value=0, max_value=20),
        backoff=st.floats(min_value=0.0, max_value=10.0),
        jitter=st.floats(min_value=0.0, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_delay_is_always_finite_and_capped(self, attempt, backoff, jitter, seed):
        policy = RecoveryPolicy(backoff_s=backoff, jitter=jitter, max_delay_s=5.0)
        delay = policy.delay(attempt, random.Random(seed))
        assert 0.0 <= delay <= 5.0 * (1.0 + jitter)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": 0},
            {"backoff_s": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"max_delay_s": -1.0},
            {"episode_attempts": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs)

    def test_frozen(self):
        policy = RecoveryPolicy()
        with pytest.raises(AttributeError):
            policy.max_retries = 9
