"""ChaosController: seeded, replayable strikes against named fault points."""

import pytest

from repro.errors import InjectedFault
from repro.faults import KNOWN_CRASH_POINTS, FaultInjector
from repro.resilience import ChaosConfig, ChaosController
from repro.resilience.chaos import parse_chaos_points


class TestParsePoints:
    def test_single_point_defaults_to_fault(self):
        assert parse_chaos_points("asr.apply.mid-delta") == (
            ("asr.apply.mid-delta", "fault"),
        )

    def test_crash_suffix_and_whitespace(self):
        parsed = parse_chaos_points(" asr.flush.journal:crash , asr.recover.replay ")
        assert parsed == (
            ("asr.flush.journal", "crash"),
            ("asr.recover.replay", "fault"),
        )

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos point"):
            parse_chaos_points("asr.apply.nonsense")

    def test_bad_suffix_rejected(self):
        with pytest.raises(ValueError, match="suffix"):
            parse_chaos_points("asr.apply.mid-delta:explode")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            parse_chaos_points(" , ")

    def test_every_known_point_parses(self):
        spec = ",".join(KNOWN_CRASH_POINTS)
        assert len(parse_chaos_points(spec)) == len(KNOWN_CRASH_POINTS)


class TestChaosConfig:
    def test_enabled_requires_positive_rate(self):
        assert not ChaosConfig().enabled
        assert ChaosConfig(rate=0.5).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -0.1},
            {"rate": 1.5},
            {"burst": -1},
            {"burst_chance": 2.0},
            {"points": (("asr.apply.mid-delta", "explode"),)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChaosConfig(**kwargs)


def controller(**config_kwargs) -> ChaosController:
    config_kwargs.setdefault("rate", 0.5)
    return ChaosController(FaultInjector(seed=0), ChaosConfig(**config_kwargs))


class TestController:
    def test_strikes_are_seeded_and_replayable(self):
        def strike_pattern(seed):
            chaos = controller(seed=seed, burst=3)
            return [chaos.on_operation() for _ in range(200)], chaos.strikes

        assert strike_pattern(7) == strike_pattern(7)
        assert strike_pattern(7) != strike_pattern(8)

    def test_strike_rate_tracks_config(self):
        chaos = controller(rate=0.25)
        draws = 2000
        for _ in range(draws):
            chaos.on_operation()
        assert 0.15 <= chaos.strikes / draws <= 0.35

    def test_strike_arms_a_known_point(self):
        chaos = controller(rate=1.0)
        assert chaos.on_operation()
        armed = set(chaos.injector.armed_points)
        assert armed and armed <= set(KNOWN_CRASH_POINTS)

    def test_armed_fault_fires_once_per_strike(self):
        chaos = controller(rate=1.0, points=(("asr.apply.mid-delta", "fault"),))
        chaos.on_operation()
        with pytest.raises(InjectedFault):
            chaos.injector.reach("asr.apply.mid-delta")
        chaos.injector.reach("asr.apply.mid-delta")  # disarmed after one shot

    def test_burst_expands_into_consecutive_strikes(self):
        chaos = controller(rate=0.3, burst=4, burst_chance=1.0, seed=1)
        for _ in range(500):
            chaos.on_operation()
        assert chaos.bursts > 0
        # Every burst replaces one strike draw with `burst` strikes.
        assert chaos.strikes >= chaos.bursts * 4

    def test_stop_disarms_and_refuses_further_strikes(self):
        chaos = controller(rate=1.0)
        chaos.on_operation()
        chaos.stop()
        assert chaos.stopped
        assert not chaos.injector.armed_points
        assert not chaos.on_operation()

    def test_zero_rate_never_strikes(self):
        chaos = ChaosController(FaultInjector(seed=0), ChaosConfig(rate=0.0))
        assert not any(chaos.on_operation() for _ in range(100))

    def test_describe_is_json_shaped(self):
        chaos = controller(rate=1.0)
        chaos.on_operation()
        description = chaos.describe()
        assert description["strikes"] == 1
        assert description["points"] == [
            "asr.apply.mid-delta:fault",
            "asr.recover.replay:fault",
        ]
        assert isinstance(description["armed_now"], list)
