"""Breaker gating in the planner: open breakers route around the ASR."""

from repro.asr import ASRManager, Decomposition, Extension
from repro.context import ExecutionContext
from repro.query import BackwardQuery, Planner, QueryEvaluator
from repro.resilience import BreakerBoard

from tests.resilience.test_breaker import FakeClock


def world(company_world, threshold=2):
    db, path, o = company_world
    context = ExecutionContext()
    manager = ASRManager(db, context=context)
    asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
    clock = FakeClock()
    board = BreakerBoard(threshold=threshold, cooldown_s=1.0, time_fn=clock)
    planner = Planner(manager, breakers=board)
    evaluator = QueryEvaluator(db, context=context)
    query = BackwardQuery(path, 0, path.n, target="Door")
    return db, manager, asr, board, clock, planner, evaluator, query, context


class TestBreakerGating:
    def test_open_breaker_excludes_a_consistent_asr(self, company_world):
        db, manager, asr, board, clock, planner, evaluator, query, context = world(
            company_world
        )
        assert planner.plan(query).asr is asr
        board.record_failure(asr)
        board.record_failure(asr)  # threshold reached: open
        plan = planner.plan(query)
        assert plan.asr is None
        assert plan.breaker_blocked == 1
        # The query still answers, degraded, with the right rows — and
        # the degradation is visible in the context trace.
        result = planner.execute(query, evaluator)
        assert result.strategy == "unsupported"
        assert result.cells == evaluator.evaluate_unsupported(query).cells
        assert context.op_counts["plan.breaker-open"] == 1
        assert context.op_counts["plan.degraded-fallback"] == 1

    def test_probe_after_cooldown_closes_and_restores_fast_path(
        self, company_world
    ):
        db, manager, asr, board, clock, planner, evaluator, query, context = world(
            company_world
        )
        board.record_failure(asr)
        board.record_failure(asr)
        assert planner.plan(query).asr is None
        clock.advance(1.1)
        # The cooldown elapsed: the next plan IS the half-open probe, and
        # its successful execution closes the breaker.
        probe = planner.execute(query, evaluator)
        assert probe.strategy.startswith("asr:")
        assert board.breaker_for(asr).state == "closed"
        assert planner.plan(query).asr is asr

    def test_routine_successes_do_not_mask_accumulating_faults(
        self, company_world
    ):
        db, manager, asr, board, clock, planner, evaluator, query, context = world(
            company_world, threshold=3
        )
        # fault, good query, fault, good query … the storm rhythm.  The
        # good queries must not reset the count, so the third fault opens.
        for _ in range(2):
            board.record_failure(asr)
            planner.execute(query, evaluator)
        board.record_failure(asr)
        assert board.breaker_for(asr).state == "open"

    def test_planner_without_breakers_is_unchanged(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        planner = Planner(manager)
        query = BackwardQuery(path, 0, path.n, target="Door")
        plan = planner.plan(query)
        assert plan.asr is asr
        assert plan.breaker_blocked == 0
