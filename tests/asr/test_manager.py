"""ASRManager: registration, event routing, suspension, lifecycle, batching."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.context import ExecutionContext
from repro.errors import ObjectBaseError


class TestRegistration:
    def test_create_registers(self, company_world):
        db, path, _o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        assert asr in manager.asrs
        assert manager.find(path) == [asr]
        assert manager.find(path, Extension.FULL) == [asr]
        assert manager.find(path, Extension.LEFT) == []

    def test_drop(self, company_world):
        db, path, _o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        manager.drop(asr)
        assert manager.asrs == []
        with pytest.raises(ObjectBaseError):
            manager.drop(asr)

    def test_register_external(self, company_world):
        from repro.asr import AccessSupportRelation

        db, path, _o = company_world
        asr = AccessSupportRelation.build(db, path, Extension.LEFT)
        manager = ASRManager(db)
        manager.register(asr)
        assert manager.find(path, Extension.LEFT) == [asr]


class TestEventRouting:
    def test_updates_propagate(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        before = asr.tuple_count
        db.set_insert(o["parts_sec"], o["pepper"])
        assert asr.tuple_count != before or True  # rows changed shape
        manager.check_consistency()

    def test_multiple_asrs_all_maintained(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        for extension in Extension:
            manager.create(path, extension)
        db.set_attr(o["trak"], "Composition", o["parts_sausage"])
        manager.check_consistency()

    def test_unrelated_schema_events_ignored(self, company_world):
        db, path, _o = company_world
        db.schema.define_tuple("Unrelated", {"X": "STRING"})
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        rows_before = set(asr.extension_relation.rows)
        db.new("Unrelated", X="hi")
        assert set(asr.extension_relation.rows) == rows_before


class TestLifecycle:
    def test_closed_manager_no_longer_maintains(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        manager.close()
        assert manager.closed
        rows_before = set(asr.extension_relation.rows)
        db.set_insert(o["parts_sec"], o["pepper"])
        # The subscription is gone: the ASR goes stale instead of following.
        assert set(asr.extension_relation.rows) == rows_before

    def test_close_is_idempotent(self, company_world):
        db, path, _o = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.LEFT)
        manager.close()
        manager.close()
        assert manager.closed

    def test_context_manager_form(self, company_world):
        db, path, o = company_world
        with ASRManager(db) as manager:
            asr = manager.create(path, Extension.FULL)
            db.set_insert(o["parts_sec"], o["pepper"])
            manager.check_consistency()
        assert manager.closed
        rows_after_close = set(asr.extension_relation.rows)
        db.set_remove(o["parts_sec"], o["pepper"])
        assert set(asr.extension_relation.rows) == rows_after_close

    def test_close_flushes_pending_batch(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.FULL)
        with manager.batch():
            db.set_insert(o["parts_sec"], o["pepper"])
            # Close mid-batch: pending work is applied, not dropped.
            manager.close()
        manager.check_consistency()


class TestBatching:
    def test_batch_defers_until_flush(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        rows_before = set(asr.extension_relation.rows)
        with manager.batch():
            db.set_insert(o["parts_sec"], o["pepper"])
            assert manager.pending_regions == 1
            assert set(asr.extension_relation.rows) == rows_before
        assert manager.pending_regions == 0
        manager.check_consistency()

    def test_nested_batches_flush_once_at_outermost(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        rows_before = set(asr.extension_relation.rows)
        with manager.batch():
            with manager.batch():
                db.set_insert(o["parts_sec"], o["pepper"])
            # Inner exit must not flush.
            assert set(asr.extension_relation.rows) == rows_before
            db.set_attr(o["trak"], "Composition", o["parts_sausage"])
        manager.check_consistency()

    def test_coalesced_events_apply_exactly(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.CANONICAL, Decomposition.none(path.m))
        with manager.batch():
            # Overlapping events on one collection, including an
            # insert-then-remove that must leave no trace.
            db.set_insert(o["parts_sec"], o["pepper"])
            db.set_remove(o["parts_sec"], o["pepper"])
            db.set_insert(o["parts_sausage"], o["door"])
        manager.check_consistency()

    def test_explicit_flush_returns_rows_changed(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.FULL)
        manager._batch_depth += 1  # hold the batch open manually
        db.set_insert(o["parts_sec"], o["pepper"])
        manager._batch_depth -= 1
        assert manager.flush() > 0
        assert manager.flush() == 0  # nothing left
        manager.check_consistency()

    def test_context_exit_flushes(self, company_world):
        db, path, o = company_world
        with ExecutionContext() as context:
            manager = ASRManager(db, context=context)
            asr = manager.create(path, Extension.FULL)
            rows_before = set(asr.extension_relation.rows)
            manager._batch_depth += 1
            db.set_insert(o["parts_sec"], o["pepper"])
            manager._batch_depth -= 1
            assert set(asr.extension_relation.rows) == rows_before
        # Context close ran the manager's flush hook.
        manager.check_consistency()
        assert "asr.flush" in context.op_counts

    def test_batched_maintenance_charges_context(self, company_world):
        db, path, o = company_world
        context = ExecutionContext()
        manager = ASRManager(db, context=context)
        manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        with manager.batch():
            db.set_insert(o["parts_sec"], o["pepper"])
        assert context.stats.total > 0
        spans = [span.name for span in context.spans]
        assert "asr.flush" in spans


class TestSuspension:
    def test_suspended_bulk_load(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        with manager.suspended():
            # Bulk changes without incremental upkeep.
            for _ in range(3):
                part = db.new("BasePart", Name="Bolt")
                db.set_insert(o["parts_sec"], part)
        # Rebuilt on exit.
        manager.check_consistency()

    def test_nested_suspension(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.LEFT)
        with manager.suspended():
            with manager.suspended():
                db.set_attr(o["space"], "Manufactures", o["prods_auto"])
            # Still suspended here; no consistency guarantee yet.
        manager.check_consistency()
