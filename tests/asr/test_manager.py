"""ASRManager: registration, event routing, suspension."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.errors import ObjectBaseError


class TestRegistration:
    def test_create_registers(self, company_world):
        db, path, _o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        assert asr in manager.asrs
        assert manager.find(path) == [asr]
        assert manager.find(path, Extension.FULL) == [asr]
        assert manager.find(path, Extension.LEFT) == []

    def test_drop(self, company_world):
        db, path, _o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        manager.drop(asr)
        assert manager.asrs == []
        with pytest.raises(ObjectBaseError):
            manager.drop(asr)

    def test_register_external(self, company_world):
        from repro.asr import AccessSupportRelation

        db, path, _o = company_world
        asr = AccessSupportRelation.build(db, path, Extension.LEFT)
        manager = ASRManager(db)
        manager.register(asr)
        assert manager.find(path, Extension.LEFT) == [asr]


class TestEventRouting:
    def test_updates_propagate(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        before = asr.tuple_count
        db.set_insert(o["parts_sec"], o["pepper"])
        assert asr.tuple_count != before or True  # rows changed shape
        manager.check_consistency()

    def test_multiple_asrs_all_maintained(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        for extension in Extension:
            manager.create(path, extension)
        db.set_attr(o["trak"], "Composition", o["parts_sausage"])
        manager.check_consistency()

    def test_unrelated_schema_events_ignored(self, company_world):
        db, path, _o = company_world
        db.schema.define_tuple("Unrelated", {"X": "STRING"})
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        rows_before = set(asr.extension_relation.rows)
        db.new("Unrelated", X="hi")
        assert set(asr.extension_relation.rows) == rows_before


class TestSuspension:
    def test_suspended_bulk_load(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        with manager.suspended():
            # Bulk changes without incremental upkeep.
            for _ in range(3):
                part = db.new("BasePart", Name="Bolt")
                db.set_insert(o["parts_sec"], part)
        # Rebuilt on exit.
        manager.check_consistency()

    def test_nested_suspension(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.LEFT)
        with manager.suspended():
            with manager.suspended():
                db.set_attr(o["space"], "Manufactures", o["prods_auto"])
            # Still suspended here; no consistency guarantee yet.
        manager.check_consistency()
