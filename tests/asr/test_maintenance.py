"""Incremental maintenance (section 6): exactness against full rebuilds.

The central property: after ANY sequence of object-base mutations, every
managed ASR — all four extensions, several decompositions — equals what
a from-scratch rebuild produces.  Checked on directed unit cases for
each event type and on hypothesis-driven random update streams.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import ASRManager, Decomposition, Extension
from repro.asr.maintenance import analyze_event, rows_through
from repro.gom import NULL, ObjectBase, PathExpression, Schema
from repro.gom.events import AttributeSet, ObjectCreated


@pytest.fixture()
def managed(company_world):
    db, path, objects = company_world
    manager = ASRManager(db)
    for extension in Extension:
        for dec in (
            Decomposition.binary(path.m),
            Decomposition.none(path.m),
            Decomposition.of(0, 2, 5),
        ):
            manager.create(path, extension, dec)
    return db, path, objects, manager


class TestEventCases:
    def test_attribute_set_single_valued(self, managed):
        db, _path, o, manager = managed
        db.set_attr(o["pepper"], "Name", "Salt")
        manager.check_consistency()

    def test_attribute_set_to_null(self, managed):
        db, _path, o, manager = managed
        db.set_attr(o["sec"], "Composition", NULL)
        manager.check_consistency()

    def test_attribute_set_collection_swap(self, managed):
        db, _path, o, manager = managed
        db.set_attr(o["trak"], "Composition", o["parts_sausage"])
        manager.check_consistency()
        db.set_attr(o["trak"], "Composition", o["parts_sec"])
        manager.check_consistency()

    def test_set_insert_into_shared_set(self, managed):
        db, _path, o, manager = managed
        db.set_insert(o["parts_sec"], o["pepper"])
        manager.check_consistency()

    def test_set_insert_first_element(self, managed):
        db, _path, o, manager = managed
        empty = db.new_set("BasePartSET")
        db.set_attr(o["trak"], "Composition", empty)
        manager.check_consistency()  # empty-set stub rows appear
        db.set_insert(empty, o["door"])
        manager.check_consistency()  # stub replaced by real paths

    def test_set_remove_last_element(self, managed):
        db, _path, o, manager = managed
        db.set_remove(o["parts_sec"], o["door"])
        manager.check_consistency()  # stub row reappears

    def test_object_creation_is_noop(self, managed):
        db, _path, _o, manager = managed
        db.new("Division", Name="Fresh")
        manager.check_consistency()

    def test_delete_mid_path_object(self, managed):
        db, _path, o, manager = managed
        db.delete(o["sec"])
        manager.check_consistency()

    def test_delete_terminal_object(self, managed):
        db, _path, o, manager = managed
        db.delete(o["door"])
        manager.check_consistency()

    def test_delete_anchor_object(self, managed):
        db, _path, o, manager = managed
        db.delete(o["truck"])
        manager.check_consistency()

    def test_delete_collection_object(self, managed):
        db, _path, o, manager = managed
        db.delete(o["prods_truck"])
        manager.check_consistency()

    def test_shared_set_across_owners(self, managed):
        db, _path, o, manager = managed
        # Set sharing: two products share one BasePartSET.
        db.set_attr(o["trak"], "Composition", o["parts_sec"])
        manager.check_consistency()
        db.set_insert(o["parts_sec"], o["pepper"])
        manager.check_consistency()
        db.set_remove(o["parts_sec"], o["door"])
        manager.check_consistency()


class TestAnalyzeEvent:
    def test_unrelated_event_is_empty(self, company_world):
        db, path, o = company_world
        event = AttributeSet(o["door"], "BasePart", "Price", 1.0, 2.0)
        assert not analyze_event(db, path, event)

    def test_creation_is_empty(self, company_world):
        db, path, _o = company_world
        assert not analyze_event(db, path, ObjectCreated(next(db.oids()), "Division"))

    def test_name_change_anchors(self, company_world):
        db, path, o = company_world
        event = AttributeSet(o["door"], "BasePart", "Name", "Door", "Gate")
        region = analyze_event(db, path, event)
        assert (2, o["door"]) in region.anchors
        assert (3, "Door") in region.anchors
        assert (3, "Gate") in region.anchors

    def test_rows_through_dead_oid_empty(self, company_world):
        db, path, o = company_world
        door = o["door"]
        db.delete(door)
        assert rows_through(db, path, 2, door, Extension.FULL) == set()

    def test_rows_through_null_empty(self, company_world):
        db, path, _o = company_world
        assert rows_through(db, path, 0, NULL, Extension.FULL) == set()


class TestRepeatedTypesAlongPath:
    """The paper's section 6 assumes an update affects a single position;
    the neighbourhood algorithm handles repeated (type, attribute) steps."""

    def make_cyclic_world(self):
        schema = Schema()
        schema.define_tuple("Node", {"Next": "Node", "Tag": "STRING"})
        schema.validate()
        db = ObjectBase(schema)
        nodes = [db.new("Node", Tag=f"n{i}") for i in range(6)]
        for a, b in zip(nodes, nodes[1:]):
            db.set_attr(a, "Next", b)
        path = PathExpression.parse(schema, "Node.Next.Next.Next")
        return db, path, nodes

    def test_self_referencing_type(self):
        db, path, nodes = self.make_cyclic_world()
        manager = ASRManager(db)
        for extension in Extension:
            manager.create(path, extension, Decomposition.binary(path.m))
        manager.check_consistency()
        # One physical edge matches all three steps of the path.
        db.set_attr(nodes[2], "Next", nodes[5])
        manager.check_consistency()
        db.set_attr(nodes[2], "Next", NULL)
        manager.check_consistency()
        db.set_attr(nodes[5], "Next", nodes[0])  # creates a cycle
        manager.check_consistency()
        db.delete(nodes[3])
        manager.check_consistency()


# ----------------------------------------------------------------------
# hypothesis: random update streams vs rebuild
# ----------------------------------------------------------------------

operations = st.lists(
    st.tuples(
        st.sampled_from(["attr", "insert", "remove", "rename", "delete"]),
        st.integers(0, 5),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(operations, st.sampled_from(list(Extension)))
def test_random_streams_match_rebuild(ops, extension):
    schema = Schema()
    schema.define_tuple("Part", {"Name": "STRING"})
    schema.define_set("PartSET", "Part")
    schema.define_tuple("Prod", {"Parts": "PartSET"})
    schema.validate()
    db = ObjectBase(schema)
    parts = [db.new("Part", Name=f"p{i}") for i in range(6)]
    sets = [db.new_set("PartSET") for _ in range(4)]
    prods = [db.new("Prod") for _ in range(4)]
    path = PathExpression.parse(schema, "Prod.Parts.Name")
    manager = ASRManager(db)
    manager.create(path, extension, Decomposition.binary(path.m))
    manager.create(path, extension, Decomposition.none(path.m))
    alive_parts = list(parts)
    for op, x, y in ops:
        if op == "attr":
            db.set_attr(prods[x % 4], "Parts", sets[y % 4] if y < 4 else NULL)
        elif op == "insert" and alive_parts:
            db.set_insert(sets[x % 4], alive_parts[y % len(alive_parts)])
        elif op == "remove" and alive_parts:
            db.set_remove(sets[x % 4], alive_parts[y % len(alive_parts)])
        elif op == "rename" and alive_parts:
            db.set_attr(alive_parts[x % len(alive_parts)], "Name", f"r{y}")
        elif op == "delete" and len(alive_parts) > 1:
            victim = alive_parts.pop(x % len(alive_parts))
            db.delete(victim)
        manager.check_consistency()
