"""Physical sharing of partitions between ASRs (section 5.4 runtime)."""

import random

import pytest

from repro.asr import ASRManager, Extension, SharedASRBundle
from repro.errors import DecompositionError
from repro.gom import NULL, ObjectBase, PathExpression, Schema
from repro.query import BackwardQuery, QueryEvaluator


@pytest.fixture()
def world():
    schema = Schema()
    schema.define_tuple("MANUFACTURER", {"Name": "STRING", "Location": "STRING"})
    schema.define_tuple(
        "TOOL", {"Function": "STRING", "ManufacturedBy": "MANUFACTURER"}
    )
    schema.define_tuple("ARM", {"MountedTool": "TOOL"})
    schema.define_tuple("ROBOT", {"Name": "STRING", "Arm": "ARM"})
    schema.define_tuple("WORKCELL", {"SpareTool": "TOOL"})
    schema.validate()
    db = ObjectBase(schema)
    rng = random.Random(8)
    makers = [
        db.new("MANUFACTURER", Name=f"M{i}", Location=rng.choice(["Utopia", "Sirius"]))
        for i in range(4)
    ]
    tools = [
        db.new("TOOL", Function=f"F{i}", ManufacturedBy=rng.choice(makers))
        for i in range(10)
    ]
    arms = [db.new("ARM", MountedTool=rng.choice(tools)) for _ in range(6)]
    for i in range(5):
        db.new("ROBOT", Name=f"R{i}", Arm=rng.choice(arms))
    for i in range(3):
        db.new("WORKCELL", SpareTool=rng.choice(tools))
    path_a = PathExpression.parse(
        schema, "ROBOT.Arm.MountedTool.ManufacturedBy.Location"
    )
    path_b = PathExpression.parse(schema, "WORKCELL.SpareTool.ManufacturedBy.Location")
    return db, path_a, path_b, makers, tools, arms


class TestBuild:
    def test_builds_with_shared_store(self, world):
        db, path_a, path_b, *_ = world
        bundle = SharedASRBundle.build(db, path_a, path_b, Extension.FULL)
        assert bundle.view_a.forward_tree is bundle.view_b.forward_tree
        assert bundle.view_a.backward_tree is bundle.view_b.backward_tree
        assert bundle.view_a._counts is bundle.view_b._counts
        assert bundle.view_a.shared and bundle.view_b.shared
        # Views keep their own coordinates.
        assert bundle.view_a.first_column == 2
        assert bundle.view_b.first_column == 1

    def test_bytes_saved_positive(self, world):
        db, path_a, path_b, *_ = world
        bundle = SharedASRBundle.build(db, path_a, path_b)
        assert bundle.bytes_saved > 0
        assert "stored once" in bundle.describe()

    def test_illegal_extension_rejected(self, world):
        db, path_a, path_b, *_ = world
        with pytest.raises(DecompositionError):
            SharedASRBundle.build(db, path_a, path_b, Extension.CANONICAL)
        with pytest.raises(DecompositionError):
            SharedASRBundle.build(db, path_a, path_b, Extension.LEFT)

    def test_right_legal_for_common_suffix(self, world):
        db, path_a, path_b, *_ = world
        bundle = SharedASRBundle.build(db, path_a, path_b, Extension.RIGHT)
        bundle.consistency_check(db)

    def test_disjoint_paths_rejected(self, world):
        db, path_a, _path_b, *_ = world
        other = PathExpression.parse(db.schema, "ROBOT.Name")
        with pytest.raises(DecompositionError):
            SharedASRBundle.build(db, path_a, other)


class TestQueriesAndMaintenance:
    def test_queries_through_both_views(self, world):
        db, path_a, path_b, *_ = world
        bundle = SharedASRBundle.build(db, path_a, path_b)
        evaluator = QueryEvaluator(db)
        query_a = BackwardQuery(path_a, 0, path_a.n, target="Utopia")
        query_b = BackwardQuery(path_b, 0, path_b.n, target="Utopia")
        assert (
            evaluator.evaluate_supported(query_a, bundle.asr_a).cells
            == evaluator.evaluate_unsupported(query_a).cells
        )
        assert (
            evaluator.evaluate_supported(query_b, bundle.asr_b).cells
            == evaluator.evaluate_unsupported(query_b).cells
        )

    def test_maintained_under_update_stream(self, world):
        db, path_a, path_b, makers, tools, arms = world
        bundle = SharedASRBundle.build(db, path_a, path_b)
        manager = ASRManager(db)
        manager.register(bundle.asr_a)
        manager.register(bundle.asr_b)
        rng = random.Random(9)
        for _ in range(80):
            roll = rng.random()
            if roll < 0.35:
                db.set_attr(rng.choice(tools), "ManufacturedBy", rng.choice(makers))
            elif roll < 0.5:
                db.set_attr(rng.choice(tools), "ManufacturedBy", NULL)
            elif roll < 0.75:
                db.set_attr(
                    rng.choice(makers), "Location", rng.choice(["Utopia", "Earth"])
                )
            else:
                db.set_attr(rng.choice(arms), "MountedTool", rng.choice(tools))
            bundle.consistency_check(db)

    def test_shared_row_survives_while_either_side_needs_it(self, world):
        db, path_a, path_b, makers, tools, arms = world
        bundle = SharedASRBundle.build(db, path_a, path_b)
        manager = ASRManager(db)
        manager.register(bundle.asr_a)
        manager.register(bundle.asr_b)
        # Detach every arm from tools[0]; if any workcell still spares it,
        # the (tool, maker, location) row must remain in the shared store.
        spare_holders = [
            cell
            for cell in db.extent("WORKCELL")
            if db.attr(cell, "SpareTool") == tools[0]
        ]
        for arm in arms:
            if db.attr(arm, "MountedTool") == tools[0]:
                db.set_attr(arm, "MountedTool", tools[1])
        rows_with_tool0 = [
            row for row in bundle.shared_partition.rows() if row[0] == tools[0]
        ]
        if spare_holders:
            assert rows_with_tool0
        bundle.consistency_check(db)
