"""Sharing of access support relations across paths (section 5.4)."""

import pytest

from repro.asr import Extension, build_extension
from repro.asr.sharing import best_shared_design, shareable_segments
from repro.gom import ObjectBase, PathExpression, Schema


@pytest.fixture()
def two_path_schema():
    """Two paths sharing the middle chain TOOL.ManufacturedBy.Location."""
    schema = Schema()
    schema.define_tuple("MANUFACTURER", {"Name": "STRING", "Location": "STRING"})
    schema.define_tuple("TOOL", {"Function": "STRING", "ManufacturedBy": "MANUFACTURER"})
    schema.define_tuple("ARM", {"MountedTool": "TOOL"})
    schema.define_tuple("ROBOT", {"Name": "STRING", "Arm": "ARM"})
    schema.define_tuple("WORKCELL", {"SpareTool": "TOOL"})
    schema.validate()
    path_a = PathExpression.parse(schema, "ROBOT.Arm.MountedTool.ManufacturedBy.Location")
    path_b = PathExpression.parse(schema, "WORKCELL.SpareTool.ManufacturedBy.Location")
    return schema, path_a, path_b


class TestSegmentDetection:
    def test_common_middle_found(self, two_path_schema):
        _schema, path_a, path_b = two_path_schema
        segments = shareable_segments(path_a, path_b)
        best = best_shared_design(path_a, path_b)
        assert best is not None
        assert best.length == 2  # ManufacturedBy.Location
        assert best.start_a == 2 and best.start_b == 1
        assert best in segments

    def test_no_overlap(self, two_path_schema):
        schema, path_a, _path_b = two_path_schema
        other = PathExpression.parse(schema, "ROBOT.Name")
        assert shareable_segments(path_a, other) == []
        assert best_shared_design(path_a, other) is None

    def test_identical_paths_fully_shared(self, two_path_schema):
        _schema, path_a, _path_b = two_path_schema
        best = best_shared_design(path_a, path_a)
        assert best is not None
        assert best.length == path_a.n
        assert best.start_a == best.start_b == 0

    def test_maximality(self, two_path_schema):
        _schema, path_a, path_b = two_path_schema
        for segment in shareable_segments(path_a, path_b):
            # No segment is a proper sub-segment of another reported one.
            assert segment.length >= 1


class TestLegality:
    def test_middle_segment_full_only(self, two_path_schema):
        _schema, path_a, path_b = two_path_schema
        best = best_shared_design(path_a, path_b)
        assert best.legal_extensions() == {Extension.FULL, Extension.RIGHT}
        # Both segments end at t_n, so RIGHT is legal too (paper exception).

    def test_common_prefix_allows_left(self, two_path_schema):
        schema, path_a, _path_b = two_path_schema
        prefix = PathExpression.parse(schema, "ROBOT.Arm.MountedTool")
        best = best_shared_design(path_a, prefix)
        assert Extension.LEFT in best.legal_extensions()
        assert Extension.FULL in best.legal_extensions()
        assert Extension.RIGHT not in best.legal_extensions()

    def test_decompositions_cover_borders(self, two_path_schema):
        _schema, path_a, path_b = two_path_schema
        best = best_shared_design(path_a, path_b)
        dec_a, dec_b = best.decomposition_a(), best.decomposition_b()
        assert path_a.column_of(best.start_a) in dec_a.borders
        assert path_a.column_of(best.end_a) in dec_a.borders
        assert path_b.column_of(best.start_b) in dec_b.borders


class TestSharedPartitionEquality:
    def test_shared_partition_is_the_same_relation(self, two_path_schema):
        """The partitions over the common sub-chain hold identical tuples."""
        schema, path_a, path_b = two_path_schema
        db = ObjectBase(schema)
        maker = db.new("MANUFACTURER", Name="RobClone", Location="Utopia")
        tool = db.new("TOOL", Function="welding", ManufacturedBy=maker)
        arm = db.new("ARM", MountedTool=tool)
        db.new("ROBOT", Name="R2D2", Arm=arm)
        db.new("WORKCELL", SpareTool=tool)
        best = best_shared_design(path_a, path_b)
        full_a = build_extension(db, path_a, Extension.FULL)
        full_b = build_extension(db, path_b, Extension.FULL)
        slice_a = full_a.slice(
            path_a.column_of(best.start_a), path_a.column_of(best.end_a)
        )
        slice_b = full_b.slice(
            path_b.column_of(best.start_b), path_b.column_of(best.end_b)
        )
        assert slice_a.rows == slice_b.rows
