"""Edge-shaped paths: length-1 chains, empty worlds, degenerate extents."""

import pytest

from repro.asr import (
    ASRManager,
    Decomposition,
    Extension,
    build_extension,
)
from repro.gom import NULL, ObjectBase, PathExpression, Schema
from repro.query import BackwardQuery, ForwardQuery, QueryEvaluator


@pytest.fixture()
def single_step_world():
    schema = Schema()
    schema.define_tuple("Person", {"Name": "STRING"})
    schema.define_tuple("Badge", {"Holder": "Person"})
    schema.validate()
    db = ObjectBase(schema)
    alice = db.new("Person", Name="alice")
    badge1 = db.new("Badge", Holder=alice)
    badge2 = db.new("Badge")  # unassigned
    path = PathExpression.parse(schema, "Badge.Holder")
    return db, path, alice, badge1, badge2


class TestSingleStepPaths:
    def test_extensions(self, single_step_world):
        db, path, alice, badge1, badge2 = single_step_world
        assert path.n == 1 and path.m == 1
        can = build_extension(db, path, Extension.CANONICAL)
        assert can.rows == {(badge1, alice)}
        # With one auxiliary relation, all four extensions coincide on
        # this world (the only tuple is the defined edge).
        for extension in Extension:
            assert build_extension(db, path, extension).rows == can.rows

    def test_only_trivial_decomposition(self, single_step_world):
        db, path, *_ = single_step_world
        decs = list(Decomposition.all_for(path.m))
        assert decs == [Decomposition.of(0, 1)]

    def test_queries(self, single_step_world):
        db, path, alice, badge1, badge2 = single_step_world
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL)
        evaluator = QueryEvaluator(db)
        backward = BackwardQuery(path, 0, 1, target=alice)
        assert evaluator.evaluate_supported(backward, asr).cells == {badge1}
        forward = ForwardQuery(path, 0, 1, start=badge1)
        assert evaluator.evaluate_supported(forward, asr).cells == {alice}
        assert evaluator.evaluate_supported(
            ForwardQuery(path, 0, 1, start=badge2), asr
        ).cells == set()

    def test_maintenance(self, single_step_world):
        db, path, alice, badge1, badge2 = single_step_world
        manager = ASRManager(db)
        for extension in Extension:
            manager.create(path, extension)
        db.set_attr(badge2, "Holder", alice)
        manager.check_consistency()
        db.set_attr(badge1, "Holder", NULL)
        manager.check_consistency()
        db.delete(alice)
        manager.check_consistency()


class TestEmptyWorlds:
    def test_extensions_on_empty_extents(self):
        schema = Schema()
        schema.define_tuple("A", {"Next": "B"})
        schema.define_tuple("B", {"Value": "INTEGER"})
        schema.validate()
        db = ObjectBase(schema)
        path = PathExpression.parse(schema, "A.Next.Value")
        for extension in Extension:
            assert len(build_extension(db, path, extension)) == 0

    def test_asr_over_empty_world(self):
        schema = Schema()
        schema.define_tuple("A", {"Next": "B"})
        schema.define_tuple("B", {"Value": "INTEGER"})
        schema.validate()
        db = ObjectBase(schema)
        path = PathExpression.parse(schema, "A.Next.Value")
        manager = ASRManager(db)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        assert asr.tuple_count == 0
        assert asr.total_pages == 0
        # First objects arriving through maintenance, not rebuild.
        b = db.new("B", Value=7)
        a = db.new("A", Next=b)
        manager.check_consistency()
        # The (b, 7) stub created first is superseded once a→b arrives:
        # only the maximal row (a, b, 7) remains.
        assert asr.tuple_count == 1
        evaluator = QueryEvaluator(db)
        query = BackwardQuery(path, 0, 2, target=7)
        assert evaluator.evaluate_supported(query, asr).cells == {a}

    def test_all_null_world(self):
        """Objects exist but no attribute is defined anywhere."""
        schema = Schema()
        schema.define_tuple("A", {"Next": "B"})
        schema.define_tuple("B", {"Value": "INTEGER"})
        schema.validate()
        db = ObjectBase(schema)
        for _ in range(5):
            db.new("A")
            db.new("B")
        path = PathExpression.parse(schema, "A.Next.Value")
        for extension in Extension:
            assert len(build_extension(db, path, extension)) == 0
