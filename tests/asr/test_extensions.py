"""The four extensions (Defs. 3.4–3.7): paper tables + random-world oracle.

The join-chain builders are cross-validated against an independent
oracle: the union of maximal path segments found by object-graph
traversal (backward-maximal × forward-maximal through every object).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import Extension, build_extension
from repro.asr.maintenance import rows_through
from repro.gom import NULL, ObjectBase, PathExpression, Schema


class TestCompanyExtensions:
    """The worked example of section 3 over the Figure 2 extension."""

    def test_canonical(self, company_world):
        db, path, o = company_world
        relation = build_extension(db, path, Extension.CANONICAL)
        assert relation.rows == {
            (o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door"),
            (o["truck"], o["prods_truck"], o["sec"], o["parts_sec"], o["door"], "Door"),
        }

    def test_full(self, company_world):
        db, path, o = company_world
        relation = build_extension(db, path, Extension.FULL)
        assert relation.rows == {
            (o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door"),
            (o["truck"], o["prods_truck"], o["sec"], o["parts_sec"], o["door"], "Door"),
            (o["truck"], o["prods_truck"], o["trak"], NULL, NULL, NULL),
            (NULL, NULL, o["sausage"], o["parts_sausage"], o["pepper"], "Pepper"),
        }

    def test_left_complete(self, company_world):
        db, path, o = company_world
        relation = build_extension(db, path, Extension.LEFT)
        assert relation.rows == {
            (o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door"),
            (o["truck"], o["prods_truck"], o["sec"], o["parts_sec"], o["door"], "Door"),
            (o["truck"], o["prods_truck"], o["trak"], NULL, NULL, NULL),
        }

    def test_right_complete(self, company_world):
        db, path, o = company_world
        relation = build_extension(db, path, Extension.RIGHT)
        assert relation.rows == {
            (o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door"),
            (o["truck"], o["prods_truck"], o["sec"], o["parts_sec"], o["door"], "Door"),
            (NULL, NULL, o["sausage"], o["parts_sausage"], o["pepper"], "Pepper"),
        }

    def test_containment_lattice(self, company_world):
        db, path, _o = company_world
        can = build_extension(db, path, Extension.CANONICAL).rows
        left = build_extension(db, path, Extension.LEFT).rows
        right = build_extension(db, path, Extension.RIGHT).rows
        full = build_extension(db, path, Extension.FULL).rows
        assert can <= left <= full
        assert can <= right <= full
        assert can == {r for r in full if all(c is not NULL for c in r)}


class TestApplicability:
    """Eq. 35: which queries each extension supports."""

    @pytest.mark.parametrize(
        "extension,i,j,expected",
        [
            (Extension.CANONICAL, 0, 4, True),
            (Extension.CANONICAL, 0, 3, False),
            (Extension.CANONICAL, 1, 4, False),
            (Extension.LEFT, 0, 2, True),
            (Extension.LEFT, 1, 4, False),
            (Extension.RIGHT, 2, 4, True),
            (Extension.RIGHT, 0, 3, False),
            (Extension.FULL, 1, 3, True),
            (Extension.FULL, 0, 4, True),
        ],
    )
    def test_supports_query(self, extension, i, j, expected):
        assert extension.supports_query(i, j, 4) is expected

    def test_partials_flags(self):
        assert Extension.FULL.keeps_left_partials
        assert Extension.FULL.keeps_right_partials
        assert Extension.LEFT.keeps_left_partials
        assert not Extension.LEFT.keeps_right_partials
        assert Extension.RIGHT.keeps_right_partials
        assert not Extension.RIGHT.keeps_left_partials
        assert not Extension.CANONICAL.keeps_left_partials


# ----------------------------------------------------------------------
# random-world oracle cross-validation
# ----------------------------------------------------------------------


def build_random_world(edge01, edge12, empty_sets, draw_single):
    """A 3-type chain world T0 -{set}-> T1 -(single)-> T2 from drawn data."""
    schema = Schema()
    schema.define_tuple("T2", {"Payload": "INTEGER"})
    if draw_single:
        schema.define_tuple("T1", {"A": "T2"})
    else:
        schema.define_tuple("T1", {"A": "T2"})
    schema.define_set("SET_T1", "T1")
    schema.define_tuple("T0", {"A": "SET_T1"})
    schema.validate()
    db = ObjectBase(schema)
    t2 = [db.new("T2", Payload=i) for i in range(4)]
    t1 = [db.new("T1") for _ in range(4)]
    t0 = [db.new("T0") for _ in range(4)]
    for source, target in edge12:
        db.set_attr(t1[source], "A", t2[target])
    collections = {}
    for source, target in edge01:
        if source not in collections:
            collections[source] = db.new_set("SET_T1")
            db.set_attr(t0[source], "A", collections[source])
        db.set_insert(collections[source], t1[target])
    for source in empty_sets:
        if source not in collections:
            collections[source] = db.new_set("SET_T1")
            db.set_attr(t0[source], "A", collections[source])
    path = PathExpression.parse(schema, "T0.A.A")
    return db, path


def oracle_extension(db, path, extension):
    rows = set()
    for i, type_name in enumerate(path.types):
        try:
            extent = db.extent(type_name, include_subtypes=False)
        except Exception:
            continue
        for oid in extent:
            rows |= rows_through(db, path, i, oid, extension)
    return rows


indices = st.integers(0, 3)
edges = st.frozensets(st.tuples(indices, indices), max_size=8)


@settings(max_examples=120, deadline=None)
@given(edges, edges, st.frozensets(indices, max_size=2), st.booleans())
def test_extensions_match_traversal_oracle(edge01, edge12, empty_sets, draw_single):
    db, path = build_random_world(edge01, edge12, empty_sets, draw_single)
    for extension in Extension:
        joined = build_extension(db, path, extension).rows
        oracle = oracle_extension(db, path, extension)
        assert joined == oracle, extension


@settings(max_examples=60, deadline=None)
@given(edges, edges, st.frozensets(indices, max_size=2))
def test_containment_lattice_random(edge01, edge12, empty_sets):
    db, path = build_random_world(edge01, edge12, empty_sets, False)
    can = build_extension(db, path, Extension.CANONICAL).rows
    left = build_extension(db, path, Extension.LEFT).rows
    right = build_extension(db, path, Extension.RIGHT).rows
    full = build_extension(db, path, Extension.FULL).rows
    assert can <= left <= full
    assert can <= right <= full
    assert left | right <= full
