"""Self-adjusting physical design: recorder + adaptive designer."""

import pytest

from repro.asr import (
    ASRManager,
    AdaptiveDesigner,
    Decomposition,
    Extension,
    WorkloadRecorder,
)
from repro.costmodel import ApplicationProfile
from repro.errors import CostModelError
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(30, 60, 120, 240),
    d=(27, 48, 96),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)

SIZES = {"T0": 400, "T1": 300, "T2": 200, "T3": 100}


@pytest.fixture()
def world():
    generated = ChainGenerator(seed=19).generate(PROFILE)
    manager = ASRManager(generated.db)
    return generated, manager


class TestWorkloadRecorder:
    def test_counts_queries_and_updates(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        recorder.record_query(0, 3, "bw", count=3)
        recorder.record_query(0, 1, "fw")
        recorder.record_update(1, count=2)
        assert recorder.total_queries == 4
        assert recorder.total_updates == 2
        assert recorder.total_operations == 6

    def test_to_mix_weights(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        recorder.record_query(0, 3, "bw", count=3)
        recorder.record_query(0, 2, "bw", count=1)
        recorder.record_update(0, count=4)
        mix, p_up = recorder.to_mix()
        assert p_up == pytest.approx(0.5)
        weights = {str(spec): w for w, spec in mix.queries}
        assert weights["Q0,3(bw)"] == pytest.approx(0.75)
        assert weights["Q0,2(bw)"] == pytest.approx(0.25)

    def test_empty_log_rejected(self, world):
        generated, _manager = world
        with pytest.raises(CostModelError):
            WorkloadRecorder(generated.path).to_mix()

    def test_validation(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        with pytest.raises(CostModelError):
            recorder.record_query(2, 2, "bw")
        with pytest.raises(CostModelError):
            recorder.record_query(0, 1, "sideways")
        with pytest.raises(CostModelError):
            recorder.record_update(3)

    def test_attached_recorder_counts_update_events(self, world):
        generated, _manager = world
        db = generated.db
        recorder = WorkloadRecorder(generated.path)
        recorder.attach(db)
        owner = generated.layers[0][0]
        collection = db.attr(owner, "A")
        if collection:
            db.set_insert(collection, generated.layers[1][0])
            assert recorder.updates[0] >= 1

    def test_reset(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        recorder.record_update(0)
        recorder.reset()
        assert recorder.total_operations == 0


class TestAdaptiveDesigner:
    def test_switches_away_from_poor_design(self, world):
        generated, manager = world
        path = generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        for _ in range(50):
            recorder.record_query(0, 2, "bw")  # RIGHT cannot serve (0,2)
        recorder.record_update(0, count=2)
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)
        decision = designer.retune()
        assert decision.retuned
        assert designer.asr.extension in (Extension.FULL, Extension.LEFT)
        manager.check_consistency()

    def test_keeps_good_design(self, world):
        generated, manager = world
        path = generated.path
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        recorder.record_query(1, 2, "fw", count=20)  # only full serves this
        designer = AdaptiveDesigner(
            manager, asr, recorder, SIZES, improvement_threshold=3.0
        )
        decision = designer.retune()
        assert designer.asr is asr  # not replaced
        assert "pages/op" in decision.describe()

    def test_retuned_asr_stays_maintained(self, world):
        generated, manager = world
        db, path = generated.db, generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        for _ in range(30):
            recorder.record_query(0, 1, "bw")
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)
        designer.retune()
        owner = generated.layers[0][0]
        collection = db.attr(owner, "A")
        if collection:
            db.set_insert(collection, generated.layers[1][1])
        manager.check_consistency()

    def test_unregistered_asr_rejected(self, world):
        from repro.asr import AccessSupportRelation

        generated, manager = world
        orphan = AccessSupportRelation.build(
            generated.db, generated.path, Extension.FULL
        )
        recorder = WorkloadRecorder(generated.path)
        with pytest.raises(CostModelError):
            AdaptiveDesigner(manager, orphan, recorder)

    def test_threshold_validation(self, world):
        generated, manager = world
        asr = manager.create(generated.path, Extension.FULL)
        recorder = WorkloadRecorder(generated.path)
        with pytest.raises(CostModelError):
            AdaptiveDesigner(manager, asr, recorder, improvement_threshold=0.5)
