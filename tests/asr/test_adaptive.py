"""Self-adjusting physical design: recorder + adaptive designer."""

import logging
import threading

import pytest

from repro.asr import (
    ASRManager,
    AccessSupportRelation,
    AdaptiveDesigner,
    Decomposition,
    Extension,
    WorkloadRecorder,
)
from repro.costmodel import ApplicationProfile
from repro.errors import CostModelError, InjectedFault, SimulatedCrash
from repro.faults import FaultInjector
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(30, 60, 120, 240),
    d=(27, 48, 96),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)

SIZES = {"T0": 400, "T1": 300, "T2": 200, "T3": 100}


@pytest.fixture()
def world():
    generated = ChainGenerator(seed=19).generate(PROFILE)
    manager = ASRManager(generated.db)
    return generated, manager


class TestWorkloadRecorder:
    def test_counts_queries_and_updates(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        recorder.record_query(0, 3, "bw", count=3)
        recorder.record_query(0, 1, "fw")
        recorder.record_update(1, count=2)
        assert recorder.total_queries == 4
        assert recorder.total_updates == 2
        assert recorder.total_operations == 6

    def test_to_mix_weights(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        recorder.record_query(0, 3, "bw", count=3)
        recorder.record_query(0, 2, "bw", count=1)
        recorder.record_update(0, count=4)
        mix, p_up = recorder.to_mix()
        assert p_up == pytest.approx(0.5)
        weights = {str(spec): w for w, spec in mix.queries}
        assert weights["Q0,3(bw)"] == pytest.approx(0.75)
        assert weights["Q0,2(bw)"] == pytest.approx(0.25)

    def test_empty_log_rejected(self, world):
        generated, _manager = world
        with pytest.raises(CostModelError):
            WorkloadRecorder(generated.path).to_mix()

    def test_validation(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        with pytest.raises(CostModelError):
            recorder.record_query(2, 2, "bw")
        with pytest.raises(CostModelError):
            recorder.record_query(0, 1, "sideways")
        with pytest.raises(CostModelError):
            recorder.record_update(3)

    def test_attached_recorder_counts_update_events(self, world):
        generated, _manager = world
        db = generated.db
        recorder = WorkloadRecorder(generated.path)
        recorder.attach(db)
        owner = generated.layers[0][0]
        collection = db.attr(owner, "A")
        if collection:
            db.set_insert(collection, generated.layers[1][0])
            assert recorder.updates[0] >= 1

    def test_reset(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        recorder.record_update(0)
        recorder.reset()
        assert recorder.total_operations == 0


class TestAdaptiveDesigner:
    def test_switches_away_from_poor_design(self, world):
        generated, manager = world
        path = generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        for _ in range(50):
            recorder.record_query(0, 2, "bw")  # RIGHT cannot serve (0,2)
        recorder.record_update(0, count=2)
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)
        decision = designer.retune()
        assert decision.retuned
        assert designer.asr.extension in (Extension.FULL, Extension.LEFT)
        manager.check_consistency()

    def test_keeps_good_design(self, world):
        generated, manager = world
        path = generated.path
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        recorder.record_query(1, 2, "fw", count=20)  # only full serves this
        designer = AdaptiveDesigner(
            manager, asr, recorder, SIZES, improvement_threshold=3.0
        )
        decision = designer.retune()
        assert designer.asr is asr  # not replaced
        assert "pages/op" in decision.describe()

    def test_retuned_asr_stays_maintained(self, world):
        generated, manager = world
        db, path = generated.db, generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        for _ in range(30):
            recorder.record_query(0, 1, "bw")
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)
        designer.retune()
        owner = generated.layers[0][0]
        collection = db.attr(owner, "A")
        if collection:
            db.set_insert(collection, generated.layers[1][1])
        manager.check_consistency()

    def test_unregistered_asr_rejected(self, world):
        from repro.asr import AccessSupportRelation

        generated, manager = world
        orphan = AccessSupportRelation.build(
            generated.db, generated.path, Extension.FULL
        )
        recorder = WorkloadRecorder(generated.path)
        with pytest.raises(CostModelError):
            AdaptiveDesigner(manager, orphan, recorder)

    def test_threshold_validation(self, world):
        generated, manager = world
        asr = manager.create(generated.path, Extension.FULL)
        recorder = WorkloadRecorder(generated.path)
        with pytest.raises(CostModelError):
            AdaptiveDesigner(manager, asr, recorder, improvement_threshold=0.5)

    def test_stable_workload_does_not_oscillate(self, world):
        """Regression: two consecutive ``recommend()`` calls on a stable
        workload must not keep requesting a switch.

        ``_is_current`` used to compare the advisor's ``DesignChoice``
        by identity; every sweep builds a fresh advisor, so the current
        design never looked current and the designer re-materialized
        the *same* design forever.
        """
        generated, manager = world
        path = generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        for _ in range(50):
            recorder.record_query(0, 2, "bw")
        recorder.record_update(0, count=2)
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)
        assert designer.retune().retuned  # moves off the poor design once
        first = designer.recommend()
        second = designer.recommend()
        assert not first.retuned
        assert not second.retuned

    def test_retune_bumps_epoch_exactly_once(self, world):
        generated, manager = world
        path = generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        for _ in range(50):
            recorder.record_query(0, 2, "bw")
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)
        epoch_before = manager.epoch
        assert designer.retune().retuned
        assert manager.epoch == epoch_before + 1
        assert len(manager.asrs) == 1


class TestRetuneRollback:
    """A retune that dies at any point leaves the old design serving."""

    def scenario(self):
        generated = ChainGenerator(seed=19).generate(PROFILE)
        injector = FaultInjector(seed=0)
        manager = ASRManager(generated.db, fault_injector=injector)
        path = generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        for _ in range(50):
            recorder.record_query(0, 2, "bw")
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)
        return generated, injector, manager, asr, designer

    def assert_rolled_back(self, manager, asr, designer, epoch_before):
        assert manager.asrs == [asr]  # never dropped, never replaced
        assert designer.asr is asr
        assert manager.epoch == epoch_before
        manager.check_consistency()
        # The old design still maintains: the db event hook chain (the
        # catch-up observer must be unsubscribed) is intact.
        decision = designer.retune()
        assert decision.retuned
        manager.check_consistency()

    def test_build_failure_rolls_back(self):
        generated, injector, manager, asr, designer = self.scenario()
        injector.fault_at("asr.retune.build", times=1)
        epoch_before = manager.epoch
        with pytest.raises(InjectedFault):
            designer.retune()
        self.assert_rolled_back(manager, asr, designer, epoch_before)

    def test_register_crash_rolls_back(self):
        generated, injector, manager, asr, designer = self.scenario()
        injector.crash_at("asr.retune.register")
        epoch_before = manager.epoch
        with pytest.raises(SimulatedCrash):
            designer.retune()
        injector.disarm()
        self.assert_rolled_back(manager, asr, designer, epoch_before)


class TestOnlineRetune:
    def test_update_landing_mid_build_is_caught_up(self, world, monkeypatch):
        """An update that lands after the replacement's bulk-build
        snapshot must be absorbed by the catch-up delta before the swap.
        """
        generated, manager = world
        db, path = generated.db, generated.path
        asr = manager.create(path, Extension.RIGHT, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        for _ in range(50):
            recorder.record_query(0, 2, "bw")
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)

        real_build = AccessSupportRelation.build.__func__
        owner = generated.layers[0][0]
        collection = db.attr(owner, "A")
        element = generated.layers[1][1]

        def build_then_mutate(cls, *args, **kwargs):
            replacement = real_build(cls, *args, **kwargs)
            # The replacement's rows are now frozen; this mutation is
            # visible only to the catch-up observer.
            db.set_insert(collection, element)
            return replacement

        monkeypatch.setattr(
            AccessSupportRelation, "build", classmethod(build_then_mutate)
        )
        decision = designer.retune()
        monkeypatch.undo()
        assert decision.retuned
        assert designer.asr is not asr
        manager.check_consistency()  # replacement matches a fresh rebuild


class TestTypeBorders:
    def test_collapsing_borders_are_logged(self, world, caplog):
        """A set-valued step's two columns share a type index; when both
        are decomposition borders the cost model prices a coarser design
        — loudly, not silently."""
        generated, manager = world
        path = generated.path
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        recorder = WorkloadRecorder(path)
        designer = AdaptiveDesigner(manager, asr, recorder, SIZES)
        with caplog.at_level(logging.WARNING, logger="repro.adaptive"):
            borders = designer._type_borders()
        assert len(borders) == len(set(borders))  # deduped
        assert any("coarser" in record.message for record in caplog.records)


class TestRecorderThreadSafety:
    def test_concurrent_recording_loses_nothing(self, world):
        generated, _manager = world
        recorder = WorkloadRecorder(generated.path)
        threads, per_thread = 8, 500
        start = threading.Barrier(threads)

        def hammer(k):
            start.wait()
            for _ in range(per_thread):
                if k % 2:
                    recorder.record_query(0, 2, "bw")
                else:
                    recorder.record_update(1)

        workers = [
            threading.Thread(target=hammer, args=(k,)) for k in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert recorder.total_operations == threads * per_thread
        assert recorder.total_queries == (threads // 2) * per_thread
        assert recorder.total_updates == (threads // 2) * per_thread
