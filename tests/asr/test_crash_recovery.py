"""Crash consistency: every ASR is consistent or quarantined, never torn.

The invariant under test: whatever named crash point fires during
maintenance, each managed ASR afterwards either still equals a
from-scratch rebuild (``consistency_check``) or is explicitly
quarantined — and after ``recover()`` it equals the rebuild again.  The
property test replays random update streams, chunked into transactions,
with a crash armed at every flush boundary, for all four extensions.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import ASRManager, ASRState, Decomposition, Extension
from repro.context import ExecutionContext
from repro.errors import InjectedFault, RecoveryError, SimulatedCrash
from repro.faults import FaultInjector

from tests.asr.test_batched_maintenance import apply_op, make_world, operations

FLUSH_POINTS = ("asr.flush.journal", "asr.flush.mid-delta", "asr.flush.post-delta")
APPLY_POINTS = ("asr.apply.journal", "asr.apply.mid-delta", "asr.apply.post-delta")


def managed_world(**manager_kwargs):
    db, path, parts, sets, prods = make_world()
    injector = FaultInjector(seed=0)
    manager = ASRManager(db, fault_injector=injector, **manager_kwargs)
    return db, path, parts, sets, prods, injector, manager


def seed_rows(db, parts, sets, prods):
    """Give every ASR something to tear: link prods -> sets -> parts."""
    for k in range(4):
        db.set_attr(prods[k], "Parts", sets[k])
        db.set_insert(sets[k], parts[k])


class TestCrashPoints:
    @pytest.mark.parametrize("point", FLUSH_POINTS)
    def test_crash_during_flush_quarantines_then_recovers(self, point):
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        seed_rows(db, parts, sets, prods)
        injector.crash_at(point)
        with pytest.raises(SimulatedCrash):
            with manager.batch():
                db.set_insert(sets[0], parts[5])
                db.set_remove(sets[1], parts[1])
        assert asr.quarantined
        assert manager.journal_for(asr) is not None
        assert manager.recover() == 1
        assert asr.state is ASRState.CONSISTENT
        assert manager.journal_for(asr) is None
        manager.check_consistency()

    @pytest.mark.parametrize("point", APPLY_POINTS)
    def test_crash_during_eager_apply(self, point):
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        injector.crash_at(point)
        with pytest.raises(SimulatedCrash):
            db.set_insert(sets[0], parts[5])
        assert asr.quarantined
        manager.recover()
        manager.check_consistency()

    @pytest.mark.parametrize("point", ("asr.recover.replay", "asr.recover.reload"))
    def test_crash_during_recovery_keeps_quarantine(self, point):
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        injector.crash_at("asr.flush.mid-delta")
        with pytest.raises(SimulatedCrash):
            with manager.batch():
                db.set_insert(sets[0], parts[5])
        injector.crash_at(point)
        with pytest.raises(SimulatedCrash):
            manager.recover()
        assert asr.quarantined  # the second "process" died too
        manager.recover()  # third run is clean and idempotent
        assert asr.state is ASRState.CONSISTENT
        manager.check_consistency()

    def test_recovery_is_idempotent_after_post_delta_crash(self):
        # post-delta: the delta was fully applied, only the commit is
        # missing.  Recovery must not double-apply anything.
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.CANONICAL)
        seed_rows(db, parts, sets, prods)
        injector.crash_at("asr.apply.post-delta")
        with pytest.raises(SimulatedCrash):
            db.set_insert(sets[0], parts[5])
        assert asr.quarantined
        manager.recover()
        manager.check_consistency()

    def test_events_on_quarantined_asr_are_absorbed(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        injector.crash_at("asr.apply.mid-delta")
        with pytest.raises(SimulatedCrash):
            db.set_insert(sets[0], parts[5])
        journal_before = manager.journal_for(asr)
        # Keep updating while quarantined: regions widen the journal
        # instead of touching the torn trees.
        db.set_insert(sets[1], parts[4])
        db.set_remove(sets[2], parts[2])
        assert asr.quarantined
        journal_after = manager.journal_for(asr)
        assert journal_after.region.anchors >= journal_before.region.anchors
        manager.recover()  # one pass heals the tear and everything since
        manager.check_consistency()


class TestTransientFaults:
    def test_flush_fault_auto_recovers_in_place(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.context = ExecutionContext()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        injector.fault_at("asr.flush.mid-delta", times=1)
        with manager.batch():  # no exception escapes: transient + retried
            db.set_insert(sets[0], parts[5])
        assert asr.state is ASRState.CONSISTENT
        assert manager.context.op_counts.get("asr.flush.fault") == 1
        assert manager.context.op_counts.get("asr.recover.ok") == 1
        manager.check_consistency()

    def test_without_auto_recover_flush_continues_degraded(self):
        db, path, parts, sets, prods, injector, manager = managed_world(
            auto_recover=False
        )
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        injector.fault_at("asr.flush.mid-delta", times=1)
        with manager.batch():
            db.set_insert(sets[0], parts[5])
        assert asr.quarantined
        manager.recover()
        manager.check_consistency()

    def test_recovery_retries_through_transient_faults(self):
        db, path, parts, sets, prods, injector, manager = managed_world(
            auto_recover=False
        )
        manager.context = ExecutionContext()
        asr = manager.create(path, Extension.RIGHT)
        seed_rows(db, parts, sets, prods)
        injector.fault_at("asr.apply.mid-delta", times=1)
        db.set_insert(sets[0], parts[5])
        assert asr.quarantined
        # Two transient faults, three attempts allowed: the third wins.
        injector.fault_at("asr.recover.replay", times=2)
        assert manager.recover() == 1
        assert asr.state is ASRState.CONSISTENT
        assert manager.context.op_counts["asr.recover.attempt"] == 3
        manager.check_consistency()

    def test_exhausted_retries_fall_back_to_rebuild(self):
        db, path, parts, sets, prods, injector, manager = managed_world(
            auto_recover=False
        )
        manager.context = ExecutionContext()
        asr = manager.create(path, Extension.LEFT)
        seed_rows(db, parts, sets, prods)
        injector.fault_at("asr.apply.mid-delta", times=1)
        db.set_insert(sets[0], parts[5])
        # Every replay attempt faults; the rebuild last resort heals.
        injector.fault_at("asr.recover.replay", times=ASRManager.DEFAULT_MAX_RETRIES)
        manager.recover()
        assert asr.state is ASRState.CONSISTENT
        assert manager.context.op_counts.get("asr.recover.rebuilt") == 1
        manager.check_consistency()

    def test_shared_partitions_refuse_recovery(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        seed_rows(db, parts, sets, prods)
        asr.partitions[0].shared = True
        injector.fault_at("asr.apply.mid-delta", times=1)
        # Auto-recovery sees the shared partition and refuses; the event
        # completes with the ASR quarantined (degraded, not torn).
        db.set_insert(sets[0], parts[5])
        assert asr.quarantined
        with pytest.raises(RecoveryError, match="shared partition"):
            manager.recover(asr)
        assert asr.quarantined
        # Unshare: scoped recovery becomes possible again.
        asr.partitions[0].shared = False
        manager.recover(asr)
        manager.check_consistency()

    def test_probabilistic_write_faults_quarantine_not_tear(self):
        db, path, parts, sets, prods, injector, manager = managed_world(
            auto_recover=False
        )
        manager.context = ExecutionContext(fault_injector=injector)
        asr = manager.create(path, Extension.FULL, Decomposition.binary(path.m))
        seed_rows(db, parts, sets, prods)
        injector.write_fault_rate = 0.4
        for k in range(6):
            try:
                db.set_insert(sets[k % 4], parts[(k + 3) % 6])
            except InjectedFault:
                pass
        injector.write_fault_rate = 0.0
        if asr.quarantined:
            manager.recover()
        assert asr.state is ASRState.CONSISTENT
        manager.check_consistency()


class TestBackoffLockDiscipline:
    def test_reader_progresses_during_recovery_backoff(self):
        """The retry ladder's sleeps release the write lock for readers.

        Regression test: ``_recover_one`` used to sleep its exponential
        backoff *inside* the manager's exclusive lock, stalling every
        reader for the whole ladder.  Now each attempt takes the lock
        individually and the sleeps run unlocked, so a concurrent reader
        acquires the read side promptly while recovery is backing off.
        """
        db, path, parts, sets, prods, injector, manager = managed_world(
            auto_recover=False
        )
        manager.context = ExecutionContext()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        injector.fault_at("asr.apply.mid-delta", times=1)
        db.set_insert(sets[0], parts[5])
        assert asr.quarantined
        # Two transient replay faults force two backoff sleeps (0.25s,
        # then 0.5s) before the third attempt heals the ASR.
        injector.fault_at("asr.recover.replay", times=2)
        manager.retry_backoff = 0.25
        worker = threading.Thread(target=manager.recover)
        worker.start()
        try:
            deadline = time.monotonic() + 5.0
            while injector.hits.get("asr.recover.replay", 0) < 1:
                if time.monotonic() > deadline:
                    pytest.fail("recovery never reached its first attempt")
                time.sleep(0.005)
            # From here the recovery thread is in its backoff ladder
            # (~0.75s of sleeping total).  Readers must get through far
            # faster than any single backoff step: with the old
            # hold-the-lock-while-sleeping behaviour this acquisition
            # blocked for the remainder of the whole ladder.
            acquisitions = 0
            while worker.is_alive() and acquisitions < 3:
                t0 = time.monotonic()
                with manager.lock.read():
                    acquired_in = time.monotonic() - t0
                assert acquired_in < 0.2, (
                    f"reader blocked {acquired_in:.3f}s during recovery backoff"
                )
                acquisitions += 1
                time.sleep(0.01)
            assert acquisitions >= 1
        finally:
            worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert asr.state is ASRState.CONSISTENT
        assert manager.context.op_counts["asr.recover.attempt"] == 3
        manager.check_consistency()


class TestBatchAbort:
    def test_exception_in_batch_does_not_flush_half_formed_state(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        manager.context = ExecutionContext()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        rows_before = set(asr.extension_relation.rows)
        with pytest.raises(RuntimeError):
            with manager.batch():
                db.set_insert(sets[0], parts[5])
                raise RuntimeError("application bug mid-transaction")
        # No tree work happened during unwind; the real net delta is
        # journalled via quarantine for a later, deliberate recovery.
        assert set(asr.extension_relation.rows) == rows_before
        assert manager.pending_regions == 0
        assert asr.quarantined
        assert manager.context.op_counts.get("asr.batch.aborted") == 1
        manager.recover()
        manager.check_consistency()

    def test_aborted_batch_with_net_empty_delta_is_discarded(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        with pytest.raises(RuntimeError):
            with manager.batch():
                db.set_insert(sets[0], parts[5])
                db.set_remove(sets[0], parts[5])  # net no-op
                raise RuntimeError("boom")
        # Nothing actually changed, so nothing to quarantine.
        assert asr.state is ASRState.CONSISTENT
        manager.check_consistency()

    def test_close_during_batch_still_flushes_then_unsubscribes(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        with manager.batch():
            db.set_insert(sets[0], parts[5])
            manager.close()
        assert manager.closed
        manager.check_consistency()
        manager.close()  # idempotent

    def test_close_survives_injected_crash_and_stays_closed(self):
        db, path, parts, sets, prods, injector, manager = managed_world()
        asr = manager.create(path, Extension.FULL)
        seed_rows(db, parts, sets, prods)
        injector.crash_at("asr.flush.mid-delta")
        manager._batch_depth += 1
        db.set_insert(sets[0], parts[5])
        manager._batch_depth -= 1
        with pytest.raises(SimulatedCrash):
            manager.close()
        assert manager.closed  # marked closed despite the crash
        assert asr.quarantined  # and the tear is not silent
        manager.recover()
        manager.check_consistency()


class TestCrashReplayProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        operations,
        st.integers(1, 6),
        st.sampled_from(list(Extension)),
        st.sampled_from(FLUSH_POINTS),
        st.integers(1, 3),
    )
    def test_recovered_state_equals_rebuild(self, ops, txn_size, extension, point, on_hit):
        """Random streams, a crash armed at every flush boundary."""
        db, path, parts, sets, prods = make_world()
        injector = FaultInjector(seed=0)
        manager = ASRManager(db, fault_injector=injector)
        asr = manager.create(path, extension, Decomposition.binary(path.m))
        alive = list(parts)
        for start in range(0, len(ops), txn_size):
            injector.crash_at(point, on_hit=on_hit)
            crashed = False
            try:
                with manager.batch():
                    for op, x, y in ops[start : start + txn_size]:
                        apply_op(db, alive, sets, prods, op, x, y)
            except SimulatedCrash:
                crashed = True
            injector.disarm()
            # The invariant: consistent or quarantined, never silently torn.
            if asr.quarantined:
                assert crashed
                manager.recover()
            assert asr.state is ASRState.CONSISTENT
            manager.check_consistency()
