"""Batched maintenance exactness: coalesced ≡ per-event ≡ rebuild.

Two managers subscribe to the *same* object base: one maintains its
ASRs eagerly (one neighbourhood delta per event), the other accumulates
each transaction's dirty regions and applies one coalesced delta per
ASR at the flush boundary.  After any random update stream, chunked
into arbitrary transactions, all three states must agree: the eager
ASR, the batched ASR, and a from-scratch rebuild
(``check_consistency``).  Exercised for all four extensions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import ASRManager, Decomposition, Extension
from repro.gom import NULL, ObjectBase, PathExpression, Schema

operations = st.lists(
    st.tuples(
        st.sampled_from(["attr", "insert", "remove", "rename", "delete"]),
        st.integers(0, 5),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=25,
)


def make_world():
    schema = Schema()
    schema.define_tuple("Part", {"Name": "STRING"})
    schema.define_set("PartSET", "Part")
    schema.define_tuple("Prod", {"Parts": "PartSET"})
    schema.validate()
    db = ObjectBase(schema)
    parts = [db.new("Part", Name=f"p{i}") for i in range(6)]
    sets = [db.new_set("PartSET") for _ in range(4)]
    prods = [db.new("Prod") for _ in range(4)]
    path = PathExpression.parse(schema, "Prod.Parts.Name")
    return db, path, parts, sets, prods


def apply_op(db, alive_parts, sets, prods, op, x, y):
    if op == "attr":
        db.set_attr(prods[x % 4], "Parts", sets[y % 4] if y < 4 else NULL)
    elif op == "insert" and alive_parts:
        db.set_insert(sets[x % 4], alive_parts[y % len(alive_parts)])
    elif op == "remove" and alive_parts:
        db.set_remove(sets[x % 4], alive_parts[y % len(alive_parts)])
    elif op == "rename" and alive_parts:
        db.set_attr(alive_parts[x % len(alive_parts)], "Name", f"r{y}")
    elif op == "delete" and len(alive_parts) > 1:
        db.delete(alive_parts.pop(x % len(alive_parts)))


@settings(max_examples=40, deadline=None)
@given(operations, st.integers(1, 8), st.sampled_from(list(Extension)))
def test_batched_streams_match_eager_and_rebuild(ops, txn_size, extension):
    db, path, parts, sets, prods = make_world()
    eager = ASRManager(db)
    asr_eager = eager.create(path, extension, Decomposition.binary(path.m))
    batched = ASRManager(db)
    asr_batched = batched.create(path, extension, Decomposition.none(path.m))
    alive_parts = list(parts)
    for start in range(0, len(ops), txn_size):
        with batched.batch():
            for op, x, y in ops[start : start + txn_size]:
                apply_op(db, alive_parts, sets, prods, op, x, y)
        # Transaction boundary: the coalesced flush has run; both
        # regimes must now equal a from-scratch rebuild.
        assert (
            asr_batched.extension_relation.rows == asr_eager.extension_relation.rows
        )
        eager.check_consistency()
        batched.check_consistency()
