"""Stored access support relations: partitions, trees, deltas."""

import pytest

from repro.asr import AccessSupportRelation, Decomposition, Extension
from repro.asr.asr import StoredPartition, cell_key, row_key
from repro.errors import RelationError, StorageError
from repro.gom import NULL
from repro.gom.objects import OID
from repro.storage.stats import AccessStats, BufferScope


class TestCellKeys:
    def test_total_order_across_kinds(self):
        keys = [cell_key(NULL), cell_key(OID(3)), cell_key(True), cell_key(7),
                cell_key("z")]
        assert keys == sorted(keys)

    def test_oid_ordering(self):
        assert cell_key(OID(1)) < cell_key(OID(2))

    def test_row_key_tuples(self):
        assert row_key((OID(1), NULL)) == (cell_key(OID(1)), cell_key(NULL))


class TestStoredPartition:
    def make(self):
        return StoredPartition(0, 1, ["a", "b"])

    def test_arity_and_geometry(self):
        partition = self.make()
        assert partition.arity == 2
        assert partition.tuples_per_page == 4056 // 16

    def test_invalid_range(self):
        with pytest.raises(StorageError):
            StoredPartition(2, 2, ["a"])

    def test_bulk_load_and_lookup(self):
        partition = self.make()
        rows = [(OID(i), OID(i + 10)) for i in range(50)]
        rows.append((OID(0), OID(99)))
        partition.bulk_load(rows)
        assert partition.tuple_count == 51
        hits = partition.lookup_forward(OID(0))
        assert sorted(hits) == [(OID(0), OID(10)), (OID(0), OID(99))]
        assert partition.lookup_backward(OID(99)) == [(OID(0), OID(99))]
        assert partition.lookup_forward(OID(777)) == []

    def test_refcounted_projection_deltas(self):
        partition = self.make()
        partition.bulk_load([])
        row = (OID(1), OID(2))
        partition.add_projection(row)
        partition.add_projection(row)  # second witness
        assert partition.tuple_count == 1
        partition.remove_projection(row)
        assert partition.tuple_count == 1  # still one witness left
        assert partition.lookup_forward(OID(1)) == [row]
        partition.remove_projection(row)
        assert partition.tuple_count == 0
        assert partition.lookup_forward(OID(1)) == []

    def test_remove_absent_projection_rejected(self):
        partition = self.make()
        with pytest.raises(RelationError):
            partition.remove_projection((OID(1), OID(2)))

    def test_project_drops_all_null(self):
        partition = StoredPartition(1, 2, ["b", "c"])
        assert partition.project((OID(1), NULL, NULL)) is None
        assert partition.project((OID(1), NULL, OID(2))) == (NULL, OID(2))

    def test_scan_charges_pages(self):
        partition = StoredPartition(0, 1, ["a", "b"])
        partition.bulk_load([(OID(i), OID(i)) for i in range(1000)])
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            rows = partition.scan(buffer)
        assert len(rows) == 1000
        assert stats.page_reads >= partition.page_count

    def test_byte_size(self):
        partition = self.make()
        partition.bulk_load([(OID(1), OID(2))])
        assert partition.byte_size == 16


class TestAccessSupportRelation:
    def test_build_partitions(self, company_world):
        db, path, _o = company_world
        asr = AccessSupportRelation.build(
            db, path, Extension.FULL, Decomposition.of(0, 2, 5)
        )
        assert len(asr.partitions) == 2
        assert asr.partitions[0].labels == (
            "OID_Division", "OID_ProdSET", "OID_Product",
        )
        assert asr.tuple_count == 4

    def test_default_decomposition_is_trivial(self, company_world):
        db, path, _o = company_world
        asr = AccessSupportRelation.build(db, path, Extension.CANONICAL)
        assert asr.decomposition.is_trivial

    def test_wrong_decomposition_span_rejected(self, company_world):
        db, path, _o = company_world
        with pytest.raises(Exception):
            AccessSupportRelation(path, Extension.FULL, Decomposition.of(0, 2))

    def test_partition_lookup_helpers(self, company_world):
        db, path, _o = company_world
        asr = AccessSupportRelation.build(
            db, path, Extension.FULL, Decomposition.of(0, 2, 5)
        )
        assert asr.partition_at(0).first_column == 0
        assert asr.partition_covering(3).first_column == 2
        with pytest.raises(StorageError):
            asr.partition_at(1)

    def test_apply_delta_round_trip(self, company_world):
        db, path, o = company_world
        asr = AccessSupportRelation.build(
            db, path, Extension.FULL, Decomposition.binary(path.m)
        )
        row = (o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door")
        asr.apply_delta([], [row])
        assert row not in asr.extension_relation
        asr.apply_delta([row], [])
        assert row in asr.extension_relation
        asr.consistency_check(db)

    def test_apply_delta_ignores_duplicates(self, company_world):
        db, path, o = company_world
        asr = AccessSupportRelation.build(
            db, path, Extension.FULL, Decomposition.binary(path.m)
        )
        row = (o["auto"], o["prods_auto"], o["sec"], o["parts_sec"], o["door"], "Door")
        asr.apply_delta([row], [])  # already present: no-op
        asr.consistency_check(db)

    def test_rebuild_after_manual_damage(self, company_world):
        db, path, _o = company_world
        asr = AccessSupportRelation.build(
            db, path, Extension.LEFT, Decomposition.binary(path.m)
        )
        damaged = next(iter(asr.extension_relation.rows))
        asr.extension_relation.discard(damaged)
        with pytest.raises(AssertionError):
            asr.consistency_check(db)
        asr.rebuild(db)
        asr.consistency_check(db)

    def test_total_bytes_and_pages(self, company_world):
        db, path, _o = company_world
        asr = AccessSupportRelation.build(
            db, path, Extension.FULL, Decomposition.binary(path.m)
        )
        assert asr.total_bytes > 0
        assert asr.total_pages >= len(asr.partitions) - 1

    def test_supports_query_delegates(self, company_world):
        db, path, _o = company_world
        asr = AccessSupportRelation.build(db, path, Extension.LEFT)
        assert asr.supports_query(0, 2)
        assert not asr.supports_query(1, 3)
