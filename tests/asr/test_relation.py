"""Unit and property tests for the relational algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr.relation import JoinKind, Relation, fold_join, fold_join_right
from repro.errors import RelationError
from repro.gom.objects import OID
from repro.gom.types import NULL


def rel(columns, rows):
    return Relation(columns, rows)


A, B, C, D, E = (OID(i) for i in range(5))


class TestBasics:
    def test_add_and_contains(self):
        r = rel(["x", "y"], [(A, B)])
        assert (A, B) in r
        assert len(r) == 1

    def test_arity_checked(self):
        r = rel(["x", "y"], [])
        with pytest.raises(RelationError):
            r.add((A,))

    def test_rows_deduplicated(self):
        r = rel(["x"], [(A,), (A,)])
        assert len(r) == 1

    def test_copy_is_independent(self):
        r = rel(["x"], [(A,)])
        clone = r.copy()
        clone.add((B,))
        assert len(r) == 1 and len(clone) == 2

    def test_equality_ignores_labels(self):
        assert rel(["x"], [(A,)]) == rel(["y"], [(A,)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(rel(["x"], []))


class TestJoins:
    def setup_method(self):
        self.left = rel(["a", "b"], [(A, B), (C, D)])
        self.right = rel(["b", "c"], [(B, E)])

    def test_natural_join(self):
        joined = self.left.join(self.right, JoinKind.NATURAL)
        assert joined.rows == {(A, B, E)}
        assert joined.columns == ("a", "b", "c")

    def test_left_outer_join(self):
        joined = self.left.join(self.right, JoinKind.LEFT_OUTER)
        assert joined.rows == {(A, B, E), (C, D, NULL)}

    def test_right_outer_join(self):
        extra = rel(["b", "c"], [(B, E), (D, A), (E, C)])
        joined = self.left.join(extra, JoinKind.RIGHT_OUTER)
        assert joined.rows == {(A, B, E), (C, D, A), (NULL, E, C)}

    def test_full_outer_join(self):
        extra = rel(["b", "c"], [(E, C)])
        joined = self.left.join(extra, JoinKind.FULL_OUTER)
        assert joined.rows == {(A, B, NULL), (C, D, NULL), (NULL, E, C)}

    def test_null_keys_never_match(self):
        left = rel(["a", "b"], [(A, NULL)])
        right = rel(["b", "c"], [(NULL, C)])
        assert left.join(right, JoinKind.NATURAL).rows == set()
        assert left.join(right, JoinKind.FULL_OUTER).rows == {
            (A, NULL, NULL),
            (NULL, NULL, C),
        }

    def test_many_to_many(self):
        left = rel(["a", "b"], [(A, B), (C, B)])
        right = rel(["b", "c"], [(B, D), (B, E)])
        joined = left.join(right, JoinKind.NATURAL)
        assert len(joined) == 4

    def test_zero_arity_rejected(self):
        with pytest.raises(RelationError):
            fold_join([], JoinKind.NATURAL)


class TestProjectionsAndSelections:
    def test_project_dedups(self):
        r = rel(["a", "b"], [(A, B), (A, C)])
        assert r.project([0]).rows == {(A,)}

    def test_project_drops_all_null(self):
        r = rel(["a", "b"], [(NULL, B), (NULL, NULL)])
        assert r.project([0]).rows == set()
        assert r.project([0], drop_all_null=False).rows == {(NULL,)}

    def test_slice(self):
        r = rel(["a", "b", "c"], [(A, B, C)])
        assert r.slice(1, 2).rows == {(B, C)}

    def test_project_out_of_range(self):
        r = rel(["a"], [])
        with pytest.raises(RelationError):
            r.project([1])

    def test_select_and_where(self):
        r = rel(["a", "b"], [(A, B), (C, D)])
        assert r.select(0, A).rows == {(A, B)}
        assert r.where(lambda row: row[1] == D).rows == {(C, D)}

    def test_distinct_ignores_null(self):
        r = rel(["a"], [(A,), (NULL,)])
        assert r.distinct(0) == {A}

    def test_complete_rows(self):
        r = rel(["a", "b"], [(A, B), (A, NULL)])
        assert r.complete_rows().rows == {(A, B)}

    def test_union_difference(self):
        r1, r2 = rel(["a"], [(A,)]), rel(["a"], [(B,)])
        assert r1.union(r2).rows == {(A,), (B,)}
        assert r1.union(r2).difference(r2).rows == {(A,)}
        with pytest.raises(RelationError):
            r1.union(rel(["a", "b"], []))

    def test_rename(self):
        r = rel(["a"], [(A,)])
        assert r.rename(["z"]).columns == ("z",)
        with pytest.raises(RelationError):
            r.rename(["x", "y"])

    def test_pretty_contains_rows(self):
        text = rel(["a", "b"], [(A, B)]).pretty()
        assert "a | b" in text
        assert "i0 | i1" in text


# ----------------------------------------------------------------------
# property-based: joins against a brute-force oracle
# ----------------------------------------------------------------------

cells = st.one_of(st.just(NULL), st.integers(0, 5).map(OID))
pairs = st.frozensets(st.tuples(cells, cells), max_size=12)


def brute_force_join(left_rows, right_rows, kind):
    result = set()
    matched_right = set()
    for l in left_rows:
        hits = [r for r in right_rows if l[-1] is not NULL and r[0] == l[-1]]
        for r in hits:
            result.add(l + r[1:])
            matched_right.add(r)
        if not hits and kind in (JoinKind.LEFT_OUTER, JoinKind.FULL_OUTER):
            result.add(l + (NULL,))
    if kind in (JoinKind.RIGHT_OUTER, JoinKind.FULL_OUTER):
        for r in right_rows:
            if r not in matched_right:
                result.add((NULL,) + r)
    return result


@settings(max_examples=200)
@given(pairs, pairs, st.sampled_from(list(JoinKind)))
def test_join_matches_brute_force(left_rows, right_rows, kind):
    left = rel(["a", "b"], left_rows)
    right = rel(["b", "c"], right_rows)
    assert left.join(right, kind).rows == brute_force_join(
        left.rows, right.rows, kind
    )


@settings(max_examples=100)
@given(pairs, pairs, pairs)
def test_natural_join_associative(r1, r2, r3):
    a, b, c = rel(["a", "b"], r1), rel(["b", "c"], r2), rel(["c", "d"], r3)
    left_first = a.join(b).join(c)
    right_first = a.join(b.join(c))
    assert left_first.rows == right_first.rows
    assert fold_join([a, b, c], JoinKind.NATURAL).rows == left_first.rows
    assert fold_join_right([a, b, c], JoinKind.NATURAL).rows == left_first.rows
