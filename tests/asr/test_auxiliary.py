"""Auxiliary relations (Definition 3.3) against the paper's own tables."""

from repro.asr import auxiliary_relations
from repro.asr.auxiliary import auxiliary_relation
from repro.gom.types import NULL


class TestCompanyAuxiliaries:
    """Section 3's worked example over the Figure 2 extension."""

    def test_e0_manufactures(self, company_world):
        db, path, o = company_world
        e0 = auxiliary_relation(db, path, 1)
        assert e0.columns == ("OID_Division", "OID_ProdSET", "OID_Product")
        assert e0.rows == {
            (o["auto"], o["prods_auto"], o["sec"]),
            (o["truck"], o["prods_truck"], o["sec"]),
            (o["truck"], o["prods_truck"], o["trak"]),
        }

    def test_e1_composition(self, company_world):
        db, path, o = company_world
        e1 = auxiliary_relation(db, path, 2)
        assert e1.rows == {
            (o["sec"], o["parts_sec"], o["door"]),
            (o["sausage"], o["parts_sausage"], o["pepper"]),
        }

    def test_e2_name_binary_with_values(self, company_world):
        db, path, o = company_world
        e2 = auxiliary_relation(db, path, 3)
        assert e2.arity == 2
        assert e2.rows == {(o["door"], "Door"), (o["pepper"], "Pepper")}

    def test_undefined_attributes_excluded(self, company_world):
        db, path, o = company_world
        e0 = auxiliary_relation(db, path, 1)
        assert o["space"] not in e0.distinct(0)  # Manufactures is NULL
        e1 = auxiliary_relation(db, path, 2)
        assert o["trak"] not in e1.distinct(0)  # Composition is NULL

    def test_empty_set_rule(self, company_world):
        db, path, _o = company_world
        empty = db.new_set("ProdSET")
        lonely = db.new("Division", Name="Lonely", Manufactures=empty)
        e0 = auxiliary_relation(db, path, 1)
        assert (lonely, empty, NULL) in e0.rows

    def test_all_auxiliaries(self, company_world):
        db, path, _o = company_world
        auxiliaries = auxiliary_relations(db, path)
        assert len(auxiliaries) == path.n
        assert [aux.arity for aux in auxiliaries] == [3, 3, 2]


class TestRobotAuxiliaries:
    def test_linear_binary_relations(self, robot_world):
        db, path, o = robot_world
        auxiliaries = auxiliary_relations(db, path)
        assert [aux.arity for aux in auxiliaries] == [2, 2, 2, 2]
        assert auxiliaries[3].rows == {(o["robclone"], "Utopia")}

    def test_shared_subobject(self, robot_world):
        db, path, o = robot_world
        e1 = auxiliary_relations(db, path)[1]  # ARM -> TOOL
        # Both x4d5's and robi's arms mount the same gripping tool.
        assert (o["arm_x4d5"], o["gripping"]) in e1.rows
        assert (o["arm_robi"], o["gripping"]) in e1.rows
