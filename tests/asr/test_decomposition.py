"""Decompositions (Def. 3.8) and losslessness (Thm. 3.9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr import Decomposition, Extension, build_extension
from repro.errors import DecompositionError


class TestValidation:
    def test_valid_borders(self):
        dec = Decomposition.of(0, 2, 5)
        assert dec.m == 5
        assert dec.partitions == ((0, 2), (2, 5))

    def test_must_start_at_zero(self):
        with pytest.raises(DecompositionError):
            Decomposition.of(1, 3)

    def test_strictly_increasing(self):
        with pytest.raises(DecompositionError):
            Decomposition.of(0, 2, 2)
        with pytest.raises(DecompositionError):
            Decomposition.of(0, 3, 1)

    def test_needs_two_borders(self):
        with pytest.raises(DecompositionError):
            Decomposition(())
        with pytest.raises(DecompositionError):
            Decomposition((0,))

    def test_binary_and_none(self):
        assert Decomposition.binary(4).borders == (0, 1, 2, 3, 4)
        assert Decomposition.binary(4).is_binary
        assert Decomposition.none(4).borders == (0, 4)
        assert Decomposition.none(4).is_trivial

    def test_all_for_counts(self):
        # 2^(m-1) decompositions of an (m+1)-column relation.
        for m in (1, 2, 3, 4, 5):
            assert len(list(Decomposition.all_for(m))) == 2 ** (m - 1)

    def test_all_for_unique_and_valid(self):
        decs = list(Decomposition.all_for(4))
        assert len({d.borders for d in decs}) == len(decs)
        for dec in decs:
            dec.validate_for(4)

    def test_partition_containing(self):
        dec = Decomposition.of(0, 2, 5)
        assert dec.partition_containing(0) == (0, 2)
        assert dec.partition_containing(2) == (0, 2)  # leftmost on border
        assert dec.partition_containing(3) == (2, 5)
        with pytest.raises(DecompositionError):
            dec.partition_containing(6)

    def test_validate_for_mismatch(self):
        with pytest.raises(DecompositionError):
            Decomposition.of(0, 3).validate_for(5)

    def test_str(self):
        assert str(Decomposition.of(0, 3, 4)) == "(0, 3, 4)"


class TestMaterialization:
    def test_binary_partitions_of_canonical(self, company_world):
        db, path, o = company_world
        canonical = build_extension(db, path, Extension.CANONICAL)
        partitions = Decomposition.binary(path.m).materialize(canonical)
        assert len(partitions) == path.m
        assert partitions[0].rows == {
            (o["auto"], o["prods_auto"]),
            (o["truck"], o["prods_truck"]),
        }
        assert partitions[-1].rows == {(o["door"], "Door")}

    def test_projection_drops_all_null_slices(self, company_world):
        from repro.gom import NULL

        db, path, _o = company_world
        full = build_extension(db, path, Extension.FULL)
        for dec in Decomposition.all_for(path.m):
            for partition in dec.materialize(full):
                for row in partition.rows:
                    assert any(cell is not NULL for cell in row)


class TestLosslessness:
    """Theorem 3.9: every decomposition of every extension is lossless."""

    @pytest.mark.parametrize("extension", list(Extension))
    def test_company_world_all_decompositions(self, company_world, extension):
        db, path, _o = company_world
        relation = build_extension(db, path, extension)
        for dec in Decomposition.all_for(path.m):
            partitions = dec.materialize(relation)
            recomposed = dec.recompose(partitions, extension)
            assert recomposed.rows == relation.rows, (extension, dec)

    def test_recompose_arity_checked(self, company_world):
        db, path, _o = company_world
        relation = build_extension(db, path, Extension.CANONICAL)
        dec = Decomposition.binary(path.m)
        partitions = dec.materialize(relation)
        with pytest.raises(DecompositionError):
            dec.recompose(partitions[:-1], Extension.CANONICAL)


# ----------------------------------------------------------------------
# property-based losslessness on random worlds
# ----------------------------------------------------------------------

from tests.asr.test_extensions import build_random_world  # noqa: E402

indices = st.integers(0, 3)
edges = st.frozensets(st.tuples(indices, indices), max_size=8)


@settings(max_examples=80, deadline=None)
@given(
    edges,
    edges,
    st.frozensets(indices, max_size=2),
    st.sampled_from(list(Extension)),
    st.data(),
)
def test_losslessness_random(edge01, edge12, empty_sets, extension, data):
    db, path = build_random_world(edge01, edge12, empty_sets, False)
    relation = build_extension(db, path, extension)
    decs = list(Decomposition.all_for(path.m))
    dec = data.draw(st.sampled_from(decs))
    recomposed = dec.recompose(dec.materialize(relation), extension)
    assert recomposed.rows == relation.rows
