"""FaultInjector: arming semantics, determinism, buffer-scope wiring."""

import pytest

from repro.context import ExecutionContext
from repro.errors import InjectedFault, SimulatedCrash, StorageError
from repro.faults import KNOWN_CRASH_POINTS, FaultInjector, reach
from repro.storage.stats import (
    AccessStats,
    BoundedBufferScope,
    BufferScope,
    NullBuffer,
)


class TestArming:
    def test_crash_fires_once_then_disarms(self):
        injector = FaultInjector()
        injector.crash_at("asr.flush.mid-delta")
        with pytest.raises(SimulatedCrash):
            injector.reach("asr.flush.mid-delta")
        assert injector.armed_points == ()
        # The "restarted process" passes the same point unharmed.
        injector.reach("asr.flush.mid-delta")
        assert injector.crashes_injected == 1

    def test_crash_on_nth_visit_counts_from_arming(self):
        injector = FaultInjector()
        injector.reach("p")  # historical visit, must not count
        injector.crash_at("p", on_hit=2)
        injector.reach("p")
        with pytest.raises(SimulatedCrash):
            injector.reach("p")

    def test_transient_fault_clears_after_times(self):
        injector = FaultInjector()
        injector.fault_at("p", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.reach("p")
        injector.reach("p")  # third visit is clean
        assert injector.faults_injected == 2
        assert injector.armed_points == ()

    def test_unarmed_points_are_free(self):
        injector = FaultInjector()
        for point in KNOWN_CRASH_POINTS:
            injector.reach(point)
        assert injector.faults_injected == 0
        assert injector.crashes_injected == 0

    def test_disarm(self):
        injector = FaultInjector()
        injector.crash_at("a")
        injector.fault_at("b")
        injector.disarm("a")
        assert injector.armed_points == ("b",)
        injector.disarm()
        assert injector.armed_points == ()

    def test_none_safe_module_helper(self):
        reach(None, "anything")  # must not raise
        injector = FaultInjector()
        injector.crash_at("x")
        with pytest.raises(SimulatedCrash):
            reach(injector, "x")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(read_fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(write_fault_rate=-0.1)
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.crash_at("p", on_hit=0)
        with pytest.raises(ValueError):
            injector.fault_at("p", times=0)

    def test_exception_taxonomy(self):
        # InjectedFault is a transient *storage* error; SimulatedCrash is
        # not (a dead process is not a retryable I/O condition).
        assert issubclass(InjectedFault, StorageError)
        assert not issubclass(SimulatedCrash, StorageError)


class TestProbabilisticFaults:
    def test_same_seed_replays_same_faults(self):
        def run(seed):
            injector = FaultInjector(seed=seed, read_fault_rate=0.3)
            outcomes = []
            for page in range(50):
                try:
                    injector.on_read(page)
                    outcomes.append(False)
                except InjectedFault:
                    outcomes.append(True)
            return outcomes

        assert run(11) == run(11)
        assert run(11) != run(12)  # astronomically unlikely to collide

    def test_zero_rate_never_faults(self):
        injector = FaultInjector(seed=1)
        for page in range(100):
            injector.on_read(page)
            injector.on_write(page)
        assert injector.faults_injected == 0


class TestBufferWiring:
    def _failing_injector(self):
        injector = FaultInjector(seed=0, read_fault_rate=1.0, write_fault_rate=1.0)
        return injector

    def test_buffer_scope_faults_only_on_miss(self):
        stats = AccessStats()
        scope = BufferScope(stats, self._failing_injector())
        with pytest.raises(InjectedFault):
            scope.touch("p1")
        # The failed read was not charged and the page is not resident.
        assert stats.page_reads == 0
        assert scope.distinct_pages == 0

    def test_resident_pages_never_fault(self):
        stats = AccessStats()
        injector = FaultInjector()
        scope = BufferScope(stats, injector)
        scope.touch("p1")
        injector.read_fault_rate = 1.0
        scope.touch("p1")  # cache hit: no physical I/O, no fault
        assert stats.page_reads == 1

    def test_null_buffer_faults_every_touch(self):
        stats = AccessStats()
        scope = NullBuffer(stats, self._failing_injector())
        with pytest.raises(InjectedFault):
            scope.touch("p1")
        with pytest.raises(InjectedFault):
            scope.touch_write("p1")
        assert stats.total == 0

    def test_bounded_scope_faults_before_lru_mutation(self):
        stats = AccessStats()
        injector = FaultInjector()
        scope = BoundedBufferScope(stats, capacity=2, injector=injector)
        scope.touch("p1")
        injector.write_fault_rate = 1.0
        with pytest.raises(InjectedFault):
            scope.touch_write("p1")  # resident but clean: write is charged
        # The failed write must not have marked the frame dirty, so a
        # retry after clearing the fault charges the write normally.
        injector.write_fault_rate = 0.0
        assert scope.touch_write("p1") is True
        assert stats.page_writes == 1

    def test_context_threads_injector_into_scopes(self):
        for policy, capacity in (("unbounded", None), ("bounded", 4), ("null", None)):
            injector = FaultInjector(seed=3, read_fault_rate=1.0)
            context = ExecutionContext(
                policy=policy, capacity=capacity, fault_injector=injector
            )
            with pytest.raises(InjectedFault):
                context.current_buffer.touch("p1")
