"""End-to-end request tracing: phases, endpoints, self-metrics, stress.

The acceptance bar of DESIGN §14: a single ``POST /query`` against
either serving core yields a retrievable trace whose phase rollup
(``queue + lock + plan + cache-hit + execute + device + serialize``)
accounts for >= 90% of the reported end-to-end latency, and the trace
endpoints plus the HTTP self-metrics observe every request — scrapes
included.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.bench.serve import ServeConfig
from repro.server import ServeDaemon, ServerConfig
from repro.telemetry.tracing import PHASES

QUERY = "select x from x in extent(T0) where x.A.A.A.A.Payload >= -5"


def traced_config(tmp_path, use_async: bool, **overrides) -> ServerConfig:
    serve_kwargs = dict(
        clients=2,
        ops=16,
        seed=7,
        capacity=64,
        # Disk-class I/O: the device phase dominates, so attribution
        # coverage is a meaningful bar rather than clock noise.
        io_dist="disk",
        max_spans=64,
        profile="queries",
        query_fraction=1.0,
        use_async=use_async,
        max_inflight=8,
        trace_sample_rate=1.0,
        slow_trace_ms=0.0,
    )
    serve_kwargs.update(overrides)
    return ServerConfig(
        serve=ServeConfig(**serve_kwargs),
        port=0,
        drift_interval=0.5,
        out=str(tmp_path / "BENCH_serve.json"),
    )


def http_get(daemon: ServeDaemon, path: str):
    host, port = daemon.address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=10
        ) as resp:
            raw = resp.read().decode()
            status = resp.status
    except urllib.error.HTTPError as error:
        raw = error.read().decode()
        status = error.code
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw


def post_query(daemon: ServeDaemon, text: str):
    host, port = daemon.address
    request = urllib.request.Request(
        f"http://{host}:{port}/query",
        data=json.dumps({"query": text}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def quiesce(daemon: ServeDaemon) -> None:
    daemon.request_stop()
    assert wait_until(
        lambda: all(not thread.is_alive() for thread in daemon._clients)
        and (daemon._loop_thread is None or not daemon._loop_thread.is_alive())
    ), "replay loop did not quiesce"


@pytest.fixture(params=["threaded", "async"])
def traced_daemon(request, tmp_path):
    daemon = ServeDaemon(traced_config(tmp_path, request.param == "async"))
    daemon.start()
    assert wait_until(lambda: daemon.ops_served > 0), "no operation completed"
    quiesce(daemon)
    yield daemon
    daemon.shutdown()


class TestQueryTraceAcceptance:
    def test_post_query_trace_phases_cover_the_latency(self, traced_daemon):
        # The acceptance bar: the phase rollup accounts for >= 90% of
        # the reported end-to-end latency.  A single sample is at the
        # mercy of scheduler preemption between clock reads on a loaded
        # machine, so take the best of a few attempts — a systematic
        # attribution hole fails all of them.  Each attempt varies the
        # literal so every plan is a cache miss (the bar covers the
        # full parse/validate/compile pipeline, not a cache probe).
        best = None
        for attempt in range(5):
            status, payload = post_query(
                traced_daemon, QUERY.replace(">= -5", f">= -{5 + attempt}")
            )
            assert status == 200
            trace_id = payload["trace_id"]
            status, trace = http_get(traced_daemon, f"/trace/{trace_id}")
            assert status == 200
            assert trace["trace_id"] == trace_id
            assert trace["name"] == "POST /query"
            assert trace["outcome"] == "ok"
            covered = sum(trace["phases"].values())
            if best is None or covered / trace["duration_ms"] > best[0]:
                best = (covered / trace["duration_ms"], payload, trace, covered)
            if covered >= 0.9 * trace["duration_ms"]:
                break
        ratio, payload, trace, covered = best
        assert covered >= 0.9 * trace["duration_ms"], (
            f"best phase coverage over 5 attempts was {ratio:.1%}"
        )
        assert trace["unattributed_ms"] == pytest.approx(
            trace["duration_ms"] - covered, abs=1e-3
        )
        # Every phase key belongs to the declared vocabulary, and the
        # pipeline's load-bearing ones are present.
        assert set(trace["phases"]) <= set(PHASES)
        expected = ["plan", "execute", "serialize"]
        if payload["total_pages"]:  # a fully buffer-resident query
            expected.append("device")  # charges no simulated I/O at all
        for phase in expected:
            assert phase in trace["phases"], f"missing phase {phase!r}"
        # The span tree is well-formed: parents precede children.
        for index, span in enumerate(trace["spans"]):
            assert span["parent"] is None or 0 <= span["parent"] < index
        assert trace["annotations"]["strategy"] == payload["strategy"]
        assert trace["annotations"]["pages"] == payload["total_pages"]

    def test_latency_exemplar_names_a_retained_trace(self, traced_daemon):
        status, payload = post_query(traced_daemon, QUERY)
        assert status == 200
        hist = traced_daemon.world.registry.histogram("query.latency_ms")
        assert hist is not None and hist.exemplar is not None
        status, trace = http_get(
            traced_daemon, f"/trace/{hist.exemplar['trace_id']}"
        )
        assert status == 200

    def test_replayed_operations_leave_traces_too(self, traced_daemon):
        status, body = http_get(traced_daemon, "/trace/recent?limit=100")
        assert status == 200
        assert body["tracing"]["enabled"] is True
        op_traces = [
            t
            for t in body["traces"]
            if t["name"] != "POST /query" and t["outcome"] == "ok"
        ]
        assert op_traces, "the replay loop left no completed traces"
        for summary in op_traces:
            assert sum(summary["phases"].values()) <= summary[
                "duration_ms"
            ] + 0.5, "phases overshoot the end-to-end latency"


class TestTraceEndpoints:
    def test_recent_is_newest_first(self, traced_daemon):
        # Retention order is *finish* order; with the replay quiesced,
        # the POSTed query is the newest retained trace.
        _status, payload = post_query(traced_daemon, QUERY)
        _status, body = http_get(traced_daemon, "/trace/recent?limit=3")
        assert len(body["traces"]) <= 3
        assert body["traces"][0]["trace_id"] == payload["trace_id"]

    def test_unknown_trace_id_is_404(self, traced_daemon):
        status, body = http_get(traced_daemon, "/trace/t0000-deadbeef")
        assert status == 404
        assert "trace not found" in body["error"]

    def test_404_directory_advertises_trace_endpoints(self, traced_daemon):
        status, body = http_get(traced_daemon, "/nope")
        assert status == 404
        assert "/trace/recent" in body["endpoints"]


class TestHttpSelfMetrics:
    def test_every_endpoint_is_counted_and_timed(self, traced_daemon):
        registry = traced_daemon.world.registry
        post_query(traced_daemon, QUERY)
        _status, body = http_get(traced_daemon, "/trace/recent")
        some_id = body["traces"][0]["trace_id"] if body["traces"] else "t-x"
        for path in ("/metrics", "/healthz", "/stats", f"/trace/{some_id}"):
            http_get(traced_daemon, path)
        for endpoint in (
            "/metrics",
            "/healthz",
            "/stats",
            "/query",
            "/trace/recent",
            "/trace/:id",
        ):
            # Self-metrics land in a finally after the response bytes
            # are on the wire, so allow the handler thread to catch up.
            assert wait_until(
                lambda: registry.counter_value("http.requests", endpoint=endpoint)
                >= 1
            ), f"uncounted endpoint {endpoint!r}"
            hist = registry.histogram("http.latency_ms", endpoint=endpoint)
            assert hist is not None and hist.count >= 1

    def test_unknown_paths_collapse_into_one_label(self, traced_daemon):
        http_get(traced_daemon, "/nope")
        http_get(traced_daemon, "/also/nope")
        registry = traced_daemon.world.registry
        assert wait_until(
            lambda: registry.counter_value("http.requests", endpoint="other") >= 2
        )

    def test_self_metrics_appear_in_the_exposition(self, traced_daemon):
        registry = traced_daemon.world.registry
        http_get(traced_daemon, "/metrics")
        # The self-metric lands in a finally *after* the response bytes
        # are on the wire, so wait for it before the next scrape.
        assert wait_until(
            lambda: registry.counter_value("http.requests", endpoint="/metrics")
            >= 1
        )
        _status, text = http_get(traced_daemon, "/metrics")
        assert 'repro_http_requests_total{endpoint="/metrics"}' in text
        assert "repro_http_latency_ms_bucket" in text
        # Derived quantiles ride along on every histogram family.
        assert 'repro_http_latency_ms_quantile{' in text


class TestSamplingOff:
    @pytest.fixture(params=["threaded", "async"])
    def untraced_daemon(self, request, tmp_path):
        daemon = ServeDaemon(
            traced_config(
                tmp_path,
                request.param == "async",
                io_dist="fixed",
                io_micros=20.0,
                trace_sample_rate=0.0,
                slow_trace_ms=None,
            )
        )
        daemon.start()
        assert wait_until(lambda: daemon.ops_served > 0)
        quiesce(daemon)
        yield daemon
        daemon.shutdown()

    def test_disabled_tracer_retains_nothing_and_omits_trace_ids(
        self, untraced_daemon
    ):
        status, payload = post_query(untraced_daemon, QUERY)
        assert status == 200
        assert "trace_id" not in payload
        assert len(untraced_daemon.world.tracer.store) == 0
        _status, body = http_get(untraced_daemon, "/trace/recent")
        assert body["tracing"]["enabled"] is False
        assert body["traces"] == []

    def test_threaded_core_publishes_queue_wait_either_way(
        self, untraced_daemon
    ):
        # The queue.wait_ms histogram exists on both cores now — the
        # threaded core's admission instant is the hand-off from
        # _next_op to drive start.
        hist = untraced_daemon.world.registry.histogram("queue.wait_ms")
        assert hist is not None and hist.count > 0


class TestTraceIntegrityUnderConcurrency:
    """8 workers hammering both cores must never tear a span tree."""

    @pytest.fixture(params=["threaded", "async"])
    def busy_daemon(self, request, tmp_path):
        daemon = ServeDaemon(
            traced_config(
                tmp_path,
                request.param == "async",
                clients=8,
                ops=64,
                io_dist="fixed",
                io_micros=50.0,
                query_fraction=0.8,
                trace_capacity=2048,
            )
        )
        daemon.start()
        assert wait_until(lambda: daemon.ops_served >= 200), "stream stalled"
        quiesce(daemon)
        yield daemon
        daemon.shutdown()

    def test_span_trees_stay_consistent(self, busy_daemon):
        traces = busy_daemon.world.tracer.store.recent(2048)
        assert len(traces) >= 200
        seen_ids = set()
        for trace in traces:
            assert trace.trace_id not in seen_ids, "duplicate trace id"
            seen_ids.add(trace.trace_id)
            assert trace.duration_ms is not None, "unfinished trace retained"
            for index, span in enumerate(trace.spans):
                parent = span["parent"]
                # Parents precede children within the same trace — a
                # span appended by a foreign request would break this
                # monotonicity (or the phase accounting below).
                assert parent is None or 0 <= parent < index
                assert span["duration_ms"] is not None
                assert span["start_ms"] >= 0.0
            assert set(trace.phases) <= set(PHASES)
            # Phases are disjoint segments: their sum can only approach
            # the end-to-end latency from below (small scheduling
            # tolerance for clock granularity).
            attributed = sum(trace.phases.values())
            assert attributed <= trace.duration_ms + 1.0, (
                f"phase sum {attributed:.3f}ms exceeds e2e "
                f"{trace.duration_ms:.3f}ms for {trace.trace_id}"
            )

    def test_completed_query_ops_attribute_their_device_time(self, busy_daemon):
        completed = [
            trace
            for trace in busy_daemon.world.tracer.store.recent(2048)
            if trace.outcome == "ok" and trace.annotations.get("pages")
        ]
        assert completed
        assert any("device" in trace.phases for trace in completed)
