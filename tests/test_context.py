"""ExecutionContext: policies, spans, hooks, export, and the buffer shim."""

import json

import pytest

from repro.context import POLICIES, ExecutionContext, resolve_buffer
from repro.storage.btree import BPlusTree
from repro.storage.stats import (
    AccessStats,
    BoundedBufferScope,
    BufferScope,
    NullBuffer,
)


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ExecutionContext(policy="magic")

    def test_bounded_requires_capacity(self):
        with pytest.raises(ValueError):
            ExecutionContext(policy="bounded")
        with pytest.raises(ValueError):
            ExecutionContext(policy="bounded", capacity=0)

    def test_capacity_only_for_bounded(self):
        with pytest.raises(ValueError):
            ExecutionContext(policy="unbounded", capacity=8)

    def test_all_policies_constructible(self):
        for policy in POLICIES:
            capacity = 4 if policy == "bounded" else None
            context = ExecutionContext(policy=policy, capacity=capacity)
            assert context.policy == policy

    def test_unbounded_scopes_are_fresh_per_operation(self):
        context = ExecutionContext()
        with context.operation("a") as buffer:
            buffer.touch("p1")
        with context.operation("b") as buffer:
            buffer.touch("p1")  # new scope: charged again
        assert context.stats.page_reads == 2

    def test_bounded_pool_survives_operations(self):
        context = ExecutionContext(policy="bounded", capacity=8)
        with context.operation("a") as buffer:
            assert isinstance(buffer, BoundedBufferScope)
            buffer.touch("p1")
        with context.operation("b") as buffer:
            buffer.touch("p1")  # still resident in the shared pool
        assert context.stats.page_reads == 1

    def test_null_policy_charges_every_touch(self):
        context = ExecutionContext(policy="null")
        with context.operation("a") as buffer:
            assert isinstance(buffer, NullBuffer)
            buffer.touch("p1")
            buffer.touch("p1")
        assert context.stats.page_reads == 2


class TestSpans:
    def test_operation_records_delta(self):
        context = ExecutionContext()
        with context.operation("load") as buffer:
            buffer.touch("p1", "object")
            buffer.touch_write("p2", "object")
        (span,) = context.spans
        assert span.name == "load"
        assert (span.page_reads, span.page_writes, span.total_pages) == (1, 1, 2)
        assert span.by_category == {"object": 1, "object:write": 1}
        assert context.op_counts == {"load": 1}

    def test_nested_spans_share_parent_delta(self):
        context = ExecutionContext()
        with context.operation("outer") as outer:
            outer.touch("p1")
            with context.operation("inner") as inner:
                inner.touch("p2")
        inner_span, outer_span = context.spans  # completion order
        assert inner_span.name == "inner" and inner_span.depth == 1
        assert inner_span.page_reads == 1
        assert outer_span.name == "outer" and outer_span.depth == 0
        assert outer_span.page_reads == 2  # child accesses included

    def test_current_buffer_tracks_operation(self):
        context = ExecutionContext()
        ambient = context.current_buffer
        with context.operation("op") as buffer:
            assert context.current_buffer is buffer
            assert buffer is not ambient
        assert context.current_buffer is ambient


class TestSpanRing:
    def test_max_spans_validated(self):
        import pytest

        with pytest.raises(ValueError, match="max_spans"):
            ExecutionContext(max_spans=0)

    def test_default_keeps_every_span(self):
        context = ExecutionContext()
        for i in range(10):
            with context.operation(f"op{i}"):
                pass
        assert len(context.spans) == 10
        assert context.spans_dropped == 0
        assert context.max_spans is None

    def test_ring_keeps_newest_and_counts_drops(self):
        context = ExecutionContext(max_spans=4)
        for i in range(6):
            with context.operation(f"op{i}"):
                pass
        assert [span.name for span in context.spans] == [
            "op2", "op3", "op4", "op5",
        ]
        assert context.spans_dropped == 2
        # The trace says what it lost; op_counts still covers all ops.
        trace = context.to_dict()
        assert trace["max_spans"] == 4
        assert trace["spans_dropped"] == 2
        assert sum(context.op_counts.values()) == 6

    def test_count_mirrors_into_registry(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        context = ExecutionContext(metrics=registry)
        context.count("plan.supported")
        context.count("plan.supported", 2)
        assert context.op_counts["plan.supported"] == 3
        assert registry.counter_value("ops", op="plan.supported") == 3

    def test_spans_publish_histograms_and_drops(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        context = ExecutionContext(max_spans=1, metrics=registry)
        for _ in range(3):
            with context.operation("probe") as buffer:
                buffer.touch("p")
        assert registry.histogram("span.pages", op="probe").count == 3
        assert registry.counter_value("spans.dropped") == 2
        assert context.spans_dropped == 2

    def test_snapshot_metrics_interleaves_with_trace(self):
        from repro.telemetry import MetricsRegistry

        context = ExecutionContext(metrics=MetricsRegistry())
        entry = context.snapshot_metrics("start")
        assert entry["at_span"] == 0 and entry["label"] == "start"
        with context.operation("op"):
            pass
        context.snapshot_metrics("end")
        trace = context.to_dict()
        assert [s["at_span"] for s in trace["metric_snapshots"]] == [0, 1]
        # The second snapshot already sees the completed span.
        end = trace["metric_snapshots"][1]["metrics"]
        assert end["counters"]["ops"][0]["value"] == 1

    def test_snapshot_metrics_without_registry_is_a_noop(self):
        context = ExecutionContext()
        assert context.snapshot_metrics("ignored") is None
        assert "metric_snapshots" not in context.to_dict()


class TestLifetime:
    def test_exit_hooks_run_lifo_once(self):
        order = []
        context = ExecutionContext()
        context.add_exit_hook(lambda: order.append("first"))
        context.add_exit_hook(lambda: order.append("second"))
        context.close()
        context.close()
        assert order == ["second", "first"]
        assert context.closed

    def test_with_block_closes(self):
        ran = []
        with ExecutionContext() as context:
            context.add_exit_hook(lambda: ran.append(True))
        assert ran == [True]


class TestExitHookFailures:
    """Regression: a raising hook used to leave the remaining hooks un-run
    (and the context marked open, so a retried close re-ran the failer)."""

    @staticmethod
    def _raiser(message):
        def hook():
            raise RuntimeError(message)

        return hook

    def test_later_hooks_still_run_after_a_failure(self):
        ran = []
        context = ExecutionContext()
        context.add_exit_hook(lambda: ran.append("first"))  # LIFO: runs last
        context.add_exit_hook(self._raiser("boom"))
        context.add_exit_hook(lambda: ran.append("third"))  # LIFO: runs first
        with pytest.raises(RuntimeError, match="boom"):
            context.close()
        assert ran == ["third", "first"]
        assert context.closed

    def test_single_failure_reraised_as_itself(self):
        context = ExecutionContext()
        context.add_exit_hook(self._raiser("only"))
        with pytest.raises(RuntimeError, match="only"):
            context.close()

    def test_multiple_failures_aggregate(self):
        from repro.errors import ExitHookError

        ran = []
        context = ExecutionContext()
        context.add_exit_hook(self._raiser("first-registered"))
        context.add_exit_hook(lambda: ran.append("middle"))
        context.add_exit_hook(self._raiser("last-registered"))
        with pytest.raises(ExitHookError) as excinfo:
            context.close()
        assert ran == ["middle"]
        errors = excinfo.value.errors
        assert [str(e) for e in errors] == ["last-registered", "first-registered"]
        assert excinfo.value.__cause__ is errors[0]
        assert "2 exit hook(s) failed" in str(excinfo.value)

    def test_failed_close_is_still_final(self):
        calls = []

        def failing():
            calls.append("ran")
            raise RuntimeError("once")

        context = ExecutionContext()
        context.add_exit_hook(failing)
        with pytest.raises(RuntimeError):
            context.close()
        context.close()  # second close must be a no-op
        assert calls == ["ran"]
        assert context.closed


class TestExport:
    def test_to_dict_round_trips_through_json(self):
        context = ExecutionContext()
        with context.operation("q") as buffer:
            buffer.touch("p1", "btree_leaf")
        data = json.loads(context.to_json())
        assert data["policy"] == "unbounded"
        assert data["page_reads"] == 1
        assert data["total_pages"] == 1
        assert data["op_counts"] == {"q": 1}
        assert data["spans"][0]["name"] == "q"
        assert data["spans"][0]["by_category"] == {"btree_leaf": 1}


class TestResolveBuffer:
    def test_none_passes_through(self):
        assert resolve_buffer() is None

    def test_raw_scope_passes_through(self):
        scope = BufferScope(AccessStats())
        assert resolve_buffer(scope) is scope

    def test_context_yields_current_buffer(self):
        context = ExecutionContext()
        with context.operation("op") as buffer:
            assert resolve_buffer(context) is buffer

    def test_buffer_kwarg_is_deprecated(self):
        scope = BufferScope(AccessStats())
        with pytest.warns(DeprecationWarning):
            assert resolve_buffer(buffer=scope) is scope

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            resolve_buffer(object())


class TestThreadingThroughStorage:
    def test_btree_charges_context(self):
        context = ExecutionContext()
        tree = BPlusTree(4, 4)
        with context.operation("build"):
            for key in range(20):
                tree.insert(key, key, context)
        with context.operation("probe"):
            assert tree.search(7, context) == 7
        build, probe = context.spans
        assert build.page_writes > 0
        assert probe.page_reads > 0
        assert context.stats.total == build.total_pages + probe.total_pages

    def test_bare_context_uses_ambient_scope(self):
        context = ExecutionContext()
        tree = BPlusTree(4, 4)
        tree.insert(1, "one", context)
        assert tree.search(1, context) == "one"
        assert context.stats.total > 0
        assert context.spans == []  # no operation was opened
