"""Tests of the telemetry layer: metrics registry and drift monitor."""
