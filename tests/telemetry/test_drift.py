"""Drift monitor: entry math, predictor dispatch, report, publication."""

import math

import pytest

from repro.asr.extensions import Extension
from repro.asr.manager import ASRManager
from repro.costmodel.parameters import ApplicationProfile
from repro.telemetry import CostModelPredictor, DriftMonitor, MetricsRegistry
from repro.telemetry.drift import UNSUPPORTED, DriftEntry, type_decomposition
from repro.workload.generator import ChainGenerator, measure_profile
from repro.workload.opstream import operation_stream
from repro.workload.profiles import FIG14_MIX

SMALL = ApplicationProfile(
    c=(20, 40, 60, 120, 240),
    d=(18, 32, 48, 100),
    fan=(2, 2, 2, 2),
    size=(100,) * 5,
)


@pytest.fixture(scope="module")
def world():
    """A small generated chain with one full ASR over its path."""
    generated = ChainGenerator(seed=4).generate(SMALL)
    manager = ASRManager(generated.db)
    manager.create(generated.path, Extension.FULL)
    return generated, manager


class TestDriftEntry:
    def test_running_ratios(self):
        entry = DriftEntry()
        entry.record(predicted=10.0, observed=20.0)
        entry.record(predicted=10.0, observed=5.0)
        assert entry.count == 2
        assert entry.ratio == pytest.approx(25.0 / 20.0)
        # geomean(2.0, 0.5) == 1.0 — multiplicative errors cancel.
        assert entry.geo_mean_ratio == pytest.approx(1.0)
        assert entry.min_ratio == pytest.approx(0.5)
        assert entry.max_ratio == pytest.approx(2.0)
        assert entry.skipped == 0

    def test_zero_on_either_side_is_skipped_not_poisoned(self):
        entry = DriftEntry()
        entry.record(predicted=0.0, observed=7.0)
        entry.record(predicted=4.0, observed=0.0)
        entry.record(predicted=4.0, observed=8.0)
        assert entry.skipped == 2
        assert entry.finite_count == 1
        assert entry.geo_mean_ratio == pytest.approx(2.0)
        assert math.isfinite(entry.geo_mean_ratio)

    def test_as_dict_is_json_safe_when_nothing_is_finite(self):
        entry = DriftEntry()
        entry.record(predicted=0.0, observed=0.0)
        data = entry.as_dict()
        assert data["min_ratio"] is None and data["max_ratio"] is None
        assert data["ratio"] == 1.0  # 0 observed / 0 predicted: no drift
        assert data["geo_mean_ratio"] == 1.0

    def test_observed_without_prediction_flags_infinite_ratio(self):
        entry = DriftEntry()
        entry.record(predicted=0.0, observed=3.0)
        assert entry.ratio == math.inf
        assert entry.as_dict()["ratio"] is None


class TestTypeDecomposition:
    def test_borders_are_type_indices(self, world):
        generated, manager = world
        asr = manager.asrs[0]
        dec = type_decomposition(asr)
        n = generated.path.n
        assert dec.m == n  # the cost model needs m == n
        assert all(0 <= border <= n for border in dec.borders)
        assert list(dec.borders) == sorted(set(dec.borders))


class TestCostModelPredictor:
    def test_query_predictions_follow_the_plan(self, world):
        generated, manager = world
        predictor = CostModelPredictor(measure_profile(generated))
        asr = manager.asrs[0]
        query = next(
            op.query
            for op in operation_stream(generated, FIG14_MIX, 80, seed=1)
            if op.kind == "query" and op.query.kind == "bw"
        )
        unsupported = predictor.predict_query(query, None)
        supported = predictor.predict_query(query, asr)
        assert unsupported is not None and unsupported > 0
        assert supported is not None and supported > 0
        # Backward lookups through a full ASR beat the exhaustive
        # traversal — the paper's headline result, reproduced here.
        assert supported < unsupported

    def test_unpriceable_shapes_return_none(self, world):
        generated, _manager = world

        class RangeLike:
            kind = "range"

        assert CostModelPredictor(SMALL).predict_query(RangeLike(), None) is None

    def test_update_prediction_is_positive(self, world):
        _generated, manager = world
        predictor = CostModelPredictor(SMALL)
        predicted = predictor.predict_update(1, manager.asrs[0])
        assert predicted is not None and predicted > 0


class TestDriftMonitor:
    def test_report_aggregates_by_key(self):
        monitor = DriftMonitor()
        monitor.record("full", "(0, 4)", "fw", predicted=10.0, observed=20.0)
        monitor.record("full", "(0, 4)", "fw", predicted=10.0, observed=5.0)
        monitor.record(UNSUPPORTED, "-", "bw", predicted=8.0, observed=8.0)
        report = monitor.report()
        keys = {(e["extension"], e["decomposition"], e["op"]) for e in report["by_key"]}
        assert keys == {("full", "(0, 4)", "fw"), (UNSUPPORTED, "-", "bw")}
        overall = report["overall"]
        assert overall["count"] == 3
        assert overall["skipped"] == 0
        # geomean(2, 0.5, 1) == 1
        assert overall["geo_mean_ratio"] == pytest.approx(1.0)
        assert overall["finite"] is True

    def test_empty_monitor_reports_unit_ratio(self):
        report = DriftMonitor().report()
        assert report["by_key"] == []
        assert report["overall"] == {
            "count": 0,
            "skipped": 0,
            "geo_mean_ratio": 1.0,
            "finite": True,
        }

    def test_record_bumps_registry_counter(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor(registry=registry)
        monitor.record("full", "(0, 4)", "fw", 1.0, 2.0)
        assert (
            registry.counter_value(
                "drift.observations", extension="full", decomposition="(0, 4)", op="fw"
            )
            == 1
        )

    def test_publish_writes_ratio_gauges(self):
        registry = MetricsRegistry()
        monitor = DriftMonitor()
        monitor.record("full", "(0, 4)", "fw", predicted=10.0, observed=5.0)
        monitor.publish(registry)
        labels = {"extension": "full", "decomposition": "(0, 4)", "op": "fw"}
        assert registry.gauge_value("drift.ratio", **labels) == pytest.approx(0.5)
        assert registry.gauge_value("drift.geo_mean_ratio", **labels) == pytest.approx(
            0.5
        )
        assert registry.gauge_value("drift.overall_geo_mean_ratio") == pytest.approx(
            0.5
        )

    def test_observe_query_keys_on_the_executed_plan(self, world):
        generated, manager = world
        predictor = CostModelPredictor(measure_profile(generated))
        monitor = DriftMonitor(predictor)
        asr = manager.asrs[0]
        query = next(
            op.query
            for op in operation_stream(generated, FIG14_MIX, 40, seed=2)
            if op.kind == "query"
        )
        monitor.observe_query(query, asr, observed_pages=6)
        monitor.observe_query(query, None, observed_pages=40)
        report = monitor.report()
        extensions = {e["extension"] for e in report["by_key"]}
        assert extensions == {asr.extension.value, UNSUPPORTED}

    def test_observe_update_sums_per_asr_predictions(self, world):
        _generated, manager = world
        predictor = CostModelPredictor(SMALL)
        monitor = DriftMonitor(predictor)
        asr = manager.asrs[0]
        single = predictor.predict_update(1, asr)
        monitor.observe_update(1, [asr, asr], observed_pages=12)
        (entry,) = monitor.report()["by_key"]
        assert entry["op"] == "ins_1"
        assert entry["predicted_pages"] == pytest.approx(2 * single, abs=0.01)

    def test_observe_update_apportions_across_distinct_asrs(self):
        # Two ASRs of different extensions over the same path: one
        # measured page delta must split per ASR by prediction share and
        # land under per-ASR keys — not all on the first ASR.
        generated = ChainGenerator(seed=9).generate(SMALL)
        manager = ASRManager(generated.db)
        manager.create(generated.path, Extension.FULL)
        manager.create(generated.path, Extension.LEFT)
        full, left = manager.asrs
        assert full.extension is not left.extension
        predictor = CostModelPredictor(SMALL)
        monitor = DriftMonitor(predictor)
        predictions = {
            asr.extension.value: predictor.predict_update(1, asr)
            for asr in (full, left)
        }
        observed = 30.0
        monitor.observe_update(1, [full, left], observed_pages=observed)

        entries = {e["extension"]: e for e in monitor.report()["by_key"]}
        assert set(entries) == {"full", "left"}
        total_predicted = sum(predictions.values())
        for name, entry in entries.items():
            assert entry["op"] == "ins_1"
            # Each key carries its *own* prediction...
            assert entry["predicted_pages"] == pytest.approx(
                predictions[name], abs=0.01
            )
            # ...and its proportional share of the one observed delta.
            assert entry["observed_pages"] == pytest.approx(
                observed * predictions[name] / total_predicted, abs=0.01
            )
        assert sum(e["observed_pages"] for e in entries.values()) == pytest.approx(
            observed, abs=0.02
        )

    def test_observe_without_predictor_is_a_noop(self, world):
        _generated, manager = world
        monitor = DriftMonitor()
        monitor.observe_update(1, manager.asrs, observed_pages=3)
        assert monitor.report()["overall"]["count"] == 0
