"""Tracer/Trace/TraceStore: sampling, tail capture, span trees, the ring."""

import json
import logging

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.tracing import (
    PHASES,
    TAIL_OUTCOMES,
    Trace,
    TraceStore,
    Tracer,
    activate,
    current_trace,
    maybe_span,
)


class TestDisabledTracer:
    def test_begin_returns_none_when_off(self):
        tracer = Tracer(sample_rate=0.0, slow_trace_ms=None)
        assert not tracer.enabled
        assert tracer.begin("op", "select") is None

    def test_finish_of_none_is_a_noop(self):
        tracer = Tracer()
        tracer.finish(None)
        tracer.finish(None, "error")
        assert len(tracer.store) == 0

    def test_slow_threshold_alone_enables(self):
        tracer = Tracer(sample_rate=0.0, slow_trace_ms=100.0)
        assert tracer.enabled
        assert tracer.begin("op", "select") is not None

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestHeadSampling:
    def test_sampling_is_seeded_and_deterministic(self):
        decisions = []
        for _ in range(2):
            tracer = Tracer(sample_rate=0.5, seed=42)
            decisions.append(
                [tracer.begin("op", "select").sampled for _ in range(64)]
            )
        assert decisions[0] == decisions[1]
        # A 0.5 rate over 64 coins lands strictly between the extremes.
        assert 0 < sum(decisions[0]) < 64

    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0, seed=7)
        assert all(tracer.begin("op", "q").sampled for _ in range(16))

    def test_sampled_counter_and_dropped_counter(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, sample_rate=0.0, slow_trace_ms=1e9)
        trace = tracer.begin("op", "select")
        assert trace is not None and not trace.sampled
        tracer.finish(trace)  # fast + ok -> dropped
        assert registry.counter_value("tracing.dropped") == 1
        assert registry.counter_value("tracing.sampled") == 0
        assert len(tracer.store) == 0

    def test_trace_ids_embed_the_seed_and_count_up(self):
        tracer = Tracer(sample_rate=1.0, seed=0xBEEF)
        first = tracer.begin("op", "q").trace_id
        second = tracer.begin("op", "q").trace_id
        assert first == "tbeef-00000001"
        assert second == "tbeef-00000002"


class TestTailCapture:
    def test_slow_trace_retained_despite_head_drop(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, sample_rate=0.0, slow_trace_ms=0.0)
        trace = tracer.begin("op", "select")
        tracer.finish(trace)  # every duration >= 0.0 ms is "slow"
        assert tracer.store.get(trace.trace_id) is trace
        assert registry.counter_value("tracing.slow_captured") == 1

    @pytest.mark.parametrize("outcome", sorted(TAIL_OUTCOMES))
    def test_tail_outcomes_always_retained(self, outcome):
        tracer = Tracer(sample_rate=0.0, slow_trace_ms=1e9)
        trace = tracer.begin("op", "select")
        tracer.finish(trace, outcome)
        assert tracer.store.get(trace.trace_id) is trace
        assert trace.outcome == outcome

    def test_ok_fast_unsampled_is_dropped(self):
        tracer = Tracer(sample_rate=0.0, slow_trace_ms=1e9)
        trace = tracer.begin("op", "select")
        tracer.finish(trace, "ok")
        assert tracer.store.get(trace.trace_id) is None

    def test_slow_query_log_line_is_structured_json(self, caplog):
        tracer = Tracer(sample_rate=1.0, slow_trace_ms=0.0)
        trace = tracer.begin("POST /query", "query")
        trace.annotate(
            query="select x from x in extent(T0)",
            strategy="asr:full:1",
            cached=False,
            epoch=3,
            pages=17,
        )
        trace.add_phase("execute", 1.25)
        with caplog.at_level(logging.INFO, logger="repro.slowquery"):
            tracer.finish(trace)
        records = [r for r in caplog.records if r.name == "repro.slowquery"]
        assert len(records) == 1
        line = json.loads(records[0].getMessage())
        assert line["event"] == "slow_query"
        assert line["trace_id"] == trace.trace_id
        assert line["query"] == "select x from x in extent(T0)"
        assert line["strategy"] == "asr:full:1"
        assert line["cached"] is False
        assert line["epoch"] == 3
        assert line["pages"] == 17
        assert line["phases"]["execute"] == 1.25

    def test_non_query_slow_traces_do_not_log(self, caplog):
        tracer = Tracer(sample_rate=1.0, slow_trace_ms=0.0)
        trace = tracer.begin("select-eq", "select")  # no query annotation
        with caplog.at_level(logging.INFO, logger="repro.slowquery"):
            tracer.finish(trace)
        assert not [r for r in caplog.records if r.name == "repro.slowquery"]


class TestTraceRecording:
    def test_phases_roll_up_and_sum(self):
        trace = Trace("t-1", "op", "select", sampled=True)
        trace.add_phase("queue", 2.0)
        trace.add_phase("lock.read", 1.0)
        trace.add_phase("lock.read", 0.5)
        assert trace.phases == {"queue": 2.0, "lock.read": 1.5}
        assert trace.phase_total_ms == 3.5

    def test_span_nesting_builds_a_parent_tree(self):
        trace = Trace("t-1", "op", "select", sampled=True)
        with trace.span("outer", "execute"):
            with trace.span("inner.annotation"):
                pass
        outer, inner = trace.spans
        assert outer["parent"] is None
        assert inner["parent"] == 0
        assert outer["duration_ms"] >= inner["duration_ms"]

    def test_unphased_spans_never_touch_the_rollup(self):
        trace = Trace("t-1", "op", "select", sampled=True)
        with trace.span("execute", "execute"):
            with trace.span("asr.lookup[full:1]"):  # annotation only
                pass
        assert set(trace.phases) == {"execute"}

    def test_every_declared_phase_is_recordable(self):
        trace = Trace("t-1", "op", "select", sampled=True)
        for phase in PHASES:
            trace.add_phase(phase, 1.0)
        assert set(trace.phases) == set(PHASES)

    def test_mark_ok_never_overwrites_a_failure(self):
        trace = Trace("t-1", "op", "select", sampled=True)
        trace.mark("degraded")
        trace.mark("ok")
        assert trace.outcome == "degraded"

    def test_summary_reports_unattributed_remainder(self):
        trace = Trace("t-1", "op", "select", sampled=True)
        trace.add_phase("execute", 1.0)
        trace.finish()
        summary = trace.summary()
        assert summary["unattributed_ms"] == pytest.approx(
            max(0.0, summary["duration_ms"] - 1.0), abs=1e-3
        )

    def test_backdated_origin_extends_the_duration(self):
        import time

        origin = time.perf_counter() - 0.05  # admitted 50 ms ago
        trace = Trace("t-1", "op", "select", sampled=True, started=origin)
        assert trace.finish() >= 50.0

    def test_as_dict_is_json_able(self):
        trace = Trace("t-1", "op", "select", sampled=True)
        with trace.span("execute", "execute"):
            pass
        trace.annotate(strategy="asr:full:1")
        trace.finish("ok")
        json.dumps(trace.as_dict())


class TestThreadLocalActivation:
    def test_activate_and_read_back(self):
        trace = Trace("t-1", "op", "select", sampled=True)
        assert current_trace() is None
        with activate(trace):
            assert current_trace() is trace
        assert current_trace() is None

    def test_activate_none_is_harmless(self):
        with activate(None):
            assert current_trace() is None

    def test_activation_nests(self):
        outer = Trace("t-1", "op", "select", sampled=True)
        inner = Trace("t-2", "op", "select", sampled=True)
        with activate(outer):
            with activate(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_activation_is_per_thread(self):
        import threading

        trace = Trace("t-1", "op", "select", sampled=True)
        seen = []
        with activate(trace):
            thread = threading.Thread(target=lambda: seen.append(current_trace()))
            thread.start()
            thread.join()
        assert seen == [None]

    def test_maybe_span_accepts_none(self):
        with maybe_span(None, "anything", "execute"):
            pass  # must not raise


class TestTraceStore:
    def _trace(self, trace_id):
        return Trace(trace_id, "op", "select", sampled=True)

    def test_put_get_roundtrip(self):
        store = TraceStore(capacity=4)
        trace = self._trace("t-1")
        store.put(trace)
        assert store.get("t-1") is trace
        assert store.get("t-404") is None

    def test_ring_evicts_oldest_and_prunes_the_index(self):
        store = TraceStore(capacity=3)
        traces = [self._trace(f"t-{i}") for i in range(5)]
        for trace in traces:
            store.put(trace)
        assert len(store) == 3
        assert store.get("t-0") is None  # evicted, not resurrectable
        assert store.get("t-1") is None
        assert [t.trace_id for t in store.recent()] == ["t-4", "t-3", "t-2"]

    def test_recent_is_newest_first_and_respects_limit(self):
        store = TraceStore(capacity=8)
        for i in range(5):
            store.put(self._trace(f"t-{i}"))
        assert [t.trace_id for t in store.recent(2)] == ["t-4", "t-3"]
        assert store.recent(0) == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestDescribe:
    def test_headline_state(self):
        tracer = Tracer(sample_rate=0.25, slow_trace_ms=50.0, capacity=16)
        described = tracer.describe()
        assert described == {
            "enabled": True,
            "sample_rate": 0.25,
            "slow_trace_ms": 50.0,
            "capacity": 16,
            "retained": 0,
        }
