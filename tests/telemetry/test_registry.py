"""MetricsRegistry: buckets, families, snapshots, exposition, threads."""

import json
import re
import threading

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import (
    BUCKET_BASE,
    MAX_BUCKET_INDEX,
    MIN_BUCKET_INDEX,
    QUANTILE_POINTS,
    HistogramState,
    bucket_index,
    estimate_quantile,
)


class TestBucketIndex:
    def test_zero_and_negative_fall_into_none_bucket(self):
        assert bucket_index(0.0) is None
        assert bucket_index(-3.5) is None

    def test_exact_power_belongs_to_its_own_bound(self):
        # Bucket i covers (2^(i-1), 2^i]: a value exactly on a bound is
        # counted under that bound, not the next one up.
        assert bucket_index(1.0) == 0
        assert bucket_index(2.0) == 1
        assert bucket_index(8.0) == 3
        assert bucket_index(BUCKET_BASE**10) == 10

    def test_interior_values_round_up(self):
        assert bucket_index(1.5) == 1
        assert bucket_index(2.1) == 2
        assert bucket_index(1000.0) == 10  # 2^9 < 1000 <= 2^10

    def test_clamped_to_fixed_range(self):
        assert bucket_index(1e-20) == MIN_BUCKET_INDEX
        assert bucket_index(1e20) == MAX_BUCKET_INDEX

    def test_bounds_partition_the_line(self):
        # Every bucket's lower bound is excluded, upper bound included.
        for index in (-3, 0, 5):
            upper = BUCKET_BASE**index
            assert bucket_index(upper) == index
            assert bucket_index(upper * 1.0001) == index + 1


class TestHistogramState:
    def test_summaries(self):
        state = HistogramState()
        for value in (1.0, 4.0, 16.0):
            state.observe(value)
        assert state.count == 3
        assert state.total == 21.0
        assert state.min == 1.0
        assert state.max == 16.0
        assert state.mean == 7.0

    def test_as_dict_materializes_le_bounds(self):
        state = HistogramState()
        state.observe(0.0)  # the <= 0 bucket
        state.observe(3.0)  # bucket 2, le = 4
        data = state.as_dict()
        assert [b["le"] for b in data["buckets"]] == [0.0, 4.0]
        assert all(b["count"] == 1 for b in data["buckets"])

    def test_empty_histogram_is_json_safe(self):
        data = HistogramState().as_dict()
        assert data["count"] == 0 and data["min"] == 0.0 and data["max"] == 0.0
        json.dumps(data)  # no inf leaks


class TestFamilies:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("ops", op="fw")
        registry.inc("ops", 2, op="fw")
        registry.inc("ops", op="bw")
        assert registry.counter_value("ops", op="fw") == 3
        assert registry.counter_value("ops", op="bw") == 1
        assert registry.counter_value("ops", op="never") == 0

    def test_gauges_keep_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("pool.hit_rate", 0.25)
        registry.set_gauge("pool.hit_rate", 0.75)
        assert registry.gauge_value("pool.hit_rate") == 0.75
        assert registry.gauge_value("absent") is None

    def test_callable_gauges_are_lazy(self):
        registry = MetricsRegistry()
        calls = []

        def occupancy():
            calls.append(1)
            return 7.0

        registry.gauge_fn("pool.occupancy", occupancy)
        assert not calls  # registration alone never evaluates
        assert registry.gauge_value("pool.occupancy") == 7.0
        snap = registry.snapshot()
        assert snap["gauges"]["pool.occupancy"][0]["value"] == 7.0
        assert len(calls) == 2

    def test_callable_gauge_may_publish_back_into_the_registry(self):
        # Gauge fns run *outside* the registry lock, so a gauge reading
        # a structure that itself publishes cannot deadlock.
        registry = MetricsRegistry()

        def nosy():
            registry.inc("gauge.reads")
            return 1.0

        registry.gauge_fn("nosy", nosy)
        assert registry.snapshot()["gauges"]["nosy"][0]["value"] == 1.0
        assert registry.counter_value("gauge.reads") == 1

    def test_histogram_accessor(self):
        registry = MetricsRegistry()
        registry.observe("span.pages", 5.0, op="fw")
        registry.observe("span.pages", 11.0, op="fw")
        state = registry.histogram("span.pages", op="fw")
        assert state.count == 2 and state.total == 16.0
        assert registry.histogram("span.pages", op="bw") is None


class TestSnapshotRoundTrip:
    def build(self):
        registry = MetricsRegistry()
        registry.inc("ops", 3, op="fw")
        registry.set_gauge("pool.hit_rate", 0.5)
        registry.gauge_fn("pool.occupancy", lambda: 2.0)
        for value in (0.0, 1.0, 3.0, 100.0):
            registry.observe("op.latency_ms", value, kind="query")
        return registry

    def test_snapshot_is_json_able(self):
        snap = self.build().snapshot()
        json.dumps(snap)
        assert snap["counters"]["ops"][0] == {"labels": {"op": "fw"}, "value": 3}

    def test_from_snapshot_reproduces_the_exposition(self):
        original = self.build()
        restored = MetricsRegistry.from_snapshot(original.snapshot())
        # Callable gauges come back as plain gauges with the same value,
        # so the text exposition — the observable surface — matches.
        assert restored.render_prometheus() == original.render_prometheus()
        assert restored.counter_value("ops", op="fw") == 3
        state = restored.histogram("op.latency_ms", kind="query")
        assert state.count == 4 and state.total == 104.0

    def test_from_snapshot_restores_bucket_indices(self):
        original = MetricsRegistry()
        original.observe("h", 0.0)
        original.observe("h", 4.0)
        restored = MetricsRegistry.from_snapshot(original.snapshot())
        assert restored.histogram("h").buckets == original.histogram("h").buckets


class TestPrometheus:
    def test_counter_gauge_histogram_conventions(self):
        registry = MetricsRegistry()
        registry.inc("asr.lookups", 2, extension="full")
        registry.set_gauge("pool.hit_rate", 0.5)
        registry.observe("span.pages", 1.0)
        registry.observe("span.pages", 3.0)
        text = registry.render_prometheus()
        assert '# TYPE repro_asr_lookups_total counter' in text
        assert 'repro_asr_lookups_total{extension="full"} 2' in text
        assert "repro_pool_hit_rate 0.5" in text
        # Histogram buckets are cumulative and end with +Inf == count.
        assert 'repro_span_pages_bucket{le="1.0"} 1' in text
        assert 'repro_span_pages_bucket{le="4.0"} 2' in text
        assert 'repro_span_pages_bucket{le="+Inf"} 2' in text
        assert "repro_span_pages_sum 4.0" in text
        assert "repro_span_pages_count 2" in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("query.degraded-fallback")
        text = registry.render_prometheus()
        assert "repro_query_degraded_fallback_total 1" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_label_values_escaped_per_exposition_format(self):
        # The text format requires \\, \", and \n escapes inside label
        # values — anything else corrupts the whole scrape.
        registry = MetricsRegistry()
        hostile = 'quote:" backslash:\\ newline:\n end'
        registry.inc("ops", path=hostile)
        text = registry.render_prometheus()
        line = next(
            ln for ln in text.splitlines() if ln.startswith("repro_ops_total{")
        )
        assert '\\"' in line
        assert "\\\\" in line
        assert "\\n" in line
        assert "\n" not in line  # the raw newline must not split the line

    def test_hostile_label_values_round_trip(self):
        registry = MetricsRegistry()
        hostile = {
            "a": 'x="1"',
            "b": "back\\slash",
            "c": "multi\nline\nvalue",
            "d": 'all three: \\ " \n!',
        }
        for key, value in hostile.items():
            registry.inc("ops", key=key, payload=value)
        text = registry.render_prometheus()

        def unescape(value: str) -> str:
            out, i = [], 0
            while i < len(value):
                if value[i] == "\\" and i + 1 < len(value):
                    out.append(
                        {"n": "\n", "\\": "\\", '"': '"'}[value[i + 1]]
                    )
                    i += 2
                else:
                    out.append(value[i])
                    i += 1
            return "".join(out)

        recovered = {}
        for line in text.splitlines():
            if not line.startswith("repro_ops_total{"):
                continue
            labels = dict(
                re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', line)
            )
            recovered[unescape(labels["key"])] = unescape(labels["payload"])
        assert recovered == hostile


class TestQuantileEstimation:
    """Pin the geometric (log-linear) interpolation to exact values."""

    def hist(self, *values):
        state = HistogramState()
        for value in values:
            state.observe(value)
        return state.as_dict()

    def test_pinned_values_for_one_two_four_eight(self):
        # Observations 1, 2, 4, 8 land one per bucket (le = 1, 2, 4, 8).
        hist = self.hist(1.0, 2.0, 4.0, 8.0)
        # p50: rank 2.0 tops out bucket le=2 exactly -> its upper bound.
        assert estimate_quantile(hist, 0.5) == 2.0
        # p95: rank 3.8 sits 0.8 into bucket (4, 8]; log-linear within
        # the bucket gives 4 * 2**0.8.
        assert estimate_quantile(hist, 0.95) == pytest.approx(
            4.0 * 2.0**0.8, rel=1e-12
        )
        # p99: rank 3.96 -> 4 * 2**0.96.
        assert estimate_quantile(hist, 0.99) == pytest.approx(
            4.0 * 2.0**0.96, rel=1e-12
        )

    def test_single_valued_histogram_is_exact_at_every_quantile(self):
        # min/max clamping pins every quantile of a constant stream.
        hist = self.hist(3.0, 3.0, 3.0, 3.0, 3.0)
        for q in QUANTILE_POINTS:
            assert estimate_quantile(hist, q) == 3.0

    def test_empty_histogram_reports_zero(self):
        assert estimate_quantile(self.hist(), 0.5) == 0.0

    def test_zero_bucket_has_no_geometric_span(self):
        assert estimate_quantile(self.hist(0.0, 0.0), 0.5) == 0.0

    def test_quantile_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            estimate_quantile(self.hist(1.0), 1.5)

    def test_rendered_quantile_lines(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 4.0, 8.0):
            registry.observe("lat", value)
        text = registry.render_prometheus()
        assert "# TYPE repro_lat_quantile gauge" in text
        assert 'repro_lat_quantile{quantile="0.5"} 2.0' in text
        p95_line = next(
            line
            for line in text.splitlines()
            if line.startswith('repro_lat_quantile{quantile="0.95"}')
        )
        assert float(p95_line.split()[-1]) == pytest.approx(
            4.0 * 2.0**0.8, rel=1e-9
        )


class TestExemplars:
    def test_exemplar_attaches_to_the_matching_bucket_line(self):
        registry = MetricsRegistry()
        registry.observe("lat", 3.0, exemplar="t0007-00000001")
        text = registry.render_prometheus()
        # 3.0 lands in bucket le=4; OpenMetrics-style suffix follows it.
        assert (
            'repro_lat_bucket{le="4.0"} 1 # {trace_id="t0007-00000001"} 3.0'
            in text
        )

    def test_newest_exemplar_wins(self):
        registry = MetricsRegistry()
        registry.observe("lat", 3.0, exemplar="t-old")
        registry.observe("lat", 100.0, exemplar="t-new")
        state = registry.histogram("lat")
        assert state.exemplar["trace_id"] == "t-new"
        assert state.exemplar["value"] == 100.0

    def test_observation_without_exemplar_keeps_the_last_one(self):
        registry = MetricsRegistry()
        registry.observe("lat", 3.0, exemplar="t-1")
        registry.observe("lat", 5.0)
        assert registry.histogram("lat").exemplar["trace_id"] == "t-1"

    def test_exemplar_round_trips_through_snapshot(self):
        registry = MetricsRegistry()
        registry.observe("lat", 3.0, exemplar="t-1")
        restored = MetricsRegistry.from_snapshot(registry.snapshot())
        assert restored.render_prometheus() == registry.render_prometheus()
        assert restored.histogram("lat").exemplar == {
            "trace_id": "t-1",
            "value": 3.0,
            "le": 4.0,
        }


class TestConcurrentPublishers:
    def test_totals_are_exact_under_contention(self):
        registry = MetricsRegistry()
        workers, rounds = 8, 500

        def publish(k):
            for i in range(rounds):
                registry.inc("ops", op="stress")
                registry.observe("lat", float(i % 7 + 1), worker=str(k))
                registry.set_gauge("last", float(i), worker=str(k))

        threads = [
            threading.Thread(target=publish, args=(k,)) for k in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("ops", op="stress") == workers * rounds
        for k in range(workers):
            state = registry.histogram("lat", worker=str(k))
            assert state.count == rounds
            assert sum(state.buckets.values()) == rounds
            assert registry.gauge_value("last", worker=str(k)) == rounds - 1

    def test_snapshot_during_publishing_never_tears(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def publish():
            while not stop.is_set():
                registry.observe("h", 2.0)

        thread = threading.Thread(target=publish)
        thread.start()
        try:
            for _ in range(50):
                snap = registry.snapshot()
                for entry in snap["histograms"].get("h", []):
                    # count always equals the bucket total: one lock
                    # covers both updates.
                    assert sum(b["count"] for b in entry["buckets"]) == entry["count"]
        finally:
            stop.set()
            thread.join()
