"""The command-line interface (``python -m repro``)."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestDemo:
    def test_demo_answers_query1(self):
        code, text = run_cli("demo")
        assert code == 0
        assert "R2D2" in text
        assert "asr-backward" in text


class TestValidate:
    def test_validate_prints_comparison(self):
        code, text = run_cli("validate", "--seed", "3")
        assert code == 0
        assert "measured unsupported" in text
        assert "results identical: True" in text

    def test_scale(self):
        code, text = run_cli("validate", "--seed", "3", "--scale", "0.5")
        assert code == 0
        assert "scale 0.5" in text


class TestFigures:
    def test_single_figure(self):
        code, text = run_cli("figures", "--only", "fig04")
        assert code == 0
        assert "Figure 4" in text
        assert "can/bi" in text

    def test_unknown_figure(self):
        code, text = run_cli("figures", "--only", "fig99")
        assert code == 2
        assert "unknown figure" in text

    @pytest.mark.parametrize("fig", ["fig06", "fig11"])
    def test_other_figures(self, fig):
        code, text = run_cli("figures", "--only", fig)
        assert code == 0


class TestAdvise:
    def write_profile(self, tmp_path, payload):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(payload))
        return path

    def test_advise_with_custom_mix(self, tmp_path):
        profile = self.write_profile(
            tmp_path,
            {
                "c": [100, 500, 1000],
                "d": [90, 400],
                "fan": [2, 3],
                "size": [300, 200, 100],
                "queries": [[1.0, 0, 2, "bw"]],
                "updates": [[1.0, 1]],
            },
        )
        code, text = run_cli("advise", "--profile", str(profile), "--pup", "0.3")
        assert code == 0
        assert "feasible designs" in text
        assert "pages/op" in text

    def test_advise_default_mix(self, tmp_path):
        profile = self.write_profile(
            tmp_path,
            {
                "c": [1000, 5000, 10000, 50000, 100000],
                "d": [900, 4000, 8000, 20000],
                "fan": [2, 2, 3, 4],
                "size": [500, 400, 300, 300, 100],
            },
        )
        code, text = run_cli("advise", "--profile", str(profile))
        assert code == 0
        assert "Q0,4(bw)" in text  # the built-in Figure 14 mix

    def test_budget_prunes(self, tmp_path):
        profile = self.write_profile(
            tmp_path,
            {
                "c": [1000, 5000, 10000, 50000, 100000],
                "d": [900, 4000, 8000, 20000],
                "fan": [2, 2, 3, 4],
                "size": [500, 400, 300, 300, 100],
            },
        )
        code_all, text_all = run_cli("advise", "--profile", str(profile))
        code_tight, text_tight = run_cli(
            "advise", "--profile", str(profile), "--budget-kib", "300"
        )
        assert code_all == code_tight == 0
        count_all = int(text_all.split(" feasible")[0].split()[-1])
        count_tight = int(text_tight.split(" feasible")[0].split()[-1])
        assert count_tight < count_all

    def test_missing_file(self, tmp_path):
        code, text = run_cli("advise", "--profile", str(tmp_path / "ghost.json"))
        assert code == 1
        assert "error" in text

    def test_invalid_profile(self, tmp_path):
        profile = self.write_profile(
            tmp_path, {"c": [10, 10], "d": [99], "fan": [1]}
        )
        code, text = run_cli("advise", "--profile", str(profile))
        assert code == 1
        assert "error" in text


class TestExportAndProfile:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "company.json"
        code, text = run_cli("export-demo", "--out", str(target))
        assert code == 0
        assert "13 objects" in text
        assert target.exists()
        code, text = run_cli(
            "profile",
            "--db",
            str(target),
            "--path",
            "Division.Manufactures.Composition.Name",
        )
        assert code == 0
        assert "c    = (3, 3, 2, 2)" in text
        assert "ASR configuration" in text

    def test_profile_missing_db(self, tmp_path):
        code, text = run_cli(
            "profile", "--db", str(tmp_path / "ghost.json"), "--path", "X.Y"
        )
        assert code == 1
        assert "error" in text

    def test_profile_bad_path(self, tmp_path):
        target = tmp_path / "company.json"
        run_cli("export-demo", "--out", str(target))
        code, text = run_cli("profile", "--db", str(target), "--path", "Ghost.X")
        assert code == 1
        assert "error" in text


class TestTracing:
    def test_demo_prints_page_accesses(self):
        code, text = run_cli("demo")
        assert code == 0
        assert "page accesses:" in text
        assert "total" in text

    def test_validate_writes_trace(self, tmp_path):
        trace = tmp_path / "trace.json"
        code, text = run_cli(
            "validate", "--seed", "3", "--scale", "0.5", "--trace", str(trace)
        )
        assert code == 0
        assert "trace:" in text
        data = json.loads(trace.read_text())
        assert data["policy"] == "unbounded"
        assert data["total_pages"] == data["page_reads"] + data["page_writes"]
        names = [span["name"] for span in data["spans"]]
        assert "query.unsupported.bw" in names
        assert "query.supported.bw" in names


class TestDoctor:
    def test_demo_crash_is_diagnosed(self):
        code, text = run_cli("doctor")
        assert code == 1  # something is quarantined: non-zero for scripts
        assert "asr.flush.mid-delta" in text
        assert "quarantined" in text
        assert "1 quarantined" in text

    def test_repair_recovers_and_exits_zero(self):
        code, text = run_cli("doctor", "--repair")
        assert code == 0
        assert "-> recovered" in text
        assert "0 quarantined" in text
        assert "1 recovered" in text

    def test_saved_database_is_healthy(self, tmp_path):
        target = tmp_path / "company.json"
        run_cli("export-demo", "--out", str(target))
        code, text = run_cli("doctor", "--db", str(target))
        assert code == 0
        assert "consistent" in text
        assert "0 quarantined" in text


class TestBenchServe:
    def test_serve_writes_report_and_exits_zero(self, tmp_path):
        target = tmp_path / "BENCH_serve.json"
        code, text = run_cli(
            "bench", "serve",
            "--clients", "2", "--ops", "20", "--io-micros", "20",
            "--capacity", "64", "--out", str(target),
        )
        assert code == 0
        assert "speedup" in text
        assert "accounting consistent" in text
        assert "cost-model drift" in text
        assert "(finite)" in text
        report = json.loads(target.read_text())
        assert report["benchmark"] == "serve"
        assert report["accounting"]["ok"] is True
        assert all("p99_ms" in entry for entry in report["operations"].values())
        assert "metrics" in report and "drift" in report

    def test_serve_async_flags(self, tmp_path):
        target = tmp_path / "BENCH_serve.json"
        code, text = run_cli(
            "bench", "serve",
            "--clients", "2", "--ops", "16", "--capacity", "16",
            "--io-micros", "1000", "--io-dist", "lognormal:0.3",
            "--async", "--max-inflight", "32", "--out", str(target),
        )
        assert code == 0
        assert "async core" in text
        assert "async vs threaded" in text
        report = json.loads(target.read_text())
        assert report["config"]["async"] is True
        assert report["config"]["io_dist"] == "lognormal:0.3"
        assert report["device"]["dist"] == "lognormal"
        assert report["serve"]["mode"] == "async"
        assert report["accounting"]["ok"] is True

    def test_bad_io_dist_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            run_cli("bench", "serve", "--io-dist", "tape")

    def test_shared_out_default_redirected_off_the_baseline(self):
        # BENCH_serve.json is the committed bench-serve baseline; every
        # other subcommand sharing the --out default must steer clear.
        from pathlib import Path

        from repro.cli import _redirect_shared_out

        default = Path("BENCH_serve.json")
        assert _redirect_shared_out(default, "BENCH_serve_daemon.json") == Path(
            "BENCH_serve_daemon.json"
        )
        assert _redirect_shared_out(default, "BENCH_chaos.json") == Path(
            "BENCH_chaos.json"
        )
        explicit = Path("/tmp/elsewhere/BENCH_serve.json")
        assert _redirect_shared_out(explicit, "BENCH_chaos.json") == explicit

    def test_daemon_config_default_out_is_not_the_baseline(self):
        from repro.server import ServerConfig

        assert ServerConfig().out == "BENCH_serve_daemon.json"

    def test_serve_fig16_profile(self, tmp_path):
        target = tmp_path / "BENCH_serve.json"
        code, text = run_cli(
            "bench", "serve",
            "--clients", "2", "--ops", "12", "--io-micros", "20",
            "--capacity", "64", "--profile", "fig16", "--out", str(target),
        )
        assert code == 0
        report = json.loads(target.read_text())
        assert report["config"]["profile"] == "fig16"
        assert report["accounting"]["ok"] is True


class TestStats:
    @pytest.fixture(scope="class")
    def report_path(self, tmp_path_factory):
        """One serve report shared by every stats rendering test."""
        target = tmp_path_factory.mktemp("serve") / "BENCH_serve.json"
        code, _ = run_cli(
            "bench", "serve",
            "--clients", "2", "--ops", "16", "--io-micros", "20",
            "--capacity", "64", "--out", str(target),
        )
        assert code == 0
        return target

    def test_human_table(self, report_path):
        code, text = run_cli("stats", "--in", str(report_path))
        assert code == 0
        assert "accounting" in text
        assert "drift" in text.lower()
        assert "pool.hit_rate" in text
        assert "op.latency_ms" in text

    def test_json_output(self, report_path):
        code, text = run_cli("stats", "--in", str(report_path), "--json")
        assert code == 0
        data = json.loads(text)
        assert set(data) == {"metrics", "drift", "accounting"}
        assert data["accounting"]["ok"] is True
        assert data["drift"]["overall"]["finite"] is True

    def test_prometheus_output(self, report_path):
        code, text = run_cli("stats", "--in", str(report_path), "--prometheus")
        assert code == 0
        assert "# TYPE repro_pool_hit_rate gauge" in text
        assert "repro_op_latency_ms_count" in text

    def test_missing_file_errors(self, tmp_path):
        code, text = run_cli("stats", "--in", str(tmp_path / "nope.json"))
        assert code == 1

    def test_report_without_telemetry_errors(self, tmp_path):
        stale = tmp_path / "old.json"
        stale.write_text(json.dumps({"benchmark": "serve"}))
        code, text = run_cli("stats", "--in", str(stale))
        assert code == 1
        assert "no telemetry" in text
