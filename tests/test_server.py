"""The long-lived serve daemon: endpoints, health, graceful drain, CLI."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.bench.serve import ServeConfig
from repro.server import ServeDaemon, ServerConfig
from repro.workload.opstream import apply_update, operation_stream

REPO_ROOT = Path(__file__).resolve().parents[1]


def tiny_config(tmp_path, **overrides) -> ServerConfig:
    defaults = dict(
        serve=ServeConfig(
            clients=2, ops=24, seed=7, capacity=64, io_micros=20.0, max_spans=64
        ),
        port=0,
        drift_interval=0.1,
        out=str(tmp_path / "BENCH_serve.json"),
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def get(daemon: ServeDaemon, path: str):
    """GET an endpoint; returns (status, content_type, body) even on 5xx."""
    host, port = daemon.address
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), error.read().decode()


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def daemon(tmp_path):
    instance = ServeDaemon(tiny_config(tmp_path))
    instance.start()
    assert wait_until(lambda: instance.ops_served > 0), "no operation completed"
    yield instance
    instance.shutdown()


def serve_ops_total(exposition: str) -> float:
    return sum(
        float(line.rsplit(" ", 1)[1])
        for line in exposition.splitlines()
        if line.startswith("repro_serve_ops_total")
    )


def prom_value(exposition: str, name: str):
    """The first sample of ``name`` in a Prometheus exposition, if any."""
    for line in exposition.splitlines():
        if line.startswith(f"{name} ") or line.startswith(f"{name}{{"):
            return float(line.rsplit(" ", 1)[1])
    return None


def async_config(tmp_path, **serve_overrides) -> ServerConfig:
    """An async-core daemon config whose device waits dominate.

    The cold 16-page pool makes operations fault real pages and the
    slow fixed device prices them at milliseconds each — so in-flight
    operations pile up well past ``clients`` and a small admission
    queue saturates, which is exactly what these tests observe.
    """
    serve = dict(
        clients=2,
        ops=24,
        seed=7,
        capacity=16,
        io_micros=4000.0,
        max_spans=64,
        use_async=True,
        max_inflight=8,
    )
    serve.update(serve_overrides)
    return tiny_config(tmp_path, serve=ServeConfig(**serve))


class TestEndpoints:
    def test_metrics_serves_live_prometheus_exposition(self, daemon):
        status, content_type, body = get(daemon, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_pool_hit_rate gauge" in body
        assert "repro_op_latency_ms_count" in body
        # The manager's lock publishes its writer queueing delays.
        assert "repro_lock_writer_wait_ms" in body

    def test_metrics_counters_are_monotone_across_scrapes(self, daemon):
        _, _, first = get(daemon, "/metrics")
        assert wait_until(
            lambda: daemon.ops_served > serve_ops_total(first), timeout=10
        )
        _, _, second = get(daemon, "/metrics")
        assert serve_ops_total(second) > serve_ops_total(first) > 0

    def test_healthz_reports_ok_while_serving(self, daemon):
        status, content_type, body = get(daemon, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert content_type == "application/json"
        assert payload["ok"] is True
        assert payload["status"] == "serving"
        assert payload["accounting"]["ok"] is True
        assert payload["hit_rate_ok"] is True
        assert payload["quarantined"] == []
        assert payload["asrs"] and all(
            entry["state"] == "consistent" for entry in payload["asrs"]
        )

    def test_healthz_non_200_when_accounting_violated(self, daemon):
        # Fake a torn charge: the retired accumulator gains a read the
        # shared pool never saw, so worker totals != shared totals.
        daemon.world.pool.retired.read(3)
        status, _, body = get(daemon, "/healthz")
        payload = json.loads(body)
        assert status == 503
        assert payload["ok"] is False
        assert payload["accounting"]["ok"] is False

    def test_stats_payload_matches_repro_stats_shape(self, daemon):
        status, _, body = get(daemon, "/stats")
        payload = json.loads(body)
        assert status == 200
        assert set(payload) == {"metrics", "drift", "accounting"}
        assert set(payload["metrics"]) == {"counters", "gauges", "histograms"}
        assert payload["accounting"]["ok"] is True
        # Rendered exactly like a written report, via the shared backend.
        from repro.telemetry import format_stats

        assert "accounting" in format_stats(
            payload["metrics"], payload["drift"], payload["accounting"]
        )

    def test_unknown_path_is_404_with_directory(self, daemon):
        status, _, body = get(daemon, "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_drift_republished_on_interval(self, daemon):
        registry = daemon.world.registry

        def republished():
            return registry.counter_value("serve.drift_republished")

        first = republished()
        assert wait_until(lambda: republished() > first, timeout=10)
        # The re-publication refreshes the ratio gauges, not just a counter.
        assert registry.gauge_value("drift.overall_geo_mean_ratio") is not None


class TestGracefulDrain:
    def test_shutdown_flushes_batched_maintenance_and_writes_report(self, tmp_path):
        config = tiny_config(tmp_path)
        daemon = ServeDaemon(config).start()
        assert wait_until(lambda: daemon.ops_served > 0)
        manager = daemon.world.manager
        # Leave maintenance pending at the drain boundary: open a batch
        # (never exited) and mutate the graph under the write lock.
        batch = manager.batch()
        batch.__enter__()
        update = next(
            op
            for op in operation_stream(
                daemon.world.generated,
                config.serve.resolved_profile()[1],
                count=40,
                seed=3,
                query_fraction=0.0,
            )
            if op.kind == "update"
        )
        with manager.exclusive():
            apply_update(daemon.world.generated, update)

        report = daemon.shutdown()
        assert manager.pending_regions == 0, "drain did not flush batched queues"
        assert manager.closed
        assert daemon.world.pool.contexts == []  # every context retired
        assert report["accounting"]["ok"] is True
        assert report["drained"]["errors"] == []
        written = json.loads(Path(config.out).read_text())
        assert written["benchmark"] == "serve"
        assert written["mode"] == "daemon"
        assert written["ops_served"] > 0
        assert written["operations"], "per-operation latency table missing"
        batch.__exit__(None, None, None)

    def test_shutdown_is_idempotent(self, tmp_path):
        daemon = ServeDaemon(tiny_config(tmp_path)).start()
        first = daemon.shutdown()
        assert daemon.shutdown() is first

    def test_stop_admission_precedes_drain(self, tmp_path):
        daemon = ServeDaemon(tiny_config(tmp_path)).start()
        daemon.request_stop()
        report = daemon.shutdown()
        # Once stopped, no further ops are admitted.
        assert report["ops_served"] == daemon.ops_served


class TestAsyncCore:
    def test_async_daemon_serves_beyond_clients_inflight(self, tmp_path):
        daemon = ServeDaemon(async_config(tmp_path)).start()
        try:
            assert wait_until(lambda: daemon.ops_served > 0)
            status, _, body = get(daemon, "/healthz")
            payload = json.loads(body)
            assert status == 200
            assert payload["core"] == "async"
            assert payload["ok"] is True

            # With 8 admission slots over 2 executor threads and a slow
            # device, a scrape catches more operations in flight than
            # the threaded core could ever hold (> clients).
            def inflight_exceeds_clients():
                _, _, exposition = get(daemon, "/metrics")
                inflight = prom_value(exposition, "repro_inflight")
                return inflight is not None and inflight > 2

            assert wait_until(inflight_exceeds_clients, timeout=20)
            _, _, exposition = get(daemon, "/metrics")
            assert prom_value(exposition, "repro_queue_depth") is not None
            assert "repro_queue_wait_ms" in exposition
        finally:
            report = daemon.shutdown()
        assert report["core"] == "async"
        assert report["accounting"]["ok"] is True
        assert report["drained"]["errors"] == []

    def test_overload_sheds_counted_and_healthz_stays_200(self, tmp_path):
        # Two admission slots, both glued to multi-ms device waits: the
        # replay pump saturates the queue and must shed, not queue
        # unboundedly — and shedding is *healthy*, not a 503.
        daemon = ServeDaemon(async_config(tmp_path, max_inflight=2)).start()
        try:
            registry = daemon.world.registry

            def rejected():
                return registry.counter_value("admission.rejected")

            assert wait_until(lambda: rejected() > 0, timeout=20)
            status, _, body = get(daemon, "/healthz")
            payload = json.loads(body)
            assert status == 200
            assert payload["ok"] is True
            assert payload["admission_rejected"] > 0
            _, _, exposition = get(daemon, "/metrics")
            assert prom_value(exposition, "repro_admission_rejected_total") > 0
        finally:
            report = daemon.shutdown()
        assert report["admission_rejected"] > 0
        assert report["accounting"]["ok"] is True

    def test_drain_under_saturated_queue_loses_nothing(self, tmp_path):
        config = async_config(tmp_path, max_inflight=2)
        daemon = ServeDaemon(config).start()
        registry = daemon.world.registry
        assert wait_until(
            lambda: registry.counter_value("admission.rejected") > 0, timeout=20
        )
        # Drain while the admission queue is provably saturated.
        manager = daemon.world.manager
        report = daemon.shutdown()
        assert manager.pending_regions == 0, "drain lost batched maintenance"
        assert manager.closed
        assert daemon.world.pool.contexts == []  # every context retired
        assert report["ops_served"] > 0
        assert report["accounting"]["ok"] is True
        assert report["drained"]["errors"] == []
        written = json.loads(Path(config.out).read_text())
        assert written["core"] == "async"
        assert written["config"]["async"] is True


class TestServeCLI:
    def test_daemon_serves_and_drains_on_sigterm(self, tmp_path):
        addr_file = tmp_path / "serve.addr"
        out = tmp_path / "BENCH_serve.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--clients", "2", "--ops", "24",
                "--io-micros", "20", "--drift-interval", "0.2",
                "--addr-file", str(addr_file), "--out", str(out),
            ],
            cwd=tmp_path,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            assert wait_until(addr_file.exists, timeout=30), "daemon never bound"
            addr = addr_file.read_text().strip()
            with urllib.request.urlopen(f"http://{addr}/healthz", timeout=10) as resp:
                assert resp.status == 200
                assert json.load(resp)["ok"] is True
            def _serve_counter_published() -> bool:
                with urllib.request.urlopen(
                    f"http://{addr}/metrics", timeout=10
                ) as resp:
                    return b"repro_serve_ops_total" in resp.read()

            # The counter appears once the first replayed op completes.
            assert wait_until(_serve_counter_published, timeout=30)
            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stdout
        assert "serving on http://" in stdout
        assert "drained after" in stdout
        report = json.loads(out.read_text())
        assert report["mode"] == "daemon"
        assert report["accounting"]["ok"] is True

    def test_async_daemon_drains_on_sigterm(self, tmp_path):
        addr_file = tmp_path / "serve.addr"
        out = tmp_path / "BENCH_serve.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--clients", "2", "--ops", "24",
                "--capacity", "16", "--io-micros", "4000",
                "--async", "--max-inflight", "8",
                "--drift-interval", "0.2",
                "--addr-file", str(addr_file), "--out", str(out),
            ],
            cwd=tmp_path,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            assert wait_until(addr_file.exists, timeout=30), "daemon never bound"
            addr = addr_file.read_text().strip()
            with urllib.request.urlopen(f"http://{addr}/healthz", timeout=10) as resp:
                payload = json.load(resp)
                assert payload["ok"] is True
                assert payload["core"] == "async"
            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stdout
        assert "[async core]" in stdout
        report = json.loads(out.read_text())
        assert report["core"] == "async"
        assert report["accounting"]["ok"] is True
