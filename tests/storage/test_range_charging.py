"""Regression: B+ tree range scans charge at consumption time.

``BPlusTree.range`` is a lazy generator, but it used to resolve the
context's *current* buffer eagerly at call time.  A range created inside
one operation span and iterated inside another then charged the span
that merely created it — and a consumed scan could look free in the span
that actually did the reading.
"""

import pytest

from repro.context import ExecutionContext
from repro.storage.btree import BPlusTree
from repro.storage.stats import AccessStats, BufferScope


def make_tree(entries: int = 200) -> BPlusTree:
    tree = BPlusTree(leaf_capacity=8, interior_capacity=8)
    for key in range(entries):
        tree.insert(key, key * 10)
    return tree


class TestDeferredRangeCharging:
    def test_consuming_span_is_charged_not_creating_span(self):
        tree = make_tree()
        context = ExecutionContext()
        with context.operation("create"):
            scan = tree.range(0, 150, context)
        with context.operation("consume"):
            consumed = list(scan)
        assert len(consumed) == 150
        create_span = next(s for s in context.spans if s.name == "create")
        consume_span = next(s for s in context.spans if s.name == "consume")
        assert create_span.page_reads == 0
        assert consume_span.page_reads > 0

    def test_unconsumed_range_charges_nothing(self):
        tree = make_tree()
        context = ExecutionContext()
        with context.operation("span"):
            tree.range(0, 150, context)
        assert context.stats.page_reads == 0

    def test_partially_consumed_range_charges_less_than_full(self):
        tree = make_tree()
        full_context = ExecutionContext()
        list(tree.range(None, None, full_context))
        partial_context = ExecutionContext()
        scan = tree.range(None, None, partial_context)
        for _ in range(5):
            next(scan)
        assert 0 < partial_context.stats.page_reads < full_context.stats.page_reads

    def test_total_charges_match_eager_buffer_path(self):
        tree = make_tree()
        context = ExecutionContext()
        with context.operation("scan"):
            rows_lazy = list(tree.range(10, 90, context))
        stats = AccessStats()
        rows_eager = list(tree.range(10, 90, BufferScope(stats)))
        assert rows_lazy == rows_eager
        assert context.stats.page_reads == stats.page_reads

    def test_scan_created_in_warm_span_still_charges_consuming_span(self):
        # The regression proper: under eager resolution the scan kept the
        # creating span's buffer scope, whose residency made a later
        # consumption in a fresh span look free.
        tree = make_tree()
        context = ExecutionContext()
        with context.operation("warm"):
            list(tree.range(0, 150, context))  # warms this span's scope
            scan = tree.range(0, 150, context)  # created now, consumed later
        with context.operation("cold"):
            consumed = list(scan)
        assert len(consumed) == 150
        cold = next(s for s in context.spans if s.name == "cold")
        assert cold.page_reads > 0

    def test_raw_buffer_scope_still_honoured(self):
        tree = make_tree()
        stats = AccessStats()
        buffer = BufferScope(stats)
        assert list(tree.range(0, 20, buffer))
        assert stats.page_reads > 0

    def test_interleaved_consumption_splits_charges_between_spans(self):
        tree = make_tree()
        context = ExecutionContext()
        scan = tree.range(None, None, context)
        with context.operation("first-half"):
            for _ in range(100):
                next(scan)
        with context.operation("second-half"):
            with pytest.raises(StopIteration):
                while True:
                    next(scan)
        first = next(s for s in context.spans if s.name == "first-half")
        second = next(s for s in context.spans if s.name == "second-half")
        assert first.page_reads > 0
        assert second.page_reads > 0
