"""Page-access accounting: counters, buffers, deltas."""

import pytest

from repro.storage.stats import AccessStats, BufferScope, NullBuffer


class TestAccessStats:
    def test_counts_and_categories(self):
        stats = AccessStats()
        stats.read(2, "object")
        stats.write(1, "btree_leaf")
        assert stats.page_reads == 2
        assert stats.page_writes == 1
        assert stats.total == 3
        assert stats.by_category == {"object": 2, "btree_leaf:write": 1}

    def test_reset(self):
        stats = AccessStats()
        stats.read()
        stats.reset()
        assert stats.total == 0 and stats.by_category == {}

    def test_snapshot_and_delta(self):
        stats = AccessStats()
        stats.read(3, "object")
        before = stats.snapshot()
        stats.read(2, "object")
        stats.write(1, "object")
        delta = stats.delta_since(before)
        assert delta.page_reads == 2
        assert delta.page_writes == 1
        assert delta.by_category == {"object": 2, "object:write": 1}

    def test_snapshot_is_independent(self):
        stats = AccessStats()
        snap = stats.snapshot()
        stats.read()
        assert snap.page_reads == 0


class TestBufferScope:
    def test_distinct_pages_charged_once(self):
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            assert buffer.touch("p1") is True
            assert buffer.touch("p1") is False
            assert buffer.touch("p2") is True
        assert stats.page_reads == 2
        assert buffer.distinct_pages == 2

    def test_writes_charged_once(self):
        stats = AccessStats()
        buffer = BufferScope(stats)
        assert buffer.touch_write("p1") is True
        assert buffer.touch_write("p1") is False
        assert stats.page_writes == 1

    def test_scopes_are_independent(self):
        stats = AccessStats()
        with BufferScope(stats) as b1:
            b1.touch("p1")
        with BufferScope(stats) as b2:
            b2.touch("p1")
        assert stats.page_reads == 2  # new scope, new charge

    def test_evict_all(self):
        stats = AccessStats()
        buffer = BufferScope(stats)
        buffer.touch("p1")
        buffer.evict_all()
        buffer.touch("p1")
        assert stats.page_reads == 2


class TestNullBuffer:
    def test_every_touch_charged(self):
        stats = AccessStats()
        buffer = NullBuffer(stats)
        buffer.touch("p1")
        buffer.touch("p1")
        buffer.touch_write("p1")
        assert stats.page_reads == 2
        assert stats.page_writes == 1


class TestBoundedBufferScope:
    def test_within_capacity_behaves_like_plain_buffer(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=10)
        assert buffer.touch("p1") is True
        assert buffer.touch("p1") is False
        assert stats.page_reads == 1

    def test_eviction_recharges(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        buffer.touch("p1")
        buffer.touch("p2")
        buffer.touch("p3")  # evicts p1 (LRU)
        assert buffer.touch("p1") is True  # recharged
        assert stats.page_reads == 4

    def test_lru_recency_refresh(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        buffer.touch("p1")
        buffer.touch("p2")
        buffer.touch("p1")  # refresh p1; p2 becomes LRU
        buffer.touch("p3")  # evicts p2
        assert buffer.touch("p1") is False
        assert buffer.touch("p2") is True

    def test_capacity_validation(self):
        from repro.storage.stats import BoundedBufferScope

        with pytest.raises(ValueError):
            BoundedBufferScope(AccessStats(), capacity=0)

    def test_distinct_pages_bounded(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=3)
        for page in range(10):
            buffer.touch(page)
        assert buffer.distinct_pages == 3
        buffer.evict_all()
        assert buffer.distinct_pages == 0

    def test_write_enters_residency(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        assert buffer.touch_write("p1") is True
        assert buffer.touch_write("p1") is False  # dirty and resident
        assert buffer.touch("p1") is False  # a write makes the page resident
        assert stats.page_writes == 1
        assert stats.page_reads == 0

    def test_write_refreshes_lru_recency(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        buffer.touch("p1")
        buffer.touch("p2")
        buffer.touch_write("p1")  # write refreshes p1; p2 becomes LRU
        buffer.touch("p3")  # evicts p2, not p1
        assert buffer.touch("p1") is False
        assert buffer.touch("p2") is True

    def test_evicted_dirty_page_recharges_on_rewrite(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        buffer.touch_write("p1")
        buffer.touch("p2")
        buffer.touch("p3")  # evicts p1
        assert buffer.touch_write("p1") is True  # write charged again
        assert stats.page_writes == 2

    def test_read_after_write_keeps_dirty_flag(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=4)
        buffer.touch_write("p1")
        buffer.touch("p1")  # read must not launder the dirty state
        assert buffer.touch_write("p1") is False  # still dirty: no new charge
        assert stats.page_writes == 1
