"""Page-access accounting: counters, buffers, deltas."""

import threading

import pytest

from repro.storage.stats import (
    AccessStats,
    BufferScope,
    NullBuffer,
    ThreadSafeAccessStats,
)


class TestAccessStats:
    def test_counts_and_categories(self):
        stats = AccessStats()
        stats.read(2, "object")
        stats.write(1, "btree_leaf")
        assert stats.page_reads == 2
        assert stats.page_writes == 1
        assert stats.total == 3
        assert stats.by_category == {"object": 2, "btree_leaf:write": 1}

    def test_reset(self):
        stats = AccessStats()
        stats.read()
        stats.reset()
        assert stats.total == 0 and stats.by_category == {}

    def test_snapshot_and_delta(self):
        stats = AccessStats()
        stats.read(3, "object")
        before = stats.snapshot()
        stats.read(2, "object")
        stats.write(1, "object")
        delta = stats.delta_since(before)
        assert delta.page_reads == 2
        assert delta.page_writes == 1
        assert delta.by_category == {"object": 2, "object:write": 1}

    def test_snapshot_is_independent(self):
        stats = AccessStats()
        snap = stats.snapshot()
        stats.read()
        assert snap.page_reads == 0


class TestBufferScope:
    def test_distinct_pages_charged_once(self):
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            assert buffer.touch("p1") is True
            assert buffer.touch("p1") is False
            assert buffer.touch("p2") is True
        assert stats.page_reads == 2
        assert buffer.distinct_pages == 2

    def test_writes_charged_once(self):
        stats = AccessStats()
        buffer = BufferScope(stats)
        assert buffer.touch_write("p1") is True
        assert buffer.touch_write("p1") is False
        assert stats.page_writes == 1

    def test_scopes_are_independent(self):
        stats = AccessStats()
        with BufferScope(stats) as b1:
            b1.touch("p1")
        with BufferScope(stats) as b2:
            b2.touch("p1")
        assert stats.page_reads == 2  # new scope, new charge

    def test_evict_all(self):
        stats = AccessStats()
        buffer = BufferScope(stats)
        buffer.touch("p1")
        buffer.evict_all()
        buffer.touch("p1")
        assert stats.page_reads == 2


class TestNullBuffer:
    def test_every_touch_charged(self):
        stats = AccessStats()
        buffer = NullBuffer(stats)
        buffer.touch("p1")
        buffer.touch("p1")
        buffer.touch_write("p1")
        assert stats.page_reads == 2
        assert stats.page_writes == 1


class TestBoundedBufferScope:
    def test_within_capacity_behaves_like_plain_buffer(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=10)
        assert buffer.touch("p1") is True
        assert buffer.touch("p1") is False
        assert stats.page_reads == 1

    def test_eviction_recharges(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        buffer.touch("p1")
        buffer.touch("p2")
        buffer.touch("p3")  # evicts p1 (LRU)
        assert buffer.touch("p1") is True  # recharged
        assert stats.page_reads == 4

    def test_lru_recency_refresh(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        buffer.touch("p1")
        buffer.touch("p2")
        buffer.touch("p1")  # refresh p1; p2 becomes LRU
        buffer.touch("p3")  # evicts p2
        assert buffer.touch("p1") is False
        assert buffer.touch("p2") is True

    def test_capacity_validation(self):
        from repro.storage.stats import BoundedBufferScope

        with pytest.raises(ValueError):
            BoundedBufferScope(AccessStats(), capacity=0)

    def test_distinct_pages_bounded(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=3)
        for page in range(10):
            buffer.touch(page)
        assert buffer.distinct_pages == 3
        buffer.evict_all()
        assert buffer.distinct_pages == 0

    def test_write_enters_residency(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        assert buffer.touch_write("p1") is True
        assert buffer.touch_write("p1") is False  # dirty and resident
        assert buffer.touch("p1") is False  # a write makes the page resident
        assert stats.page_writes == 1
        assert stats.page_reads == 0

    def test_write_refreshes_lru_recency(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        buffer.touch("p1")
        buffer.touch("p2")
        buffer.touch_write("p1")  # write refreshes p1; p2 becomes LRU
        buffer.touch("p3")  # evicts p2, not p1
        assert buffer.touch("p1") is False
        assert buffer.touch("p2") is True

    def test_evicted_dirty_page_recharges_on_rewrite(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        buffer.touch_write("p1")
        buffer.touch("p2")
        buffer.touch("p3")  # evicts p1
        assert buffer.touch_write("p1") is True  # write charged again
        assert stats.page_writes == 2

    def test_read_after_write_keeps_dirty_flag(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=4)
        buffer.touch_write("p1")
        buffer.touch("p1")  # read must not launder the dirty state
        assert buffer.touch_write("p1") is False  # still dirty: no new charge
        assert stats.page_writes == 1

    def test_evictions_counted(self):
        from repro.storage.stats import BoundedBufferScope

        stats = AccessStats()
        buffer = BoundedBufferScope(stats, capacity=2)
        for page in range(5):
            buffer.touch(page)
        assert buffer.evictions == 3


class TestMerge:
    def test_merge_folds_counters_and_categories(self):
        total = AccessStats()
        total.read(2, "object")
        part = AccessStats()
        part.read(1, "object")
        part.write(3, "btree_leaf")
        total.merge(part)
        assert total.page_reads == 3
        assert total.page_writes == 3
        assert total.by_category == {"object": 3, "btree_leaf:write": 3}


class TestThreadSafeAccessStats:
    def test_concurrent_charges_are_exact(self):
        stats = ThreadSafeAccessStats()
        workers, rounds = 8, 1000

        def charge(k):
            for _ in range(rounds):
                stats.read(1, f"cat{k % 2}")
                stats.write(1, f"cat{k % 2}")

        threads = [threading.Thread(target=charge, args=(k,)) for k in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.page_reads == workers * rounds
        assert stats.page_writes == workers * rounds
        # Per-category counts survive the interleaving too.
        assert stats.by_category["cat0"] + stats.by_category["cat1"] == workers * rounds

    def test_snapshot_never_observes_a_torn_increment(self):
        stats = ThreadSafeAccessStats()
        stop = threading.Event()

        def charge():
            while not stop.is_set():
                stats.read(1, "object")

        thread = threading.Thread(target=charge)
        thread.start()
        try:
            for _ in range(200):
                snap = stats.snapshot()
                # read() bumps page_reads and by_category under one lock:
                # a snapshot must always see them equal.
                assert snap.page_reads == snap.by_category.get("object", 0)
        finally:
            stop.set()
            thread.join()

    def test_snapshot_is_a_plain_stats(self):
        stats = ThreadSafeAccessStats()
        stats.read()
        snap = stats.snapshot()
        assert type(snap) is AccessStats
        assert snap.page_reads == 1
