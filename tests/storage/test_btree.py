"""B+ tree: unit tests, invariants, and a hypothesis model-based test."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.btree import MISSING, BPlusTree
from repro.storage.stats import AccessStats, BufferScope


def make_tree(leaf=4, interior=4):
    return BPlusTree(leaf_capacity=leaf, interior_capacity=interior)


class TestBasics:
    def test_empty(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.search(1) is MISSING
        assert 1 not in tree
        assert list(tree.range()) == []
        assert tree.height == 1
        assert tree.interior_height == 0

    def test_insert_and_search(self):
        tree = make_tree()
        tree.insert(5, "five")
        tree.insert(3, "three")
        assert tree.search(5) == "five"
        assert tree.search(3) == "three"
        assert tree.search(4) is MISSING
        assert 5 in tree

    def test_duplicate_key_rejected(self):
        tree = make_tree()
        tree.insert(1, "a")
        with pytest.raises(StorageError):
            tree.insert(1, "b")

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BPlusTree(1, 4)
        with pytest.raises(StorageError):
            BPlusTree(4, 2)

    def test_splits_grow_height(self):
        tree = make_tree()
        for key in range(100):
            tree.insert(key, key)
        assert tree.height > 1
        tree.check_invariants()
        assert list(tree.keys()) == list(range(100))

    def test_random_order_inserts(self):
        keys = list(range(500))
        random.Random(1).shuffle(keys)
        tree = make_tree(8, 8)
        for key in keys:
            tree.insert(key, -key)
        tree.check_invariants()
        assert [v for _, v in tree.items()] == [-k for k in range(500)]

    def test_delete_missing(self):
        tree = make_tree()
        assert tree.delete(42) is False

    def test_delete_all(self):
        tree = make_tree()
        keys = list(range(200))
        random.Random(2).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        random.Random(3).shuffle(keys)
        for key in keys:
            assert tree.delete(key) is True
            tree.check_invariants()
        assert len(tree) == 0

    def test_range_bounds(self):
        tree = make_tree()
        for key in range(0, 100, 2):
            tree.insert(key, key)
        assert [k for k, _ in tree.range(lo=10, hi=20)] == [10, 12, 14, 16, 18]
        assert [k for k, _ in tree.range(lo=11, hi=15)] == [12, 14]
        assert [k for k, _ in tree.range(hi=6)] == [0, 2, 4]
        assert [k for k, _ in tree.range(lo=94)] == [94, 96, 98]

    def test_node_counts(self):
        tree = make_tree(4, 4)
        for key in range(64):
            tree.insert(key, key)
        assert tree.leaf_count() >= 16
        assert tree.interior_count() >= 4


class TestBulkLoad:
    def test_matches_incremental(self):
        entries = [(k, k * 2) for k in range(1000)]
        bulk = BPlusTree.bulk_load(entries, 16, 16)
        bulk.check_invariants()
        assert list(bulk.items()) == entries
        assert bulk.search(500) == 1000

    def test_unsorted_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree.bulk_load([(2, 0), (1, 0)], 4, 4)
        with pytest.raises(StorageError):
            BPlusTree.bulk_load([(1, 0), (1, 0)], 4, 4)

    def test_empty_and_tiny(self):
        assert len(BPlusTree.bulk_load([], 4, 4)) == 0
        tree = BPlusTree.bulk_load([(1, "x")], 4, 4)
        assert tree.search(1) == "x"
        tree.check_invariants()

    def test_leaf_packing(self):
        entries = [(k, k) for k in range(100)]
        tree = BPlusTree.bulk_load(entries, 10, 16)
        assert tree.leaf_count() == 10  # fully packed

    def test_mutable_after_bulk_load(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(50)], 8, 8)
        tree.insert(1000, 1000)
        assert tree.delete(25)
        tree.check_invariants()
        assert tree.search(25) is MISSING
        assert tree.search(1000) == 1000


class TestPageAccounting:
    def test_lookup_touches_height_pages(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(10_000)], 64, 64)
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            tree.search(5000, buffer)
        assert stats.page_reads == tree.height

    def test_buffer_dedupes_within_scope(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(1000)], 64, 64)
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            tree.search(1, buffer)
            tree.search(1, buffer)
        assert stats.page_reads == tree.height  # second lookup free

    def test_range_scan_touches_all_leaves(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(1000)], 50, 50)
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            list(tree.range(buffer=buffer))
        leaf_reads = stats.by_category.get("btree_leaf", 0)
        assert leaf_reads == tree.leaf_count()

    def test_insert_charges_writes(self):
        tree = make_tree()
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            tree.insert(1, 1, buffer)
        assert stats.page_writes >= 1


# ----------------------------------------------------------------------
# hypothesis: the tree behaves exactly like a dict
# ----------------------------------------------------------------------

commands = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "search", "range"]),
        st.integers(0, 40),
        st.integers(0, 40),
    ),
    max_size=80,
)


@settings(max_examples=150, deadline=None)
@given(commands, st.integers(2, 6), st.integers(3, 6))
def test_model_based(ops, leaf_capacity, interior_capacity):
    tree = BPlusTree(leaf_capacity, interior_capacity)
    model: dict[int, int] = {}
    for op, key, value in ops:
        if op == "insert":
            if key in model:
                with pytest.raises(StorageError):
                    tree.insert(key, value)
            else:
                tree.insert(key, value)
                model[key] = value
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        elif op == "search":
            expected = model.get(key, MISSING)
            assert tree.search(key) == expected
        else:
            lo, hi = sorted((key, value))
            expected = sorted(
                (k, v) for k, v in model.items() if lo <= k < hi
            )
            assert list(tree.range(lo=lo, hi=hi)) == expected
        tree.check_invariants()
    assert list(tree.items()) == sorted(model.items())
