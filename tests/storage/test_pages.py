"""Page-geometry arithmetic (Figure 3, Eqs. 13-18)."""

import pytest

from repro.errors import StorageError
from repro.storage.pages import (
    DEFAULT_OID_SIZE,
    DEFAULT_PAGE_SIZE,
    DEFAULT_PP_SIZE,
    btree_fanout,
    objects_per_page,
    pages_needed,
    tuple_size,
    tuples_per_page,
)


class TestDefaults:
    def test_paper_values(self):
        assert DEFAULT_PAGE_SIZE == 4056
        assert DEFAULT_OID_SIZE == 8
        assert DEFAULT_PP_SIZE == 4

    def test_paper_fanout(self):
        # ⌊4056 / (4 + 8)⌋ = 338
        assert btree_fanout() == 338

    def test_fanout_too_small(self):
        with pytest.raises(StorageError):
            btree_fanout(page_size=10, pp_size=8, oid_size=8)


class TestTupleGeometry:
    def test_tuple_size(self):
        assert tuple_size(0, 4) == 40  # 5 OIDs x 8 bytes
        assert tuple_size(3, 4) == 16

    def test_invalid_range(self):
        with pytest.raises(StorageError):
            tuple_size(3, 2)

    def test_tuples_per_page(self):
        assert tuples_per_page(0, 1) == 4056 // 16
        assert tuples_per_page(0, 4) == 4056 // 40

    def test_tuple_larger_than_page(self):
        with pytest.raises(StorageError):
            tuples_per_page(0, 1000)


class TestObjectGeometry:
    def test_objects_per_page(self):
        assert objects_per_page(100) == 40
        assert objects_per_page(4056) == 1

    def test_oversized_object_clamped_to_one(self):
        assert objects_per_page(10_000) == 1

    def test_invalid_size(self):
        with pytest.raises(StorageError):
            objects_per_page(0)

    def test_pages_needed(self):
        assert pages_needed(0, 10) == 0
        assert pages_needed(1, 10) == 1
        assert pages_needed(10, 10) == 1
        assert pages_needed(11, 10) == 2
        with pytest.raises(StorageError):
            pages_needed(-1, 10)
        with pytest.raises(StorageError):
            pages_needed(1, 0)
