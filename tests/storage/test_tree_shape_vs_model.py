"""Physical B+ tree shape vs the cost model's Eqs. 19-20 at realistic scale."""

import math

import pytest

from repro.storage import BPlusTree, btree_fanout, tuples_per_page


@pytest.mark.parametrize("entries", [500, 5_000, 60_000])
def test_bulk_loaded_tree_matches_model(entries):
    """`ht` and leaf counts of a real tree track the analytical estimates."""
    fanout = btree_fanout()  # 338
    leaf_capacity = tuples_per_page(0, 1)  # binary partition: 253/page
    tree = BPlusTree.bulk_load(
        [(key, key) for key in range(entries)], leaf_capacity, fanout
    )
    tree.check_invariants()
    model_pages = math.ceil(entries / leaf_capacity)
    assert abs(tree.leaf_count() - model_pages) <= 1
    model_height = (
        0 if model_pages <= 1 else math.ceil(math.log(model_pages, fanout))
    )
    assert tree.interior_height in (model_height, model_height + 1)
    # Eq. 20 heads: interior pages ≈ Σ ceil(ap / fan^l).
    model_interior = sum(
        math.ceil(model_pages / fanout**level)
        for level in range(1, max(model_height, tree.interior_height) + 1)
    )
    assert abs(tree.interior_count() - model_interior) <= max(
        2, model_interior * 0.5
    )


def test_lookup_cost_is_height_plus_leaf():
    """A point lookup touches exactly ht interior pages + 1 leaf (Eq. 33's
    first-sum shape: ht + nlp with nlp = 1 for short runs)."""
    from repro.storage.stats import AccessStats, BufferScope

    fanout = btree_fanout()
    leaf_capacity = tuples_per_page(0, 1)
    tree = BPlusTree.bulk_load(
        [(key, key) for key in range(100_000)], leaf_capacity, fanout
    )
    stats = AccessStats()
    with BufferScope(stats) as buffer:
        assert tree.search(54_321, buffer) == 54_321
    assert stats.page_reads == tree.interior_height + 1
