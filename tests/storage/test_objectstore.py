"""Type-clustered object store: layout, accounting, event wiring."""

import pytest

from repro.errors import StorageError
from repro.gom import ObjectBase, Schema
from repro.storage.objectstore import ClusteredObjectStore
from repro.storage.stats import AccessStats, BufferScope


@pytest.fixture()
def db():
    schema = Schema()
    schema.define_tuple("Big", {"Name": "STRING"})
    schema.define_tuple("Small", {"Name": "STRING"})
    schema.validate()
    return ObjectBase(schema)


class TestLayout:
    def test_objects_per_page_by_type(self, db):
        store = ClusteredObjectStore({"Big": 2000, "Small": 100})
        assert store.objects_per_page("Big") == 2
        assert store.objects_per_page("Small") == 40
        assert store.objects_per_page("Unknown") == 40  # default 100 bytes

    def test_pages_of_type(self, db):
        store = ClusteredObjectStore({"Big": 2000})
        oids = [db.new("Big") for _ in range(5)]
        for oid in oids:
            store.register(oid, "Big")
        assert store.pages_of_type("Big") == 3  # 2 per page

    def test_page_of_is_clustered(self, db):
        store = ClusteredObjectStore({"Big": 2000})
        a, b, c = (db.new("Big") for _ in range(3))
        for oid in (a, b, c):
            store.register(oid, "Big")
        assert store.page_of(a, "Big") == store.page_of(b, "Big")
        assert store.page_of(c, "Big") != store.page_of(a, "Big")

    def test_double_register_rejected(self, db):
        store = ClusteredObjectStore()
        oid = db.new("Big")
        store.register(oid, "Big")
        with pytest.raises(StorageError):
            store.register(oid, "Big")

    def test_unregister_frees_slot(self, db):
        store = ClusteredObjectStore({"Big": 2000})
        a = db.new("Big")
        store.register(a, "Big")
        store.unregister(a, "Big")
        assert store.pages_of_type("Big") == 0
        b = db.new("Big")
        store.register(b, "Big")  # reuses the freed slot
        assert store.pages_of_type("Big") == 1

    def test_access_unknown_oid(self, db):
        store = ClusteredObjectStore()
        oid = db.new("Big")
        stats = AccessStats()
        with pytest.raises(StorageError):
            store.access(oid, "Big", BufferScope(stats))


class TestAccounting:
    def test_access_charges_distinct_pages(self, db):
        store = ClusteredObjectStore({"Small": 100})
        oids = [db.new("Small") for _ in range(80)]  # 2 pages worth
        for oid in oids:
            store.register(oid, "Small")
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            store.access_all(oids, "Small", buffer)
        assert stats.page_reads == 2

    def test_scan_type(self, db):
        store = ClusteredObjectStore({"Small": 100})
        for _ in range(100):
            store.register(db.new("Small"), "Small")
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            store.scan_type("Small", buffer)
        assert stats.page_reads == store.pages_of_type("Small")

    def test_write_charges(self, db):
        store = ClusteredObjectStore()
        oid = db.new("Big")
        store.register(oid, "Big")
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            store.write(oid, "Big", buffer)
        assert stats.page_writes == 1

    def test_none_buffer_is_free(self, db):
        store = ClusteredObjectStore()
        oid = db.new("Big")
        store.register(oid, "Big")
        store.access(oid, "Big", None)  # must not raise


class TestEventWiring:
    def test_attach_registers_existing_and_future(self, db):
        existing = db.new("Big")
        store = ClusteredObjectStore({"Big": 2000})
        store.attach(db)
        later = db.new("Big")
        assert store.page_of(existing, "Big") is not None
        assert store.page_of(later, "Big") is not None
        db.delete(later)
        assert store.pages_of_type("Big") == 1
