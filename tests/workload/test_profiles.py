"""The transcribed paper profiles and mixes."""

import pytest

from repro.costmodel import OperationMix
from repro.workload import profiles as paper


class TestProfileTables:
    def test_fig4_matches_paper_table(self):
        profile = paper.FIG4_PROFILE
        assert profile.c == (1000, 5000, 10000, 50000, 100000)
        assert profile.d == (900, 4000, 8000, 20000)
        assert profile.fan == (2, 2, 3, 4)
        assert profile.n == 4

    def test_fig5_sweep(self):
        profile = paper.fig5_profile(2500)
        assert profile.d == (2500,) * 4
        assert profile.c == (10_000,) * 5

    def test_fig6_d2_correction(self):
        # The paper prints d_2 = 8000 with c_2 = 1000: corrected to 800.
        profile = paper.FIG6_PROFILE
        assert profile.d[2] == 800
        assert profile.d[2] <= profile.c[2]
        assert profile.size == (500, 400, 300, 300, 100)

    def test_fig7_size_sweep(self):
        assert paper.fig7_profile(250).size == (250,) * 5

    def test_fig8_base(self):
        assert paper.fig8_profile(10).d == (10,) * 4
        assert paper.FIG8_BASE.size == (120,) * 5

    def test_fig9_fan_sweep(self):
        profile = paper.fig9_profile(50)
        assert profile.fan == (50,) * 4
        assert profile.c == (400_000,) * 5
        assert profile.d == (10, 100, 1000, 100_000)

    def test_fig11_and_12_differ_only_in_fan(self):
        assert paper.FIG11_PROFILE.c == paper.FIG12_PROFILE.c
        assert paper.FIG11_PROFILE.d == paper.FIG12_PROFILE.d
        assert paper.FIG12_PROFILE.fan == (2, 1, 1, 4)

    def test_fig13_size_sweep(self):
        assert paper.fig13_profile(600).size == (600,) * 5

    def test_fig16_n5(self):
        assert paper.FIG16_PROFILE.n == 5
        assert paper.FIG16_PROFILE.fan == (2, 2, 3, 4, 10)

    def test_fig17_n5_with_dropped_d5(self):
        profile = paper.FIG17_PROFILE
        assert profile.n == 5
        assert len(profile.d) == 5
        assert profile.d == (100_000, 10_000, 30_000, 10_000, 100)

    def test_all_profiles_valid(self):
        # Construction already validates; touch every derived quantity.
        for profile in (
            paper.FIG4_PROFILE,
            paper.FIG6_PROFILE,
            paper.FIG11_PROFILE,
            paper.FIG12_PROFILE,
            paper.FIG16_PROFILE,
            paper.FIG17_PROFILE,
        ):
            for i in range(1, profile.n + 1):
                assert profile.e_(i) >= 0


class TestMixes:
    @pytest.mark.parametrize(
        "mix", [paper.FIG14_MIX, paper.FIG16_MIX, paper.FIG17_MIX]
    )
    def test_mixes_are_valid(self, mix):
        assert isinstance(mix, OperationMix)
        assert sum(w for w, _ in mix.queries) == pytest.approx(1.0)
        assert sum(w for w, _ in mix.updates) == pytest.approx(1.0)

    def test_fig14_mix_shape(self):
        specs = [str(spec) for _w, spec in paper.FIG14_MIX.queries]
        assert specs == ["Q0,4(bw)", "Q0,3(bw)", "Q1,2(fw)"]
        updates = [str(spec) for _w, spec in paper.FIG14_MIX.updates]
        assert updates == ["ins_2", "ins_3"]

    def test_fig17_mix_all_backward(self):
        assert all(spec.kind == "bw" for _w, spec in paper.FIG17_MIX.queries)
        assert all(spec.j == 5 for _w, spec in paper.FIG17_MIX.queries)
