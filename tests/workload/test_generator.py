"""The synthetic chain generator and profile measurement."""

import pytest

from repro.costmodel import ApplicationProfile
from repro.errors import CostModelError
from repro.gom import NULL
from repro.workload import ChainGenerator, measure_profile

PROFILE = ApplicationProfile(
    c=(20, 40, 80),
    d=(18, 32),
    fan=(2, 3),
    size=(400, 300, 200),
)


@pytest.fixture()
def generated():
    return ChainGenerator(seed=5).generate(PROFILE)


class TestGeneration:
    def test_counts_match(self, generated):
        for i, count in enumerate(PROFILE.c):
            assert len(generated.db.extent(f"T{i}", False)) == count
        assert [len(layer) for layer in generated.layers] == [20, 40, 80]

    def test_defined_counts_match(self, generated):
        db = generated.db
        for i, expected in enumerate(PROFILE.d):
            defined = [
                oid
                for oid in db.extent(f"T{i}", False)
                if db.attr(oid, "A") is not NULL
            ]
            assert len(defined) == expected

    def test_set_valued_when_fan_gt_one(self, generated):
        assert generated.path.k == 2  # both steps are set occurrences
        assert generated.path.m == 4

    def test_single_valued_when_fan_one(self):
        profile = ApplicationProfile(c=(10, 10), d=(8,), fan=(1,))
        generated = ChainGenerator(seed=1).generate(profile)
        assert generated.path.is_linear

    def test_deterministic_by_seed(self):
        a = ChainGenerator(seed=9).generate(PROFILE)
        b = ChainGenerator(seed=9).generate(PROFILE)
        rows_a = {
            (oid.value, str(a.db.attr(oid, "A")))
            for oid in a.db.extent("T0", False)
        }
        rows_b = {
            (oid.value, str(b.db.attr(oid, "A")))
            for oid in b.db.extent("T0", False)
        }
        assert rows_a == rows_b

    def test_different_seeds_differ(self):
        def signature(generated):
            db = generated.db
            rows = []
            for oid in generated.layers[0]:
                value = db.attr(oid, "A")
                members = (
                    frozenset(m.value for m in db.members(value))
                    if value is not NULL
                    else frozenset()
                )
                rows.append((oid.value, members))
            return rows

        a = ChainGenerator(seed=1).generate(PROFILE)
        b = ChainGenerator(seed=2).generate(PROFILE)
        assert signature(a) != signature(b)

    def test_store_attached_with_sizes(self, generated):
        assert generated.store.object_size("T0") == 400
        assert generated.store.pages_of_type("T0") > 0

    def test_non_integer_counts_rejected(self):
        profile = ApplicationProfile(c=(10.5, 10), d=(5,), fan=(1,))
        with pytest.raises(CostModelError):
            ChainGenerator().generate(profile)


class TestMeasurement:
    def test_measured_counts_exact(self, generated):
        measured = measure_profile(generated)
        assert measured.c == (20, 40, 80)
        assert measured.d == (18, 32)

    def test_measured_fan_close_to_requested(self, generated):
        measured = measure_profile(generated)
        # Sets deduplicate targets, so measured fan can fall slightly short.
        assert measured.fan[0] == pytest.approx(2, abs=0.3)
        assert measured.fan[1] == pytest.approx(3, abs=0.4)

    def test_measured_shar_at_least_one(self, generated):
        measured = measure_profile(generated)
        for value in measured.shar:
            assert value >= 1.0

    def test_sizes_carried_over(self, generated):
        assert measure_profile(generated).size == (400, 300, 200)

    def test_size_override(self, generated):
        assert measure_profile(generated, size=(1, 2, 3)).size == (1, 2, 3)
