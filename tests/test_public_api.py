"""Top-level package surface: exports, errors, version."""

import inspect

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_classes_exported(self):
        assert repro.Extension("can") is repro.Extension.CANONICAL
        assert repro.Decomposition.binary(3).borders == (0, 1, 2, 3)
        assert repro.NULL is not None

    def test_docstrings_everywhere(self):
        """Every public module, class, and function carries a docstring."""
        import pkgutil

        missing = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = __import__(module_info.name, fromlist=["_"])
            if not module.__doc__:
                missing.append(module_info.name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module_info.name:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module_info.name}.{name}")
        assert not missing, f"missing docstrings: {missing}"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_catchable_with_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchemaError("x")
        with pytest.raises(errors.QueryError):
            raise errors.ParseError("x")

    def test_distinct_subsystem_errors(self):
        assert not issubclass(errors.SchemaError, errors.StorageError)
        assert not issubclass(errors.CostModelError, errors.QueryError)
