"""The multi-client serve benchmark and its operation stream."""

import json

from repro.bench.serve import ServeConfig, run_serve, write_report
from repro.costmodel.parameters import ApplicationProfile
from repro.workload.generator import ChainGenerator
from repro.workload.opstream import Operation, operation_stream
from repro.workload.profiles import FIG14_MIX

TINY = ServeConfig(clients=2, ops=24, seed=7, capacity=64, io_micros=20.0)


class TestOperationStream:
    def make_generated(self, seed=0):
        profile = ApplicationProfile(
            c=(20, 40, 60, 120, 240), d=(18, 32, 48, 100), fan=(2, 2, 2, 2)
        )
        return ChainGenerator(seed=seed).generate(profile)

    def test_same_seed_same_stream(self):
        generated = self.make_generated()
        first = operation_stream(generated, FIG14_MIX, count=60, seed=4)
        second = operation_stream(generated, FIG14_MIX, count=60, seed=4)
        assert [(op.name, op.kind, op.owner, op.target) for op in first] == [
            (op.name, op.kind, op.owner, op.target) for op in second
        ]

    def test_stream_respects_count_and_fraction(self):
        generated = self.make_generated()
        stream = operation_stream(generated, FIG14_MIX, count=50, seed=1)
        assert len(stream) == 50
        assert all(isinstance(op, Operation) for op in stream)
        kinds = {op.kind for op in stream}
        assert kinds == {"query", "update"}
        only_queries = operation_stream(
            generated, FIG14_MIX, count=30, seed=1, query_fraction=1.0
        )
        assert {op.kind for op in only_queries} == {"query"}


class TestServeBench:
    def test_report_shape_and_accounting(self, tmp_path):
        report = run_serve(TINY)
        assert report["benchmark"] == "serve"
        assert report["accounting"]["ok"] is True
        assert report["serve"]["clients"] == 2
        assert report["serve"]["throughput_ops_per_s"] > 0
        assert "speedup_vs_single_client" in report["serve"]
        assert report["operations"], "per-operation latency table missing"
        for entry in report["operations"].values():
            assert {"count", "p50_ms", "p95_ms", "p99_ms", "mean_ms"} <= set(entry)
            assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
        out = tmp_path / "BENCH_serve.json"
        write_report(report, out)
        assert json.loads(out.read_text())["benchmark"] == "serve"

    def test_pool_counters_reported(self):
        report = run_serve(TINY)
        pool = report["pool"]
        assert pool["capacity"] == 64
        assert pool["hits"] + pool["misses"] > 0
