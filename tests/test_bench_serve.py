"""The multi-client serve benchmark and its operation stream."""

import json
import math

import pytest

from repro.bench.serve import SERVE_PROFILES, ServeConfig, run_serve, write_report
from repro.costmodel.parameters import ApplicationProfile
from repro.workload.generator import ChainGenerator
from repro.workload.opstream import Operation, operation_stream
from repro.workload.profiles import FIG14_MIX

TINY = ServeConfig(clients=2, ops=24, seed=7, capacity=64, io_micros=20.0)


class TestOperationStream:
    def make_generated(self, seed=0):
        profile = ApplicationProfile(
            c=(20, 40, 60, 120, 240), d=(18, 32, 48, 100), fan=(2, 2, 2, 2)
        )
        return ChainGenerator(seed=seed).generate(profile)

    def test_same_seed_same_stream(self):
        generated = self.make_generated()
        first = operation_stream(generated, FIG14_MIX, count=60, seed=4)
        second = operation_stream(generated, FIG14_MIX, count=60, seed=4)
        assert [(op.name, op.kind, op.owner, op.target) for op in first] == [
            (op.name, op.kind, op.owner, op.target) for op in second
        ]

    def test_stream_respects_count_and_fraction(self):
        generated = self.make_generated()
        stream = operation_stream(generated, FIG14_MIX, count=50, seed=1)
        assert len(stream) == 50
        assert all(isinstance(op, Operation) for op in stream)
        kinds = {op.kind for op in stream}
        assert kinds == {"query", "update"}
        only_queries = operation_stream(
            generated, FIG14_MIX, count=30, seed=1, query_fraction=1.0
        )
        assert {op.kind for op in only_queries} == {"query"}


class TestServeBench:
    def test_report_shape_and_accounting(self, tmp_path):
        report = run_serve(TINY)
        assert report["benchmark"] == "serve"
        assert report["accounting"]["ok"] is True
        assert report["serve"]["clients"] == 2
        assert report["serve"]["throughput_ops_per_s"] > 0
        assert "speedup_vs_single_client" in report["serve"]
        assert report["operations"], "per-operation latency table missing"
        for entry in report["operations"].values():
            assert {"count", "p50_ms", "p95_ms", "p99_ms", "mean_ms"} <= set(entry)
            assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
        out = tmp_path / "BENCH_serve.json"
        write_report(report, out)
        assert json.loads(out.read_text())["benchmark"] == "serve"

    def test_pool_counters_reported(self):
        report = run_serve(TINY)
        pool = report["pool"]
        assert pool["capacity"] == 64
        assert pool["hits"] + pool["misses"] > 0

    def test_metrics_snapshot_embedded_and_consistent(self):
        report = run_serve(TINY)
        metrics = report["metrics"]
        assert set(metrics) == {"counters", "gauges", "histograms"}
        gauges = {
            name: entries[0]["value"]
            for name, entries in metrics["gauges"].items()
            if entries and not entries[0]["labels"]
        }
        assert 0.0 <= gauges["pool.hit_rate"] <= 1.0
        assert gauges["accounting.ok"] == 1.0
        assert math.isfinite(gauges["drift.overall_geo_mean_ratio"])
        # Latency histograms cover every executed operation.
        latency_count = sum(
            entry["count"] for entry in metrics["histograms"]["op.latency_ms"]
        )
        assert latency_count == TINY.ops

    def test_drift_report_embedded(self):
        report = run_serve(TINY)
        drift = report["drift"]
        assert drift["overall"]["count"] == TINY.ops
        assert drift["overall"]["finite"] is True
        for entry in drift["by_key"]:
            assert {"extension", "decomposition", "op", "geo_mean_ratio"} <= set(entry)
            assert math.isfinite(entry["geo_mean_ratio"])
        # The acceptance criterion: a per-(extension, decomposition)
        # predicted-vs-observed ratio is reported.
        assert any(
            entry["ratio"] is not None or entry["skipped"] == entry["count"]
            for entry in drift["by_key"]
        )

    def test_stats_registry_round_trips_from_report(self):
        from repro.telemetry import MetricsRegistry

        report = run_serve(TINY)
        restored = MetricsRegistry.from_snapshot(report["metrics"])
        text = restored.render_prometheus()
        assert "repro_pool_hit_rate" in text
        assert "repro_op_latency_ms_count" in text


class TestAsyncServeBench:
    #: Small pool + slow device: operations fault real pages, so the
    #: async core has device waits to overlap past ``clients``.
    TINY_ASYNC = ServeConfig(
        clients=2,
        ops=24,
        seed=7,
        capacity=16,
        io_micros=2000.0,
        use_async=True,
        max_inflight=16,
    )

    def test_async_report_shape_and_accounting(self, tmp_path):
        report = run_serve(self.TINY_ASYNC)
        serve = report["serve"]
        assert serve["mode"] == "async"
        assert serve["max_inflight"] == 16
        assert "speedup_vs_threaded" in serve
        assert report["threaded"]["clients"] == 2
        assert report["config"]["async"] is True
        assert report["device"] == {"dist": "fixed", "io_micros": 2000.0}
        assert report["accounting"]["ok"] is True
        assert report["drift"]["overall"]["finite"] is True
        out = tmp_path / "BENCH_serve.json"
        write_report(report, out)
        assert json.loads(out.read_text())["serve"]["mode"] == "async"

    def test_async_overlaps_more_inflight_than_clients(self):
        report = run_serve(self.TINY_ASYNC)
        # The event loop holds more operations in flight than the
        # threaded core's hard cap of one per client thread — that
        # surplus is the whole point of the async core.
        assert report["serve"]["peak_inflight"] > self.TINY_ASYNC.clients
        assert report["serve"]["speedup_vs_threaded"] > 1.0

    def test_io_dist_flows_into_device_section(self):
        config = ServeConfig(
            clients=2,
            ops=12,
            seed=7,
            capacity=64,
            io_micros=100.0,
            io_dist="lognormal:0.3",
            use_async=True,
            max_inflight=8,
        )
        report = run_serve(config)
        assert report["config"]["io_dist"] == "lognormal:0.3"
        assert report["device"]["dist"] == "lognormal"
        assert report["device"]["sigma"] == 0.3
        assert report["accounting"]["ok"] is True


class TestServeProfiles:
    def test_known_profiles_resolve(self):
        profile, mix = ServeConfig(profile="fig14").resolved_profile()
        assert profile is SERVE_PROFILES["fig14"][0]
        profile16, _ = ServeConfig(profile="fig16").resolved_profile()
        assert len(profile16.c) == 6  # the n = 5 Figure 16 chain

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown serve profile"):
            ServeConfig(profile="fig99").resolved_profile()

    def test_fig16_serves_end_to_end(self):
        config = ServeConfig(
            clients=2, ops=16, seed=3, capacity=64, io_micros=20.0, profile="fig16"
        )
        report = run_serve(config)
        assert report["config"]["profile"] == "fig16"
        assert len(report["profile"]["c"]) == 6
        assert report["accounting"]["ok"] is True
        assert report["drift"]["overall"]["finite"] is True
