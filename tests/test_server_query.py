"""``POST /query``: the JSON front door, its cache, and its error paths.

These tests quiesce the replay loop first (``request_stop`` stops
admission while the HTTP endpoint keeps serving), so cache and plan
counters move only when the test POSTs — the cache-hit and
epoch-invalidation assertions are exact, on both serving cores.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.bench.serve import ServeConfig
from repro.server import ServeDaemon, ServerConfig

#: Never emitted by the replay stream (its literals are real Payload
#: values, all non-negative), so the replay cannot pre-warm this entry.
QUERY = "select x from x in extent(T0) where x.A.A.A.A.Payload >= -5"


def queries_config(tmp_path, use_async: bool) -> ServerConfig:
    serve = ServeConfig(
        clients=2,
        ops=16,
        seed=7,
        capacity=64,
        io_micros=20.0,
        max_spans=64,
        profile="queries",
        # No updates: the object graph — and hence the ASR epoch — stays
        # quiescent between the test's own POSTs.
        query_fraction=1.0,
        use_async=use_async,
        max_inflight=8,
    )
    return ServerConfig(
        serve=serve,
        port=0,
        drift_interval=0.5,
        out=str(tmp_path / "BENCH_serve.json"),
    )


def post(daemon: ServeDaemon, path: str, body: bytes, content_type="application/json"):
    host, port = daemon.address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        headers={"Content-Type": content_type},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def post_query(daemon: ServeDaemon, text: str):
    return post(daemon, "/query", json.dumps({"query": text}).encode())


def wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def quiesce(daemon: ServeDaemon) -> None:
    """Stop the replay loop; the HTTP endpoint stays up."""
    daemon.request_stop()
    assert wait_until(
        lambda: all(not thread.is_alive() for thread in daemon._clients)
        and (daemon._loop_thread is None or not daemon._loop_thread.is_alive())
    ), "replay loop did not quiesce"


@pytest.fixture(params=["threaded", "async"])
def quiet_daemon(request, tmp_path):
    daemon = ServeDaemon(queries_config(tmp_path, request.param == "async"))
    daemon.start()
    assert wait_until(lambda: daemon.ops_served > 0), "no operation completed"
    quiesce(daemon)
    yield daemon
    daemon.shutdown()


def planned(registry) -> float:
    return registry.counter_value("ops", op="plan.supported") + registry.counter_value(
        "ops", op="plan.unsupported"
    )


class TestQueryEndpoint:
    def test_rows_strategy_and_cost_returned(self, quiet_daemon):
        status, payload = post_query(quiet_daemon, QUERY)
        assert status == 200
        assert payload["row_count"] == len(payload["rows"]) > 0
        assert payload["strategy"]
        assert payload["total_pages"] == (
            payload["page_reads"] + payload["page_writes"]
        )
        assert payload["cached"] is False
        # OIDs render as their repr, so rows are JSON-clean.
        assert all(isinstance(cell, str) for row in payload["rows"] for cell in row)

    def test_second_identical_post_hits_cache_and_skips_planning(
        self, quiet_daemon
    ):
        registry = quiet_daemon.world.registry
        first_status, first = post_query(quiet_daemon, QUERY)
        assert first_status == 200 and first["cached"] is False
        hits = registry.counter_value("query.cache.hits")
        plans = planned(registry)
        served_cached = registry.counter_value("serve.queries", cached="true")
        second_status, second = post_query(quiet_daemon, QUERY)
        assert second_status == 200 and second["cached"] is True
        assert second["rows"] == first["rows"]
        assert second["epoch"] == first["epoch"]
        assert registry.counter_value("query.cache.hits") == hits + 1
        # The acceptance bar: a hit does no planning work at all.
        assert planned(registry) == plans
        assert (
            registry.counter_value("serve.queries", cached="true")
            == served_cached + 1
        )

    def test_whitespace_variant_shares_the_cached_plan(self, quiet_daemon):
        post_query(quiet_daemon, QUERY)
        status, payload = post_query(
            quiet_daemon, QUERY.replace(" where ", "\n   WHERE".lower() + " ")
        )
        # (only whitespace differs; keywords stay as written)
        assert status == 200
        assert payload["cached"] is True

    def test_epoch_bump_invalidates_cached_plan(self, quiet_daemon):
        registry = quiet_daemon.world.registry
        manager = quiet_daemon.world.manager
        _status, first = post_query(quiet_daemon, QUERY)
        _status, again = post_query(quiet_daemon, QUERY)
        assert again["cached"] is True
        # A maintenance rebuild bumps the manager epoch …
        epoch_before = manager.epoch
        with manager.suspended():
            pass
        assert manager.epoch > epoch_before
        misses = registry.counter_value("query.cache.misses")
        plans = planned(registry)
        status, payload = post_query(quiet_daemon, QUERY)
        # … so the next request is a counted miss that re-plans.
        assert status == 200
        assert payload["cached"] is False
        assert payload["epoch"] == manager.epoch > first["epoch"]
        assert payload["rows"] == first["rows"]
        assert registry.counter_value("query.cache.misses") == misses + 1
        assert planned(registry) > plans


class TestQueryErrors:
    def test_malformed_json_is_bad_request(self, quiet_daemon):
        status, payload = post(quiet_daemon, "/query", b"{not json")
        assert status == 400
        assert payload["error"]["kind"] == "bad-request"
        assert "not valid JSON" in payload["error"]["message"]

    def test_non_object_body_is_bad_request(self, quiet_daemon):
        status, payload = post(quiet_daemon, "/query", b'["q"]')
        assert status == 400
        assert payload["error"]["kind"] == "bad-request"

    def test_missing_query_field_is_bad_request(self, quiet_daemon):
        status, payload = post(quiet_daemon, "/query", b'{"sql": "select"}')
        assert status == 400
        assert payload["error"]["kind"] == "bad-request"
        assert "non-empty string" in payload["error"]["message"]

    def test_parse_error_is_structured_400(self, quiet_daemon):
        registry = quiet_daemon.world.registry
        status, payload = post_query(
            quiet_daemon, 'select x from x in extent(T0) where x.Payload = "oops'
        )
        assert status == 400
        assert payload["error"]["kind"] == "parse"
        assert "unterminated string literal" in payload["error"]["message"]
        assert registry.counter_value("query.errors", kind="parse") >= 1

    def test_unknown_range_source_is_validate_400(self, quiet_daemon):
        registry = quiet_daemon.world.registry
        status, payload = post_query(quiet_daemon, "select z from z in Nowhere")
        assert status == 400
        assert payload["error"]["kind"] == "validate"
        assert "unknown range source" in payload["error"]["message"]
        assert registry.counter_value("query.errors", kind="validate") >= 1

    def test_unknown_attribute_is_validate_400(self, quiet_daemon):
        status, payload = post_query(
            quiet_daemon, "select x.Ghost from x in extent(T0)"
        )
        assert status == 400
        assert payload["error"]["kind"] == "validate"
        assert "has no attribute 'Ghost'" in payload["error"]["message"]

    def test_post_to_unknown_path_is_404_with_directory(self, quiet_daemon):
        status, payload = post(quiet_daemon, "/nope", b"{}")
        assert status == 404
        assert "POST /query" in payload["endpoints"]


class TestDegradedFallback:
    @pytest.fixture(params=["threaded", "async"])
    def unhealed_daemon(self, request, tmp_path):
        config = queries_config(tmp_path, request.param == "async")
        config.healer = False  # keep the quarantine in force for the test
        daemon = ServeDaemon(config)
        daemon.start()
        assert wait_until(lambda: daemon.ops_served > 0)
        quiesce(daemon)
        yield daemon
        daemon.shutdown()

    def test_quarantined_asr_degrades_to_traversal_not_an_error(
        self, unhealed_daemon
    ):
        manager = unhealed_daemon.world.manager
        _status, healthy = post_query(unhealed_daemon, QUERY)
        payload_asr = next(
            asr for asr in manager.asrs if str(asr.path).endswith("Payload")
        )
        with manager.lock.write():
            manager._mark_quarantined(payload_asr)
        try:
            status, degraded = post_query(unhealed_daemon, QUERY)
            assert status == 200
            assert degraded["cached"] is False  # quarantine bumped the epoch
            assert "degraded" in degraded["strategy"]
            assert degraded["rows"] == healthy["rows"]
        finally:
            # The trees were never torn; restore state for a clean drain.
            with manager.lock.write():
                manager._mark_consistent(payload_asr)
