"""Concurrency: RWLock, ContextPool, and mixed traffic under contention.

The invariants these tests pin down:

* the shared LRU pool is never torn (bounded residency, sane flags);
* shared stats totals equal the sum of the per-worker private totals;
* readers share the ASR manager's lock, writers are exclusive, and the
  answers under contention equal the single-threaded oracle;
* a quarantined ASR degrades queries (correctly) even while other
  threads hammer the manager, and recovery heals it.
"""

import random
import threading
import time

import pytest

from repro.asr.extensions import Extension
from repro.asr.journal import ASRState
from repro.asr.manager import ASRManager
from repro.concurrency import ContextPool, RWLock, ThreadLocalContexts
from repro.costmodel.parameters import ApplicationProfile
from repro.errors import SimulatedCrash
from repro.faults import FaultInjector
from repro.query.evaluator import QueryEvaluator
from repro.query.planner import Planner
from repro.telemetry import MetricsRegistry
from repro.workload.generator import ChainGenerator
from repro.workload.opstream import apply_update, operation_stream
from repro.workload.profiles import FIG14_MIX

SMALL = ApplicationProfile(
    c=(20, 40, 60, 120, 240),
    d=(18, 32, 48, 100),
    fan=(2, 2, 2, 2),
)


def run_threads(n, target):
    errors = []

    def wrap(k):
        try:
            target(k)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=wrap, args=(k,)) for k in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = []
        barrier = threading.Barrier(4)

        def reader(_k):
            with lock.read():
                barrier.wait(timeout=5)  # all four must be inside at once
                inside.append(1)

        run_threads(4, reader)
        assert len(inside) == 4

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        active = []
        peaks = []

        def worker(k):
            for _ in range(50):
                with lock.write() if k % 2 else lock.read():
                    active.append(k)
                    if k % 2:  # a writer must be alone
                        peaks.append(len(active))
                    time.sleep(0)
                    active.remove(k)

        run_threads(4, worker)
        # While a writer held the lock nobody else was active.
        assert peaks and all(peak == 1 for peak in peaks)

    def test_write_is_reentrant(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                assert lock.write_held
            assert lock.write_held
        assert not lock.write_held

    def test_read_allowed_under_own_write(self):
        lock = RWLock()
        with lock.write():
            with lock.read():
                pass
            assert lock.write_held

    def test_upgrade_refused(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_release_write_by_stranger_refused(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestWriterPreference:
    """A queued writer must not starve behind a saturating read stream."""

    def wait_for(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.001)
        return predicate()

    def test_queued_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()  # main thread holds a read lock
        writer_in = threading.Event()
        writer_release = threading.Event()
        late_reader_in = threading.Event()

        def writer_target():
            lock.acquire_write()
            writer_in.set()
            writer_release.wait(timeout=5)
            lock.release_write()

        def late_reader_target():
            lock.acquire_read()
            late_reader_in.set()
            lock.release_read()

        writer = threading.Thread(target=writer_target)
        writer.start()
        assert self.wait_for(lambda: lock.writers_waiting == 1)

        late_reader = threading.Thread(target=late_reader_target)
        late_reader.start()
        # The late reader queues behind the waiting writer instead of
        # joining the current read phase.
        time.sleep(0.05)
        assert not late_reader_in.is_set()
        assert not writer_in.is_set()

        lock.release_read()
        # The writer wins the race for the released lock.
        assert writer_in.wait(timeout=5)
        assert not late_reader_in.is_set()
        writer_release.set()
        assert late_reader_in.wait(timeout=5)
        writer.join()
        late_reader.join()

    def test_writer_acquires_under_saturating_readers(self):
        lock = RWLock()
        stop = threading.Event()
        acquired = threading.Event()

        def reader(_k):
            while not stop.is_set():
                with lock.read():
                    time.sleep(0.001)

        readers = [threading.Thread(target=reader, args=(k,)) for k in range(6)]
        for thread in readers:
            thread.start()

        def writer():
            with lock.write():
                acquired.set()

        thread = threading.Thread(target=writer)
        try:
            thread.start()
            # Under reader-preference this times out: with six readers
            # overlapping, the reader count never reaches zero.
            assert acquired.wait(timeout=5.0), "writer starved by readers"
        finally:
            stop.set()
            thread.join()
            for reader_thread in readers:
                reader_thread.join()

    def test_reentrant_read_admitted_while_writer_waits(self):
        # A thread that already reads must be allowed to read again even
        # with a writer queued, else it deadlocks against itself.
        lock = RWLock()
        lock.acquire_read()
        writer = threading.Thread(target=lambda: (lock.acquire_write(),
                                                  lock.release_write()))
        writer.start()
        assert self.wait_for(lambda: lock.writers_waiting == 1)
        with lock.read():  # must not block
            pass
        lock.release_read()
        writer.join()

    def test_writer_wait_histogram_published(self):
        registry = MetricsRegistry()
        lock = RWLock(metrics=registry)
        release = threading.Event()
        reader_in = threading.Event()

        def reader():
            with lock.read():
                reader_in.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=reader)
        thread.start()
        assert reader_in.wait(timeout=5)

        def writer():
            with lock.write():
                pass

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert self.wait_for(lambda: lock.writers_waiting == 1)
        time.sleep(0.01)  # make the contended wait measurable
        release.set()
        writer_thread.join()
        thread.join()

        histogram = registry.histogram("lock.writer_wait_ms")
        assert histogram is not None and histogram.count >= 1
        assert histogram.total > 0.0

    def test_uncontended_write_records_zero_wait(self):
        registry = MetricsRegistry()
        lock = RWLock(metrics=registry)
        with lock.write():
            pass
        histogram = registry.histogram("lock.writer_wait_ms")
        assert histogram is not None and histogram.count == 1
        assert histogram.total == 0.0


class TestContextPool:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ContextPool(0)

    def test_shared_buffer_requires_bounded_policy(self):
        from repro.context import ExecutionContext

        pool = ContextPool(8)
        with pytest.raises(ValueError, match="bounded"):
            ExecutionContext(policy="unbounded", shared_buffer=pool.pool)

    def test_contexts_share_residency(self):
        pool = ContextPool(64)
        first = pool.acquire()
        second = pool.acquire()
        first.current_buffer.touch("page-A")
        # Already resident in the *shared* pool: the second context's
        # touch is a hit and charges nobody.
        assert second.current_buffer.touch("page-A") is False
        assert pool.stats.page_reads == 1
        assert first.stats.page_reads == 1
        assert second.stats.page_reads == 0

    def test_stress_invariants_hold(self):
        pool = ContextPool(32)
        clients = 8
        touches = 400

        def worker(k):
            rng = random.Random(k)
            with pool.context() as context:
                scope = context.current_buffer
                for i in range(touches):
                    page = f"page-{rng.randrange(200)}"
                    if rng.random() < 0.25:
                        scope.touch_write(page)
                    else:
                        scope.touch(page)
                    if i % 97 == 0:
                        pool.pool.check_invariants()

        run_threads(clients, worker)
        pool.pool.check_invariants()
        # Released contexts are retired; the invariant is asserted through
        # the accounting check (and published into the metrics registry).
        registry = MetricsRegistry()
        accounting = pool.check_accounting(registry)
        assert accounting["ok"] is True
        assert registry.gauge_value("accounting.ok") == 1.0
        shared = pool.stats.snapshot()
        assert registry.gauge_value("accounting.shared_reads") == shared.page_reads
        assert registry.gauge_value("accounting.worker_reads") == shared.page_reads
        assert pool.pool.hits + pool.pool.misses == clients * touches
        assert pool.pool.distinct_pages <= 32

    def test_recycling_reuses_worker_scopes(self):
        pool = ContextPool(16)
        with pool.context() as context:
            first_scope = context.current_buffer
            first_scope.touch("page-A")
        assert pool.recycled == 1
        assert not pool.contexts  # retired, not live
        with pool.context() as context:
            # The WorkerScope object is recycled but its stats are fresh.
            assert context.current_buffer is first_scope
            assert context.stats.page_reads == 0
            context.current_buffer.touch("page-B")
        assert pool.reused == 1
        assert pool.recycled == 2
        # Retired totals still cover both generations' charges.
        totals = pool.worker_totals()
        assert totals.page_reads == pool.stats.snapshot().page_reads == 2
        assert pool.check_accounting()["ok"] is True

    def test_occupancy_gauge_tracks_live_contexts(self):
        registry = MetricsRegistry()
        pool = ContextPool(8, metrics=registry)
        assert registry.gauge_value("pool.occupancy") == 0
        with pool.context():
            assert registry.gauge_value("pool.occupancy") == 1
        assert registry.gauge_value("pool.occupancy") == 0
        assert registry.gauge_value("pool.recycled") == 1

    def test_describe_is_json_able(self):
        import json

        pool = ContextPool(4)
        pool.acquire().current_buffer.touch("p")
        assert json.loads(json.dumps(pool.describe()))["capacity"] == 4

    def test_trace_export_under_concurrent_writers(self):
        # Every worker runs traced operations against the shared pool
        # while the others charge it concurrently, then exports its
        # trace.  Per-worker spans must reflect only that worker's
        # charges, and the global accounting invariant must hold when
        # asserted through the metrics registry.
        import json

        registry = MetricsRegistry()
        pool = ContextPool(48, metrics=registry)
        clients, rounds = 6, 40
        traces: dict[int, dict] = {}

        def worker(k):
            rng = random.Random(k)
            with pool.context() as context:
                for i in range(rounds):
                    with context.operation(f"op-{k}") as buffer:
                        buffer.touch(f"page-{rng.randrange(120)}")
                        if rng.random() < 0.3:
                            buffer.touch_write(f"page-{rng.randrange(120)}")
                traces[k] = json.loads(context.to_json())

        run_threads(clients, worker)
        for k, trace in traces.items():
            assert trace["op_counts"][f"op-{k}"] == rounds
            assert len(trace["spans"]) == rounds
            # The worker's headline totals equal the sum of its spans —
            # concurrent charges by other workers never leak in.
            assert trace["page_reads"] == sum(
                s["page_reads"] for s in trace["spans"]
            )
            assert trace["page_writes"] == sum(
                s["page_writes"] for s in trace["spans"]
            )
        accounting = pool.check_accounting(registry)
        assert accounting["ok"] is True
        assert registry.gauge_value("accounting.ok") == 1.0
        # The registry's span histograms saw every operation.
        total_spans = sum(
            registry.histogram("span.pages", op=f"op-{k}").count
            for k in range(clients)
        )
        assert total_spans == clients * rounds
        assert registry.counter_value("ops", op="op-0") == rounds


class TestThreadLocalContexts:
    def test_one_context_per_thread_stable_across_calls(self):
        pool = ContextPool(16)
        contexts = ThreadLocalContexts(pool)
        assert contexts.get() is contexts.get()
        seen = {}

        def worker(k):
            first = contexts.get()
            assert contexts.get() is first
            seen[k] = first

        run_threads(4, worker)
        # Four worker threads, four distinct contexts (plus this one).
        assert len({id(c) for c in seen.values()}) == 4
        assert contexts.live == 5
        contexts.release_all()
        assert contexts.live == 0
        assert pool.check_accounting()["ok"] is True

    def test_executor_threads_charge_under_accounting_invariant(self):
        from concurrent.futures import ThreadPoolExecutor

        pool = ContextPool(32)
        contexts = ThreadLocalContexts(pool)

        def touch(k):
            context = contexts.get()
            context.current_buffer.touch(f"page-{k % 40}")

        with ThreadPoolExecutor(max_workers=4) as executor:
            list(executor.map(touch, range(200)))
        contexts.release_all()
        accounting = pool.check_accounting()
        assert accounting["ok"] is True
        assert pool.stats.snapshot().page_reads == pool.pool.misses

    def test_get_after_release_all_acquires_fresh_context(self):
        pool = ContextPool(8)
        contexts = ThreadLocalContexts(pool)
        first = contexts.get()
        first.current_buffer.touch("page-A")
        contexts.release_all()
        # The retired context must not be resurrected: a later get() on
        # the same thread starts a fresh pool generation.
        second = contexts.get()
        assert second.stats.page_reads == 0
        assert contexts.live == 1
        contexts.release_all()
        assert pool.check_accounting()["ok"] is True


class TestParallelBuild:
    def test_parallel_build_matches_sequential(self):
        generated = ChainGenerator(seed=11).generate(SMALL)
        from repro.asr.asr import AccessSupportRelation

        sequential = AccessSupportRelation.build(
            generated.db, generated.path, Extension.FULL
        )
        parallel = AccessSupportRelation.build(
            generated.db, generated.path, Extension.FULL, workers=4
        )
        assert parallel.extension_relation.rows == sequential.extension_relation.rows
        assert parallel.tuple_count == sequential.tuple_count
        for left, right in zip(parallel.partitions, sequential.partitions):
            assert left.tuple_count == right.tuple_count
            assert list(left.forward_tree.items()) == list(right.forward_tree.items())

    def test_parallel_build_consistency_checked(self):
        generated = ChainGenerator(seed=3).generate(SMALL)
        manager = ASRManager(generated.db)
        manager.create(generated.path, Extension.FULL, workers=3)
        manager.check_consistency()


class TestConcurrentServing:
    def make_world(self, seed=0):
        generated = ChainGenerator(seed=seed).generate(SMALL)
        pool = ContextPool(128)
        manager = ASRManager(generated.db, context=pool.acquire())
        manager.create(generated.path, Extension.FULL)
        return generated, manager, pool

    def test_queries_and_updates_under_contention(self):
        generated, manager, pool = self.make_world()
        stream = operation_stream(generated, FIG14_MIX, count=120, seed=5)
        answers: dict[int, frozenset] = {}
        clients = 6

        def worker(k):
            with pool.context() as context:
                planner = Planner(manager)
                evaluator = QueryEvaluator(
                    generated.db, generated.store, context=context
                )
                for op in stream[k::clients]:
                    if op.kind == "query":
                        result = planner.execute(op.query, evaluator)
                        answers[op.index] = frozenset(result.cells)
                    else:
                        with manager.exclusive():
                            apply_update(generated, op)

        run_threads(clients, worker)
        manager.check_consistency()
        pool.pool.check_invariants()
        # Client contexts are retired on release; the manager's context is
        # still live.  Either way: shared totals == retired + Σ live.
        registry = MetricsRegistry()
        accounting = pool.check_accounting(registry)
        assert accounting["ok"] is True
        assert registry.gauge_value("accounting.ok") == 1.0
        totals = pool.worker_totals()
        shared = pool.stats.snapshot()
        assert shared.page_reads == totals.page_reads
        assert shared.page_writes == totals.page_writes
        # Every query answer matches the (post-run) single-threaded oracle
        # for queries the updates could not have affected: re-ask them all
        # now that the graph is quiescent and supported == unsupported.
        oracle = QueryEvaluator(generated.db, generated.store)
        for op in stream:
            if op.kind == "query":
                quiescent = oracle.evaluate_supported(op.query, manager.asrs[0])
                unsupported = oracle.evaluate_unsupported(op.query)
                assert quiescent.cells == unsupported.cells

    def test_quarantined_fallback_under_contention(self):
        generated, manager, pool = self.make_world(seed=9)
        injector = FaultInjector(seed=1)
        manager.fault_injector = injector
        asr = manager.asrs[0]
        stream = operation_stream(
            generated, FIG14_MIX, count=40, seed=2, query_fraction=1.0
        )

        # Crash one eager maintenance run mid-delta: the ASR quarantines.
        injector.crash_at("asr.apply.mid-delta")
        update = next(
            op for op in operation_stream(generated, FIG14_MIX, 40, 3, 0.0)
            if op.kind == "update"
        )
        with pytest.raises(SimulatedCrash):
            with manager.exclusive():
                apply_update(generated, update)
        assert asr.state is ASRState.QUARANTINED

        oracle = QueryEvaluator(generated.db, generated.store)
        expected = {
            op.index: frozenset(oracle.evaluate_unsupported(op.query).cells)
            for op in stream
        }
        degraded_answers: dict[int, frozenset] = {}

        def reader(k):
            with pool.context() as context:
                planner = Planner(manager)
                evaluator = QueryEvaluator(
                    generated.db, generated.store, context=context
                )
                for op in stream[k::4]:
                    result = planner.execute(op.query, evaluator)
                    degraded_answers[op.index] = frozenset(result.cells)

        run_threads(4, reader)
        assert degraded_answers == expected

        # Recovery is exclusive; a concurrent reader burst still answers.
        recover_error = []

        def recoverer(_k):
            try:
                manager.recover()
            except BaseException as error:  # noqa: BLE001
                recover_error.append(error)

        recovery = threading.Thread(target=recoverer, args=(0,))
        recovery.start()
        run_threads(4, reader)
        recovery.join()
        assert not recover_error
        assert asr.state is ASRState.CONSISTENT
        manager.check_consistency()
