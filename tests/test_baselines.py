"""The GemStone / Orion baseline indexes and the subsumption claims."""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.baselines import NestedAttributeIndex, gemstone_index_path
from repro.errors import PathError
from repro.gom import PathExpression
from repro.gom.traversal import origins_reaching


class TestGemStoneIndexPath:
    def test_builds_on_linear_path(self, robot_world):
        db, path, o = robot_world
        index = gemstone_index_path(db, path)
        assert index.extension is Extension.CANONICAL
        assert index.decomposition.is_binary
        assert index.tuple_count == 3  # the three complete robot paths

    def test_rejects_collection_valued_paths(self, company_world):
        db, path, _o = company_world
        with pytest.raises(PathError, match="single-valued"):
            gemstone_index_path(db, path)

    def test_answers_query1(self, robot_world):
        from repro.query import BackwardQuery, QueryEvaluator

        db, path, o = robot_world
        index = gemstone_index_path(db, path)
        evaluator = QueryEvaluator(db)
        query = BackwardQuery(path, 0, path.n, target="Utopia")
        assert evaluator.evaluate_supported(query, index).cells == {
            o["r2d2"], o["x4d5"], o["robi"],
        }

    def test_cannot_answer_partial_ranges(self, robot_world):
        db, path, _o = robot_world
        index = gemstone_index_path(db, path)
        assert not index.supports_query(1, path.n)
        assert not index.supports_query(0, 2)


class TestNestedAttributeIndex:
    def test_build_and_lookup(self, company_world):
        db, path, o = company_world
        index = NestedAttributeIndex.build(db, path)
        assert index.lookup("Door") == {o["auto"], o["truck"]}
        assert index.lookup("Pepper") == set()  # sausage is not a Division
        assert index.lookup("Ghost") == set()

    def test_requires_atomic_terminal(self, company_world):
        db, path, _o = company_world
        object_path = PathExpression.parse(db.schema, "Division.Manufactures")
        with pytest.raises(PathError, match="atomic"):
            NestedAttributeIndex(object_path)

    def test_only_whole_path_supported(self, company_world):
        db, path, _o = company_world
        index = NestedAttributeIndex.build(db, path)
        assert index.supports_query(0, path.n)
        assert not index.supports_query(1, path.n)
        assert not index.supports_query(0, 1)

    def test_maintained_by_manager(self, company_world):
        db, path, o = company_world
        manager = ASRManager(db)
        index = NestedAttributeIndex.build(db, path)
        manager.register(index)
        db.set_insert(o["parts_sec"], o["pepper"])
        index.consistency_check(db)
        assert index.lookup("Pepper") == {o["auto"], o["truck"]}
        db.set_remove(o["parts_sec"], o["door"])
        index.consistency_check(db)
        assert index.lookup("Door") == set()
        db.delete(o["sec"])
        index.consistency_check(db)

    def test_matches_traversal_after_random_stream(self, small_chain):
        import random

        db, path = small_chain.db, small_chain.path
        # Give terminals a value attribute path: the chain terminal T3 has
        # a Payload attribute; extend the path to reach it.
        value_path = PathExpression(db.schema, "T0", ("A", "A", "A", "Payload"))
        for index_t3, oid in enumerate(small_chain.layers[3]):
            db.set_attr(oid, "Payload", index_t3 % 7)
        manager = ASRManager(db)
        index = NestedAttributeIndex.build(db, value_path)
        manager.register(index)
        rng = random.Random(79)
        for _ in range(40):
            owner = rng.choice(small_chain.layers[2])
            collection = db.attr(owner, "A")
            member = rng.choice(small_chain.layers[3])
            if collection and member in db:
                if rng.random() < 0.5:
                    db.set_insert(collection, member)
                else:
                    db.set_remove(collection, member)
        index.consistency_check(db)
        for payload in range(7):
            assert index.lookup(payload) == origins_reaching(
                db, value_path, payload
            )

    def test_range_lookup(self, small_chain):
        db = small_chain.db
        value_path = PathExpression(db.schema, "T0", ("A", "A", "A", "Payload"))
        for index_t3, oid in enumerate(small_chain.layers[3]):
            db.set_attr(oid, "Payload", index_t3)
        index = NestedAttributeIndex.build(db, value_path)
        expected = set()
        for payload in range(10, 20):
            expected |= index.lookup(payload)
        assert index.lookup_range(10, 20) == expected

    def test_storage_statistics(self, company_world):
        db, path, _o = company_world
        index = NestedAttributeIndex.build(db, path)
        # Two divisions reach "Door": two (value, anchor) pairs.
        assert index.pair_count == 2
        assert index.pair_count == len(
            {(row[-1], row[0]) for row in index.extension_relation.rows}
        )
        assert index.total_bytes == index.pair_count * 16
        assert index.total_pages >= 1


class TestManagerIntegration:
    def test_report_includes_nested_index(self, company_world):
        db, path, _o = company_world
        manager = ASRManager(db)
        manager.create(path, Extension.FULL)
        manager.register(NestedAttributeIndex.build(db, path))
        report = manager.report()
        assert report.count(str(path)) == 2
        assert "dec=None" in report

    def test_find_matches_nested_index(self, company_world):
        db, path, _o = company_world
        manager = ASRManager(db)
        index = NestedAttributeIndex.build(db, path)
        manager.register(index)
        assert manager.find(path, Extension.CANONICAL) == [index]
