"""Simulated device model: distributions, spec parsing, charge mechanics."""

import asyncio
import time

import pytest

from repro.device import (
    DEVICE_CLASSES,
    DeviceModel,
    FixedLatency,
    LatencyModel,
    LognormalLatency,
    parse_io_dist,
)
from repro.telemetry import MetricsRegistry


class TestFixedLatency:
    def test_linear_in_pages(self):
        model = FixedLatency(io_micros=200.0)
        assert model.seconds(0) == 0.0
        assert model.seconds(1) == pytest.approx(200e-6)
        assert model.seconds(50) == pytest.approx(50 * 200e-6)

    def test_describe(self):
        assert FixedLatency(150.0).describe() == {
            "dist": "fixed",
            "io_micros": 150.0,
        }


class TestLognormalLatency:
    def test_seeded_replay_is_deterministic(self):
        a = LognormalLatency(100.0, sigma=0.5, seed=7)
        b = LognormalLatency(100.0, sigma=0.5, seed=7)
        assert [a.seconds(3) for _ in range(20)] == [
            b.seconds(3) for _ in range(20)
        ]

    def test_median_tracks_io_micros(self):
        # The jitter factor has median 1, so the per-page median stays
        # io_micros.  999 draws put the sample median well inside ±25%.
        model = LognormalLatency(100.0, sigma=0.5, seed=0)
        draws = sorted(model.seconds(1) for _ in range(999))
        assert draws[499] == pytest.approx(100e-6, rel=0.25)

    def test_one_draw_per_operation_not_per_page(self):
        # Doubling pages with the same RNG state doubles the result of
        # the *next single* draw — pages scale linearly inside one call.
        a = LognormalLatency(100.0, sigma=0.5, seed=3)
        b = LognormalLatency(100.0, sigma=0.5, seed=3)
        assert b.seconds(10) == pytest.approx(10 * a.seconds(1))

    def test_zero_pages_and_zero_micros_cost_nothing(self):
        model = LognormalLatency(100.0, sigma=0.5, seed=0)
        assert model.seconds(0) == 0.0
        assert LognormalLatency(0.0, seed=0).seconds(5) == 0.0

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            LognormalLatency(-1.0)
        with pytest.raises(ValueError):
            LognormalLatency(100.0, sigma=-0.5)


class TestParseIoDist:
    def test_fixed(self):
        model = parse_io_dist("fixed", 250.0)
        assert isinstance(model, FixedLatency)
        assert model.io_micros == 250.0

    def test_lognormal_default_sigma(self):
        model = parse_io_dist("lognormal", 100.0, seed=5)
        assert isinstance(model, LognormalLatency)
        assert (model.io_micros, model.sigma, model.seed) == (100.0, 0.5, 5)

    def test_lognormal_explicit_sigma(self):
        model = parse_io_dist("lognormal:0.25", 100.0)
        assert model.sigma == 0.25

    def test_device_class_presets_override_io_micros(self):
        for name, (median, sigma) in DEVICE_CLASSES.items():
            model = parse_io_dist(name, 999999.0, seed=1)
            assert isinstance(model, LognormalLatency)
            assert (model.io_micros, model.sigma) == (median, sigma)

    def test_spec_is_case_and_whitespace_insensitive(self):
        assert isinstance(parse_io_dist("  Fixed ", 100.0), FixedLatency)
        assert isinstance(parse_io_dist("NVMe", 100.0), LognormalLatency)

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError, match="unknown io-dist"):
            parse_io_dist("tape", 100.0)

    def test_bad_sigma_raises(self):
        with pytest.raises(ValueError, match="sigma"):
            parse_io_dist("lognormal:fast", 100.0)


class _Broken(LatencyModel):
    """A latency model that returns whatever it was told to."""

    def __init__(self, value):
        self.value = value

    def seconds(self, pages):
        return self.value

    def describe(self):
        return {"dist": "broken"}


class TestDeviceModel:
    def test_defaults_to_fixed_latency(self):
        device = DeviceModel()
        assert isinstance(device.latency, FixedLatency)
        assert device.describe()["dist"] == "fixed"

    def test_zero_pages_cost_nothing(self):
        device = DeviceModel(FixedLatency(1e9))
        assert device.seconds(0) == 0.0
        assert device.charge(0) == 0.0

    def test_charge_sleeps_the_model_seconds(self):
        device = DeviceModel(FixedLatency(io_micros=5000.0))
        start = time.perf_counter()
        seconds = device.charge(4)  # 20ms
        elapsed = time.perf_counter() - start
        assert seconds == pytest.approx(0.02)
        assert elapsed >= 0.015

    def test_acharge_prices_the_same_seconds(self):
        device = DeviceModel(FixedLatency(io_micros=1000.0))
        assert asyncio.run(device.acharge(3)) == device.charge(3)

    def test_charges_publish_into_registry(self):
        registry = MetricsRegistry()
        device = DeviceModel(FixedLatency(io_micros=1.0), registry)
        device.charge(7)
        asyncio.run(device.acharge(5))
        device.charge(0)  # zero pages publish nothing
        assert registry.counter_value("device.pages") == 12
        histograms = registry.snapshot()["histograms"]
        (series,) = histograms["device.charge_ms"]
        assert series["count"] == 2

    def test_non_finite_latency_is_rejected(self):
        for bad in (float("nan"), float("inf"), -1.0):
            device = DeviceModel(_Broken(bad))
            with pytest.raises(ValueError, match="latency model produced"):
                device.seconds(1)
