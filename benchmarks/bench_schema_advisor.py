"""Schema-wide budgeted design: the storage/performance frontier.

Two competing path workloads (a hot whole-path lookup mix and a cold
prefix mix) share one storage budget; the greedy schema advisor trades
index space between them.  The bench sweeps the budget and reports the
frontier — weighted pages/op versus bytes spent.
"""

from repro.bench.render import format_table
from repro.costmodel import (
    ApplicationProfile,
    OperationMix,
    PathWorkload,
    QuerySpec,
    SchemaDesignAdvisor,
    UpdateSpec,
)

WORKLOADS = [
    PathWorkload(
        "orders",
        ApplicationProfile(
            c=(1000, 5000, 10000, 50000, 100000),
            d=(900, 4000, 8000, 20000),
            fan=(2, 2, 3, 4),
            size=(500, 400, 300, 300, 100),
        ),
        OperationMix(
            queries=((1.0, QuerySpec(0, 4, "bw")),),
            updates=((1.0, UpdateSpec(3)),),
        ),
        p_up=0.1,
        weight=10.0,
    ),
    PathWorkload(
        "audit",
        ApplicationProfile(
            c=(100, 500, 1000),
            d=(90, 400),
            fan=(2, 2),
            size=(300, 200, 100),
        ),
        OperationMix(
            queries=((1.0, QuerySpec(0, 2, "bw")),),
            updates=((1.0, UpdateSpec(0)),),
        ),
        p_up=0.1,
        weight=1.0,
    ),
]

BUDGETS_KIB = (0, 16, 64, 256, 1024, None)


def test_schema_budget_frontier(benchmark, record):
    advisor = SchemaDesignAdvisor(WORKLOADS)

    def sweep():
        rows = []
        for budget_kib in BUDGETS_KIB:
            budget = None if budget_kib is None else budget_kib * 1024
            design = advisor.plan(budget)
            rows.append(
                [
                    "unbounded" if budget_kib is None else budget_kib,
                    round(design.total_bytes / 1024, 1),
                    round(design.weighted_cost, 2),
                    round(design.savings_factor, 1),
                ]
            )
        return rows

    rows = benchmark(sweep)
    record(
        "schema_budget_frontier",
        format_table(
            ["budget KiB", "used KiB", "weighted pages/op", "x vs baseline"],
            rows,
            "Schema advisor — storage/performance frontier over two paths",
        ),
    )
    costs = [row[2] for row in rows]
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:])), costs
    assert rows[-1][3] > 10  # unbounded budget: order-of-magnitude savings
