"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one figure of the paper, times the
computation via pytest-benchmark, writes the rendered series to
``benchmarks/results/<name>.txt``, and asserts the paper's qualitative
claims about the figure.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record(request):
    """A callable ``record(name, text)`` persisting rendered series."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        # Also surface in captured output for bench_output.txt readers.
        print(f"\n[{name}]\n{text}")

    return _record
