"""Figure 8 (section 5.9.3): which queries are supported — Q_{0,3}(bw).

Paper's claims: only the left-complete and full extensions can evaluate
the partial-path query at all (canonical and right fall back to the
unsupported scan, Eq. 35); under *no decomposition* the large full/left
relations must be searched exhaustively and eventually become costlier
than no support at all, while the binary decomposition stays cheap.
"""

from repro.bench import figures
from repro.bench.render import format_series


def test_fig08_partial_path(benchmark, record):
    ds, series = benchmark(figures.fig08_partial_query)
    record(
        "fig08_partial_path",
        format_series(
            "d_i", ds, series, "Figure 8 — Q_{0,3}(bw) cost under varying d_i"
        ),
    )
    last = len(ds) - 1
    # Canonical/right cannot support the query: identical to no support.
    assert series["can (any dec)"] == series["nosupport"]
    assert series["right (any dec)"] == series["nosupport"]
    # Binary-decomposed full/left stay far below the unsupported cost.
    assert series["full/bi"][last] < series["nosupport"][last] / 10
    assert series["left/bi"][last] < series["nosupport"][last] / 10
    # Non-decomposed full/left eventually become costlier than no support.
    assert series["full/nodec"][last] > series["nosupport"][last]
    assert series["left/nodec"][last] > series["nosupport"][last]
    # ... but not at small d_i.
    assert series["full/nodec"][0] < series["nosupport"][0]
