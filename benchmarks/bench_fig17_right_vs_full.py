"""Figure 17 (section 6.4.5): right-complete vs full, n = 5, two layouts.

Paper's claims: the decomposition (0,3,5) is always superior to the
binary decomposition for this backward-query mix, and below an update
probability of ≈0.005 the right-complete extension even beats the full
extension under (0,3,5).
"""

from repro.bench import figures
from repro.bench.render import format_series, format_table


def test_fig17_right_vs_full(benchmark, record):
    p_ups, series = benchmark(figures.fig17_right_vs_full)
    record(
        "fig17_right_vs_full",
        format_series(
            "P_up",
            p_ups,
            series,
            "Figure 17 — right vs full, dec (0,1,2,3,4,5) and (0,3,5)",
        ),
    )
    # (0,3,5) is always superior to the binary decomposition.
    for index in range(len(p_ups)):
        assert series["right/(0,3,5)"][index] < series["right/bi"][index]
        assert series["full/(0,3,5)"][index] < series["full/bi"][index]
    # At the lowest update probabilities right beats full under (0,3,5)...
    assert series["right/(0,3,5)"][0] < series["full/(0,3,5)"][0]
    # ... and loses once updates matter.
    assert series["right/(0,3,5)"][-1] > series["full/(0,3,5)"][-1]


def test_fig17_break_even(benchmark, record):
    point = benchmark(figures.fig17_break_even)
    record(
        "fig17_break_even",
        format_table(
            ["pair", "P_up*"],
            [["right/(0,3,5) vs full/(0,3,5)", point]],
            "Figure 17 — break-even (paper: ≈ 0.005)",
        ),
    )
    assert point is not None
    assert 0.001 < point < 0.05
