"""Figure 16 (section 6.4.4): left-complete vs full, n = 5, two layouts.

The mix is query-heavy on whole-path traversals with updates spread over
ins_0/ins_3/ins_4.  Paper's point: the comparison between left and full
depends on both the extension *and* the decomposition — the coarser
(0,3,4,5) layout shifts costs for both designs, and left's advantage at
low P_up erodes as updates dominate.
"""

from repro.bench import figures
from repro.bench.render import format_series


def test_fig16_left_vs_full(benchmark, record):
    p_ups, series = benchmark(figures.fig16_left_vs_full)
    record(
        "fig16_left_vs_full",
        format_series(
            "P_up",
            p_ups,
            series,
            "Figure 16 — left vs full, dec (0,1,2,3,4,5) and (0,3,4,5)",
        ),
    )
    # Every design massively beats no support at query-dominated mixes.
    for name, values in series.items():
        if name != "nosupport":
            assert values[0] < 0.2, (name, values[0])
    # Full overtakes left as updates dominate (full never searches data;
    # this mix contains ins_0 whose data search punishes left).
    assert series["full/bi"][-1] < series["left/bi"][-1]
    assert series["full/(0,3,4,5)"][-1] < series["left/(0,3,4,5)"][-1]
    # Normalized costs increase with P_up for every supported design.
    for name, values in series.items():
        if name != "nosupport":
            assert values == sorted(values), name
