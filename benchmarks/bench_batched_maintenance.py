"""Batched (coalesced) ASR maintenance vs eager per-event maintenance.

The eager regime applies one neighbourhood delta per primitive event —
the per-update cost section 6 prices.  The batched regime
(:meth:`~repro.asr.manager.ASRManager.batch`) only *accumulates* dirty
regions during a transaction and applies one coalesced delta per ASR at
the flush boundary, under a single buffer scope.  When a transaction's
events cluster on few anchors (the common case: several inserts into
the same collection), the coalesced flush charges the shared search and
tree pages once instead of once per event.

Both regimes are driven through an :class:`~repro.context.ExecutionContext`
so the totals come straight out of the context's stats, and both must
leave the ASR identical to a from-scratch rebuild (``check_consistency``).
"""

import random

from repro.asr import ASRManager, Decomposition, Extension
from repro.bench.render import format_table
from repro.context import ExecutionContext
from repro.costmodel import ApplicationProfile
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(30, 60, 120, 240),
    d=(27, 54, 110),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)

#: Events per transaction; every transaction's inserts hit one owner's
#: collection, so its dirty regions coalesce into a single anchor set.
TXN_SIZE = 6
TRANSACTIONS = 8


def _workload(generated, rng: random.Random):
    """Deterministic transactions: (collection, targets) per transaction.

    The same seed regenerates the same world (identical OIDs), so both
    regimes replay byte-identical event streams.
    """
    db = generated.db
    transactions = []
    for _ in range(TRANSACTIONS):
        owner = rng.choice(generated.layers[2])
        collection = db.attr(owner, "A")
        targets = rng.sample(generated.layers[3], TXN_SIZE)
        transactions.append((collection, targets))
    return transactions


def run_maintenance(extension: Extension, batched: bool) -> tuple[int, int]:
    """Total maintenance pages and extension-rows changed for one regime."""
    generated = ChainGenerator(seed=61).generate(PROFILE)
    db, path = generated.db, generated.path
    context = ExecutionContext()
    manager = ASRManager(db, context=context)
    manager.create(path, extension, Decomposition.binary(path.m))
    rows_before = manager.asrs[0].tuple_count
    for collection, targets in _workload(generated, random.Random(62)):
        if batched:
            with manager.batch():
                for target in targets:
                    db.set_insert(collection, target)
        else:
            for target in targets:
                with context.operation("asr.event"):
                    db.set_insert(collection, target)
    manager.check_consistency()
    rows_changed = manager.asrs[0].tuple_count - rows_before
    return context.stats.total, rows_changed


def test_batched_flush_charges_fewer_pages(benchmark, record):
    eager_full, changed_eager = run_maintenance(Extension.FULL, batched=False)
    batched_full, changed_batched = benchmark(
        run_maintenance, Extension.FULL, batched=True
    )
    eager_can, _ = run_maintenance(Extension.CANONICAL, batched=False)
    batched_can, _ = run_maintenance(Extension.CANONICAL, batched=True)
    rows = [
        ["full, eager per-event", eager_full],
        ["full, batched flush", batched_full],
        ["can, eager per-event", eager_can],
        ["can, batched flush", batched_can],
    ]
    record(
        "batched_maintenance",
        format_table(
            ["regime", "pages"],
            rows,
            f"Maintenance pages — {TRANSACTIONS} transactions x "
            f"{TXN_SIZE} clustered inserts",
        ),
    )
    # Both regimes converge to the same extension (consistency already
    # asserted inside run_maintenance against a from-scratch rebuild).
    assert changed_eager == changed_batched
    assert changed_eager > 0, "the workload must actually change the ASR"
    # The headline claim: coalescing never charges more than per-event
    # application, and on clustered transactions it charges strictly less.
    assert batched_full <= eager_full
    assert batched_can <= eager_can
    assert batched_full < eager_full, (
        "clustered transactions should coalesce to strictly fewer pages"
    )
