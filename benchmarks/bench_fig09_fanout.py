"""Figure 9 (section 5.9.4): an application favouring canonical/left.

The profile keeps very few defined attributes near ``t_0`` (10, 100,
1000) against 400 000 objects per type, so canonical/left relations stay
tiny while full/right must also carry the huge right-anchored partial
paths.  Paper's claim: canonical and left-complete beat full and
right-complete on Q_{0,4}(bw) across the whole fan-out sweep.
"""

from repro.bench import figures
from repro.bench.render import format_series


def test_fig09_fanout(benchmark, record):
    fans, series = benchmark(figures.fig09_fanout)
    record(
        "fig09_fanout",
        format_series(
            "fan_i",
            fans,
            series,
            "Figure 9 — Q_{0,4}(bw) cost under varying fan-out (binary dec)",
        ),
    )
    for index in range(len(fans)):
        assert series["can"][index] <= series["full"][index]
        assert series["can"][index] <= series["right"][index]
        assert series["left"][index] <= series["full"][index]
        assert series["left"][index] <= series["right"][index]
        # All supported variants demolish the unsupported scan.
        assert series["full"][index] < series["nosupport"][index] / 50
