"""Figure 5 (section 4.4.2): sizes while varying all d_i, no decomposition.

Paper's claims: sizes grow with the ``d_i``; as ``d_i → c_i`` the
extensions' storage costs approach each other (almost all paths then
originate in ``t_0`` and lead to ``t_n``).
"""

from repro.bench import figures
from repro.bench.render import format_series


def test_fig05_varying_d(benchmark, record):
    ds, series = benchmark(figures.fig05_varying_d)
    record(
        "fig05_varying_d",
        format_series(
            "d_i", ds, series, "Figure 5 — sizes (KiB) under varying d_i, no dec"
        ),
    )
    for name, values in series.items():
        assert values == sorted(values), f"{name} not monotone in d"
    # Convergence: the max/min ratio shrinks as d_i approaches c_i.
    def spread(index: int) -> float:
        column = [series[name][index] for name in series]
        return max(column) / min(column)

    assert spread(len(ds) - 1) < spread(0)
    assert spread(len(ds) - 1) < 1.5
