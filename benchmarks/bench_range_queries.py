"""Value-range queries: measured simulator behaviour vs the cost extension.

Sweeps range selectivity on a generated world with numeric terminals and
compares (a) measured supported page reads against the unsupported scan
and (b) the analytical ``qsup_range`` curve's monotonicity and crossing
behaviour.  This is an extension benchmark (the paper prices only point
lookups).
"""

import random

from repro.asr import ASRManager, Decomposition, Extension
from repro.bench.render import format_table
from repro.costmodel import ApplicationProfile, QueryCostModel
from repro.gom import ObjectBase, PathExpression, Schema
from repro.query import QueryEvaluator, ValueRangeQuery
from repro.storage import ClusteredObjectStore


def build_catalog(parts_count=400, products_count=150, seed=67):
    schema = Schema()
    schema.define_tuple("BasePart", {"Price": "DECIMAL"})
    schema.define_set("BasePartSET", "BasePart")
    schema.define_tuple("Product", {"Name": "STRING", "Composition": "BasePartSET"})
    schema.validate()
    db = ObjectBase(schema)
    rng = random.Random(seed)
    parts = [db.new("BasePart", Price=float(i)) for i in range(parts_count)]
    for i in range(products_count):
        members = rng.sample(parts, 3)
        db.new(
            "Product",
            Name=f"Pr{i}",
            Composition=db.new_set("BasePartSET", members),
        )
    store = ClusteredObjectStore({"Product": 300, "BasePart": 100})
    store.attach(db)
    path = PathExpression.parse(schema, "Product.Composition.Price")
    return db, path, store, parts_count


def test_range_selectivity_sweep(benchmark, record):
    db, path, store, parts_count = build_catalog()
    manager = ASRManager(db)
    asr = manager.create(path, Extension.FULL, Decomposition.none(path.m))
    evaluator = QueryEvaluator(db, store)

    def sweep():
        rows = []
        for fraction in (0.01, 0.05, 0.2, 0.5, 1.0):
            hi = fraction * parts_count
            query = ValueRangeQuery(path, 0, path.n, lo=0.0, hi=hi)
            supported = evaluator.evaluate_supported(query, asr)
            unsupported = evaluator.evaluate_unsupported(query)
            assert supported.cells == unsupported.cells
            rows.append(
                [
                    fraction,
                    len(supported.cells),
                    supported.page_reads,
                    unsupported.page_reads,
                ]
            )
        return rows

    rows = benchmark(sweep)
    record(
        "range_selectivity",
        format_table(
            ["selectivity", "matches", "supported pages", "unsupported pages"],
            rows,
            "Range queries — measured page reads vs selectivity (full/no-dec)",
        ),
    )
    supported_pages = [row[2] for row in rows]
    assert supported_pages == sorted(supported_pages)
    # Selective ranges are far cheaper than the exhaustive scan.
    assert rows[0][2] < rows[0][3] / 3


def test_range_cost_model_curve(benchmark, record):
    profile = ApplicationProfile(
        c=(150, 450, 400),
        d=(150, 450),
        fan=(3, 1),
        size=(300, 100, 16),
    )
    model = QueryCostModel(profile)

    def curve():
        return [
            (
                s,
                model.qsup_range(Extension.FULL, 0, s, Decomposition.none(2)),
                model.qnas(0, 2, "bw"),
            )
            for s in (0.01, 0.05, 0.2, 0.5, 1.0)
        ]

    rows = benchmark(curve)
    record(
        "range_cost_curve",
        format_table(
            ["selectivity", "model supported", "model unsupported"],
            rows,
            "Range queries — analytical qsup_range vs the exhaustive scan",
        ),
    )
    for _s, supported, unsupported in rows[:2]:
        assert supported < unsupported
