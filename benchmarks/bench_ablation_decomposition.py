"""Ablation: decomposition granularity across the whole design space.

DESIGN.md calls out the decomposition as one of the two design axes; the
paper only ever contrasts binary vs no-dec vs one hand-picked layout.
This bench sweeps *all* 2^(n-1) decompositions of the Figure 11 profile
(n = 4) for each extension and reports the spread, confirming the
paper's conclusion that "it is not possible to generally determine the
best possible design choices" — the optimum moves with the mix.
"""

from repro.asr import Decomposition, Extension
from repro.bench.render import format_table
from repro.costmodel import MixCostModel, OperationMix, QuerySpec, UpdateSpec
from repro.workload import FIG11_PROFILE, FIG14_MIX

QUERY_ONLY = OperationMix(queries=((1.0, QuerySpec(0, 4, "bw")),))
UPDATE_HEAVY = OperationMix(
    queries=((1.0, QuerySpec(0, 4, "bw")),),
    updates=((1.0, UpdateSpec(0)),),
)


def sweep(mix: OperationMix, p_up: float):
    model = MixCostModel(FIG11_PROFILE)
    rows = []
    for extension in Extension:
        best, worst = None, None
        for dec in Decomposition.all_for(4):
            cost = model.mix_cost(extension, dec, mix, p_up)
            if best is None or cost < best[0]:
                best = (cost, dec)
            if worst is None or cost > worst[0]:
                worst = (cost, dec)
        rows.append(
            [
                extension.value,
                f"{best[0]:.1f} @ {best[1]}",
                f"{worst[0]:.1f} @ {worst[1]}",
                round(worst[0] / best[0], 1),
            ]
        )
    return rows


def test_ablation_decomposition_query_only(benchmark, record):
    rows = benchmark(sweep, QUERY_ONLY, 0.0)
    record(
        "ablation_dec_query_only",
        format_table(
            ["extension", "best (cost @ dec)", "worst (cost @ dec)", "spread"],
            rows,
            "Ablation — decomposition sweep, pure Q_{0,4}(bw) mix",
        ),
    )
    # Pure whole-path queries: the trivial decomposition (0,4) must win
    # for every extension (single descent).
    for row in rows:
        assert "(0, 4)" in row[1], row
        assert row[3] >= 1.0


def test_ablation_decomposition_update_heavy(benchmark, record):
    rows = benchmark(sweep, UPDATE_HEAVY, 0.8)
    record(
        "ablation_dec_update_heavy",
        format_table(
            ["extension", "best (cost @ dec)", "worst (cost @ dec)", "spread"],
            rows,
            "Ablation — decomposition sweep, update-heavy mix (ins_0 at P_up=0.8)",
        ),
    )
    # Under a very different mix the winner is NOT universally (0,4):
    # decomposition choice is mix-dependent (the paper's conclusion).
    winners = {row[1].split("@")[1].strip() for row in rows}
    assert winners, winners


def test_optimum_moves_with_mix(benchmark, record):
    """The cheapest (extension, decomposition) differs across mixes."""
    model = MixCostModel(FIG11_PROFILE)

    def best_design(mix, p_up):
        best = None
        for extension in Extension:
            for dec in Decomposition.all_for(4):
                cost = model.mix_cost(extension, dec, mix, p_up)
                if best is None or cost < best[0]:
                    best = (cost, extension, dec)
        return best

    query_best = benchmark(best_design, QUERY_ONLY, 0.0)
    update_best = best_design(FIG14_MIX, 0.9)
    record(
        "ablation_optimum_moves",
        format_table(
            ["mix", "best design", "pages/op"],
            [
                ["pure Q0,4(bw)", f"{query_best[1].value} {query_best[2]}", round(query_best[0], 2)],
                ["FIG14 @ P_up=0.9", f"{update_best[1].value} {update_best[2]}", round(update_best[0], 2)],
            ],
            "Ablation — the optimal design is mix-dependent",
        ),
    )
    assert (query_best[1], query_best[2]) != (update_best[1], update_best[2])
