"""Figure 12 (section 6.3.2): ins_3 under the second fixed profile.

Paper's claim: "the update costs of the left-complete and full extension
are almost comparable" — with fan-outs (2, 1, 1, 4) the two designs'
maintenance costs sit within a small factor of each other, while
canonical and right-complete remain expensive.
"""

from repro.bench import figures
from repro.bench.render import format_table


def test_fig12_update_alt(benchmark, record):
    data = benchmark(figures.fig12_update_costs)
    record(
        "fig12_update_alt",
        format_table(
            ["design", "page accesses"],
            sorted(data.items()),
            "Figure 12 — ins_3 update cost (fan = 2,1,1,4)",
        ),
    )
    # Left and full almost comparable (binary decomposition).
    ratio = max(data["left/bi"], data["full/bi"]) / min(
        data["left/bi"], data["full/bi"]
    )
    assert ratio < 2.5, ratio
    # Canonical and right-complete remain far more expensive.
    assert data["can/bi"] > 10 * data["left/bi"]
    assert data["right/bi"] > 10 * data["left/bi"]
