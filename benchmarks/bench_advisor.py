"""Physical-design advisor over the Figure 14 profile and mix.

The paper's conclusion motivates the whole cost model with
(semi-)automatic physical database design; this bench exercises the
exhaustive (extension × decomposition) search and pins down the regime
structure: ASR designs dominate at query-heavy mixes and the baseline
only wins at near-pure update loads.
"""

from repro.bench.render import format_table
from repro.costmodel import DesignAdvisor
from repro.workload import FIG11_PROFILE, FIG14_MIX


def test_advisor_ranking(benchmark, record):
    advisor = DesignAdvisor(FIG11_PROFILE)

    def enumerate_designs():
        return advisor.enumerate(FIG14_MIX, p_up=0.2)

    choices = benchmark(enumerate_designs)
    rows = [
        [
            choice.extension.value if choice.extension else "none",
            str(choice.decomposition) if choice.decomposition else "-",
            round(choice.cost, 2),
            round(choice.normalized, 4),
        ]
        for choice in choices[:8]
    ]
    record(
        "advisor_ranking",
        format_table(
            ["extension", "decomposition", "pages/op", "normalized"],
            rows,
            "Design advisor — top designs for the Figure 14 mix at P_up = 0.2",
        ),
    )
    # 4 extensions × 2^(n-1) decompositions + baseline.
    assert len(choices) == 4 * 2 ** (FIG11_PROFILE.n - 1) + 1
    best = choices[0]
    assert best.extension is not None
    assert best.normalized < 0.05


def test_advisor_regimes(benchmark, record):
    advisor = DesignAdvisor(FIG11_PROFILE)

    def sweep():
        return [(p_up, advisor.best(FIG14_MIX, p_up)) for p_up in (0.0, 0.2, 0.5, 0.9, 1.0)]

    rows = []
    for p_up, best in benchmark(sweep):
        rows.append(
            [
                p_up,
                best.extension.value if best.extension else "none",
                str(best.decomposition) if best.decomposition else "-",
                round(best.cost, 2),
            ]
        )
    record(
        "advisor_regimes",
        format_table(
            ["P_up", "best extension", "decomposition", "pages/op"],
            rows,
            "Design advisor — best design per update probability",
        ),
    )
    # Query-dominated: an ASR design must win; pure updates: baseline wins.
    assert rows[0][1] != "none"
    assert rows[-1][1] == "none"


def test_advisor_storage_budget(benchmark, record):
    """A storage budget prunes the big full/right designs."""
    advisor = DesignAdvisor(FIG11_PROFILE)
    unbounded = advisor.enumerate(FIG14_MIX, p_up=0.2)
    bounded = benchmark(
        advisor.enumerate, FIG14_MIX, p_up=0.2, max_storage_bytes=512 * 1024
    )
    assert len(bounded) < len(unbounded)
    for choice in bounded:
        assert choice.storage_bytes <= 512 * 1024
