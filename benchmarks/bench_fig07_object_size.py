"""Figure 7 (section 5.9.2): Q_{0,4}(bw) under varying object sizes.

Paper's claims: object size does not influence supported query cost;
only the unsupported evaluation grows (roughly proportionally) with the
object size; full, left, and right extensions overlap.
"""

from repro.bench import figures
from repro.bench.render import format_series


def test_fig07_object_size(benchmark, record):
    sizes, series = benchmark(figures.fig07_object_size)
    record(
        "fig07_object_size",
        format_series(
            "size_i",
            sizes,
            series,
            "Figure 7 — Q_{0,4}(bw) cost under varying object size (binary dec)",
        ),
    )
    # Supported costs are flat in object size.
    for extension in ("can", "full", "left", "right"):
        values = series[extension]
        assert max(values) == min(values), extension
    # full/left/right overlap (the filled squares of the figure).
    assert series["full"] == series["left"] == series["right"]
    # Unsupported cost grows substantially with object size.
    unsupported = series["nosupport"]
    assert unsupported[-1] > 2 * unsupported[0]
    assert unsupported == sorted(unsupported)
