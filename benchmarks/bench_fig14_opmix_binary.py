"""Figure 14 (section 6.4.2): operation mix vs P_up, binary decomposition.

Paper's claims: for update probabilities below ≈0.3 the left-complete
extension beats the full extension; the break-even between no support
and the full extension lies at ≈0.998.
"""

from repro.bench import figures
from repro.bench.render import format_series, format_table


def test_fig14_opmix_binary(benchmark, record):
    p_ups, series = benchmark(figures.fig14_opmix)
    record(
        "fig14_opmix_binary",
        format_series(
            "P_up",
            p_ups,
            series,
            "Figure 14 — normalized mix cost vs P_up (binary dec)",
        ),
    )
    # Left and full are neck-and-neck at low update probability (the
    # crossover sits below ~0.3); left clearly loses once updates dominate.
    assert series["left"][0] < series["full"][0] * 1.05
    assert series["left"][-1] > series["full"][-1]
    # Canonical and right are dominated throughout this mix.
    for index in range(len(p_ups)):
        assert series["full"][index] < series["can"][index]
        assert series["full"][index] < series["right"][index]


def test_fig14_break_evens(benchmark, record):
    points = benchmark(figures.fig14_break_evens)
    record(
        "fig14_break_evens",
        format_table(
            ["pair", "P_up*"],
            sorted(points.items()),
            "Figure 14 — break-even update probabilities "
            "(paper: left/full ≈ 0.3, nosupport/full ≈ 0.998)",
        ),
    )
    assert points["left_vs_full"] is not None
    assert 0.02 < points["left_vs_full"] < 0.45
    assert points["nosupport_vs_full"] is not None
    assert points["nosupport_vs_full"] > 0.97
