"""Baseline comparison: ASRs vs the indexing schemes they subsume (§1).

The paper claims access support relations subsume GemStone index paths
and Orion-style nested attribute indexes while adding: collection-valued
steps, four extension choices, and arbitrary decompositions.  This bench
makes the comparison concrete on one generated world:

* query coverage — which ``Q_{i,j}`` each structure answers at all;
* measured page reads for the whole-path backward lookup;
* storage footprint.
"""

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.baselines import NestedAttributeIndex, gemstone_index_path
from repro.bench.render import format_table
from repro.costmodel import ApplicationProfile
from repro.errors import PathError
from repro.gom import PathExpression
from repro.query import BackwardQuery, QueryEvaluator
from repro.storage.stats import AccessStats, BufferScope
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(40, 80, 160, 320),
    d=(36, 70, 140),
    fan=(1, 1, 1),  # linear so the GemStone baseline is applicable
    size=(400, 300, 200, 100),
)


@pytest.fixture(scope="module")
def world():
    generated = ChainGenerator(seed=83).generate(PROFILE)
    db = generated.db
    # Terminal values for the nested index.
    value_path = PathExpression(db.schema, "T0", ("A", "A", "A", "Payload"))
    for position, oid in enumerate(generated.layers[3]):
        db.set_attr(oid, "Payload", position % 11)
    return generated, value_path


def test_baseline_comparison(benchmark, world, record):
    generated, value_path = world
    db = generated.db
    manager = ASRManager(db)
    gemstone = gemstone_index_path(db, value_path)
    manager.register(gemstone)
    nested = NestedAttributeIndex.build(db, value_path)
    manager.register(nested)
    asr_full = manager.create(
        value_path, Extension.FULL, Decomposition.of(0, 2, value_path.m)
    )
    evaluator = QueryEvaluator(db, generated.store)
    target_value = 5

    def measure():
        query = BackwardQuery(value_path, 0, value_path.n, target=target_value)
        unsupported = evaluator.evaluate_unsupported(query)
        via_gemstone = evaluator.evaluate_supported(query, gemstone)
        via_asr = evaluator.evaluate_supported(query, asr_full)
        stats = AccessStats()
        with BufferScope(stats) as buffer:
            via_nested = nested.lookup(target_value, buffer)
        assert via_gemstone.cells == via_asr.cells == via_nested == unsupported.cells
        return unsupported, via_gemstone, via_asr, stats.page_reads

    unsupported, via_gemstone, via_asr, nested_pages = benchmark(measure)
    rows = [
        ["no support (scan)", unsupported.page_reads, "-", "any Q_{i,j}"],
        [
            "GemStone index path",
            via_gemstone.page_reads,
            gemstone.total_bytes,
            "Q_{0,n}(bw/fw) only; linear paths only",
        ],
        [
            "Orion nested index",
            nested_pages,
            nested.total_bytes,
            "Q_{0,n}(bw) only",
        ],
        [
            "ASR full/(0,2,n)",
            via_asr.page_reads,
            asr_full.total_bytes,
            "every Q_{i,j}",
        ],
    ]
    record(
        "baseline_comparison",
        format_table(
            ["structure", "bw lookup pages", "bytes", "coverage"],
            rows,
            "Baselines — whole-path backward lookup and coverage",
        ),
    )
    # All indexed structures beat the scan by a wide margin.
    assert via_gemstone.page_reads < unsupported.page_reads / 3
    assert nested_pages < unsupported.page_reads / 3
    # The nested index is the smallest (it stores only value/anchor pairs).
    assert nested.total_bytes <= gemstone.total_bytes
    # Subsumption: the baselines cannot answer a suffix query, the ASR can.
    assert not nested.supports_query(1, value_path.n)
    assert not gemstone.supports_query(1, value_path.n)
    assert asr_full.supports_query(1, value_path.n)


def test_gemstone_rejects_general_paths(benchmark, world, record):
    generated, _value_path = world
    db = generated.db
    benchmark(lambda: None)  # timing is irrelevant; keep --benchmark-only happy
    db.schema.define_set("SET_TX", "T3")
    db.schema.define_tuple("TX", {"Members": "SET_TX"})
    general = PathExpression.parse(db.schema, "TX.Members.Payload")
    with pytest.raises(PathError):
        gemstone_index_path(db, general)
    record(
        "baseline_restriction",
        "GemStone index paths reject collection-valued chains; "
        "access support relations accept them (Definition 3.1).",
    )
