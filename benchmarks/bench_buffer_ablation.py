"""Ablation: buffer-pool size sensitivity of unsupported evaluation.

The cost model (and Yao's formula) implicitly assumes a buffer large
enough that each distinct page is read once per operation.  This bench
re-runs the exhaustive backward scan under LRU buffers of decreasing
capacity (``BoundedBufferScope``) and shows how page traffic inflates
once the working set no longer fits — quantifying how load-bearing that
modelling assumption is.
"""

from repro.bench.render import format_table
from repro.costmodel import ApplicationProfile
from repro.gom.objects import OID
from repro.gom.types import NULL
from repro.query import BackwardQuery
from repro.storage.stats import AccessStats, BoundedBufferScope, BufferScope
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(40, 80, 160, 320),
    d=(36, 70, 140),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)


def scan_pages_with_capacity(generated, capacity: int | None) -> int:
    """Pages read by a full backward scan under the given buffer size."""
    db, path, store = generated.db, generated.path, generated.store
    stats = AccessStats()
    buffer = (
        BufferScope(stats)
        if capacity is None
        else BoundedBufferScope(stats, capacity)
    )
    target = generated.layers[path.n][0]
    # Inline unsupported backward scan so the custom buffer is used.
    store.scan_type("T0", buffer)
    for oid in db.extent("T0"):
        frontier = {oid}
        for level in range(0, path.n):
            step = path.steps[level]
            next_frontier = set()
            for cell in frontier:
                if not isinstance(cell, OID):
                    continue
                if level > 0:
                    store.access(cell, db.type_of(cell), buffer)
                value = db.attr(cell, step.attribute)
                if value is NULL:
                    continue
                if step.is_set_occurrence:
                    next_frontier.update(db.members(value))
                else:
                    next_frontier.add(value)
            frontier = next_frontier
    return stats.page_reads


def test_buffer_capacity_sweep(benchmark, record):
    generated = ChainGenerator(seed=73).generate(PROFILE)

    def sweep():
        rows = []
        unbounded = scan_pages_with_capacity(generated, None)
        for capacity in (64, 16, 8, 4, 2):
            pages = scan_pages_with_capacity(generated, capacity)
            rows.append([capacity, pages, round(pages / unbounded, 2)])
        rows.insert(0, ["unbounded", unbounded, 1.0])
        return rows

    rows = benchmark(sweep)
    record(
        "buffer_ablation",
        format_table(
            ["buffer pages", "page reads", "vs unbounded"],
            rows,
            "Ablation — backward-scan page reads under LRU buffers",
        ),
    )
    # Traffic is monotonically non-decreasing as the buffer shrinks.
    reads = [row[1] for row in rows]
    assert all(a <= b for a, b in zip(reads, reads[1:])), reads
    # A tiny buffer costs measurably more than the model's assumption.
    assert reads[-1] > reads[0]
