"""Figure 4 (section 4.4.1): access relation sizes per extension/decomposition.

Paper's claims for this profile (few objects at the left of the path):

* canonical and left-complete are drastically smaller than right-complete
  and full;
* binary decomposition reduces storage costs by roughly a factor of 2.
"""

from repro.bench import figures
from repro.bench.render import format_table


def test_fig04_sizes(benchmark, record):
    data = benchmark(figures.fig04_sizes)
    record(
        "fig04_sizes",
        format_table(
            ["design", "KiB"],
            sorted(data.items()),
            "Figure 4 — access support relation sizes (KiB)",
        ),
    )
    # Canonical/left drastically smaller than right/full (both layouts).
    for layout in ("bi", "nodec"):
        assert data[f"can/{layout}"] < data[f"right/{layout}"] / 4
        assert data[f"left/{layout}"] < data[f"right/{layout}"] / 4
        assert data[f"right/{layout}"] <= data[f"full/{layout}"]
    # Binary decomposition reduces storage by roughly a factor of two.
    for extension in ("can", "full", "left", "right"):
        ratio = data[f"{extension}/nodec"] / data[f"{extension}/bi"]
        assert 1.5 <= ratio <= 4.0, (extension, ratio)
