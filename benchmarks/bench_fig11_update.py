"""Figure 11 (section 6.3.1): cost of ins_3 per extension/decomposition.

Paper's claims: with the update at the right-hand side of the path, the
left-complete extension under binary decomposition is very much superior
to the right-complete extension, and the canonical extension is
problematic under any update (a data search is always necessary).
"""

from repro.bench import figures
from repro.bench.render import format_table


def test_fig11_update(benchmark, record):
    data = benchmark(figures.fig11_update_costs)
    record(
        "fig11_update",
        format_table(
            ["design", "page accesses"],
            sorted(data.items()),
            "Figure 11 — ins_3 update cost",
        ),
    )
    assert data["left/bi"] < data["right/bi"] / 20
    assert data["left/bi"] < data["can/bi"] / 20
    # Full never searches the data: comparable to left.
    assert data["full/bi"] < data["can/bi"] / 10


def test_fig11_ins0_reversal(benchmark, record):
    """Paper: "For an update ins_0 the right-complete extension would be
    drastically better" — check the reversal at the other end of the path."""
    data = benchmark(figures.fig11_update_costs, i=0)
    record(
        "fig11_update_ins0",
        format_table(
            ["design", "page accesses"], sorted(data.items()),
            "Figure 11 companion — ins_0 update cost",
        ),
    )
    assert data["right/bi"] < data["left/bi"]
