"""Empirical validation: storage simulator vs analytical cost model.

The paper's evaluation is purely analytical.  These benchmarks generate
*live* chain object bases, run the same queries through the page-counting
storage simulator, and check that the analytical model's predictions
match the measured numbers — cardinalities within a relative band,
query page counts within a small factor.
"""

import pytest

from repro.asr import ASRManager, Decomposition, Extension, build_extension
from repro.bench.render import format_table
from repro.costmodel import (
    ApplicationProfile,
    QueryCostModel,
    partition_cardinality,
)
from repro.query import BackwardQuery, ForwardQuery, QueryEvaluator
from repro.workload import ChainGenerator, measure_profile

PROFILE = ApplicationProfile(
    c=(60, 120, 240, 480, 960),
    d=(54, 96, 190, 380),
    fan=(2, 2, 3, 2),
    size=(500, 400, 300, 300, 100),
)


@pytest.fixture(scope="module")
def world():
    generated = ChainGenerator(seed=11).generate(PROFILE)
    manager = ASRManager(generated.db)
    asrs = {
        "full/bi": manager.create(
            generated.path, Extension.FULL, Decomposition.binary(generated.path.m)
        ),
        "can/nodec": manager.create(
            generated.path, Extension.CANONICAL, Decomposition.none(generated.path.m)
        ),
    }
    measured = measure_profile(generated)
    return generated, asrs, measured


def test_cardinality_model_vs_actual(benchmark, world, record):
    generated, _asrs, measured = world

    def compute():
        rows = []
        for extension in Extension:
            actual = len(build_extension(generated.db, generated.path, extension))
            model = partition_cardinality(measured, extension, 0, measured.n)
            rows.append([extension.value, actual, round(model, 1)])
        return rows

    rows = benchmark(compute)
    record(
        "validation_cardinality",
        format_table(
            ["extension", "actual rows", "model estimate"],
            rows,
            "Validation — extension cardinality, simulator vs model",
        ),
    )
    for extension, actual, model in rows:
        assert actual > 0
        assert abs(model - actual) / actual < 0.35, (extension, actual, model)


def test_backward_query_model_vs_measured(benchmark, world, record):
    generated, asrs, measured = world
    evaluator = QueryEvaluator(generated.db, generated.store)
    model = QueryCostModel(measured)
    target = generated.layers[generated.n][0]
    query = BackwardQuery(generated.path, 0, generated.n, target=target)

    def run():
        return evaluator.evaluate_unsupported(query)

    unsupported = benchmark(run)
    supported = evaluator.evaluate_supported(query, asrs["full/bi"])
    predicted_unsupported = model.qnas(0, measured.n, "bw")
    predicted_supported = model.q(
        Extension.FULL, 0, measured.n, "bw", Decomposition.binary(measured.n)
    )
    record(
        "validation_backward_query",
        format_table(
            ["strategy", "measured pages", "model pages"],
            [
                ["unsupported", unsupported.page_reads, predicted_unsupported],
                ["full/bi supported", supported.page_reads, predicted_supported],
            ],
            "Validation — Q_{0,n}(bw) page accesses",
        ),
    )
    assert supported.cells == unsupported.cells
    # The exhaustive scan estimate is within a factor of two of reality.
    assert 0.5 <= predicted_unsupported / max(unsupported.page_reads, 1) <= 2.0
    # Both agree that support wins by an order of magnitude.
    assert supported.page_reads < unsupported.page_reads / 5
    assert predicted_supported < predicted_unsupported / 5


def test_forward_query_model_vs_measured(benchmark, world, record):
    generated, asrs, measured = world
    evaluator = QueryEvaluator(generated.db, generated.store)
    model = QueryCostModel(measured)
    starts = [
        oid
        for oid in generated.layers[0]
        if evaluator.evaluate_unsupported(
            ForwardQuery(generated.path, 0, generated.n, start=oid)
        ).cells
    ][:10]
    assert starts, "no start object reaches t_n"

    def run():
        pages = []
        for start in starts:
            query = ForwardQuery(generated.path, 0, generated.n, start=start)
            pages.append(evaluator.evaluate_unsupported(query).page_reads)
        return sum(pages) / len(pages)

    measured_pages = benchmark(run)
    predicted = model.qnas(0, measured.n, "fw")
    record(
        "validation_forward_query",
        format_table(
            ["strategy", "measured pages (avg)", "model pages"],
            [["unsupported fw", round(measured_pages, 1), predicted]],
            "Validation — Q_{0,n}(fw) page accesses",
        ),
    )
    assert 0.4 <= predicted / max(measured_pages, 1) <= 2.5


def test_supported_results_match_oracle(benchmark, world):
    """Every (extension, decomposition) ASR answers queries identically."""
    generated, _asrs, _measured = world
    manager = ASRManager(generated.db)
    evaluator = QueryEvaluator(generated.db, generated.store)
    path = generated.path
    asrs = [
        manager.create(path, extension, dec)
        for extension in Extension
        for dec in (Decomposition.binary(path.m), Decomposition.none(path.m))
    ]
    target = generated.layers[generated.n][1]
    query = BackwardQuery(path, 0, path.n, target=target)
    reference = evaluator.evaluate_unsupported(query).cells

    def all_supported():
        return [evaluator.evaluate_supported(query, asr).cells for asr in asrs]

    for cells in benchmark(all_supported):
        assert cells == reference
