"""Benchmarks for the sharing (§5.4) and self-tuning (§7) extensions."""

import random

from repro.asr import (
    ASRManager,
    AdaptiveDesigner,
    Decomposition,
    Extension,
    SharedASRBundle,
    WorkloadRecorder,
)
from repro.bench.render import format_table
from repro.costmodel import ApplicationProfile
from repro.gom import ObjectBase, PathExpression, Schema
from repro.workload import ChainGenerator


def build_two_path_world(scale: int = 20):
    schema = Schema()
    schema.define_tuple("MANUFACTURER", {"Name": "STRING", "Location": "STRING"})
    schema.define_tuple("TOOL", {"Function": "STRING", "ManufacturedBy": "MANUFACTURER"})
    schema.define_tuple("ARM", {"MountedTool": "TOOL"})
    schema.define_tuple("ROBOT", {"Name": "STRING", "Arm": "ARM"})
    schema.define_tuple("WORKCELL", {"SpareTool": "TOOL"})
    schema.validate()
    db = ObjectBase(schema)
    rng = random.Random(31)
    makers = [
        db.new("MANUFACTURER", Name=f"M{i}", Location=rng.choice(["Utopia", "Sirius"]))
        for i in range(scale // 4)
    ]
    tools = [
        db.new("TOOL", Function=f"F{i}", ManufacturedBy=rng.choice(makers))
        for i in range(scale * 2)
    ]
    arms = [db.new("ARM", MountedTool=rng.choice(tools)) for _ in range(scale)]
    for i in range(scale):
        db.new("ROBOT", Name=f"R{i}", Arm=rng.choice(arms))
    for i in range(scale // 2):
        db.new("WORKCELL", SpareTool=rng.choice(tools))
    path_a = PathExpression.parse(schema, "ROBOT.Arm.MountedTool.ManufacturedBy.Location")
    path_b = PathExpression.parse(schema, "WORKCELL.SpareTool.ManufacturedBy.Location")
    return db, path_a, path_b


def test_shared_bundle_build_and_savings(benchmark, record):
    db, path_a, path_b = build_two_path_world()

    def build():
        return SharedASRBundle.build(db, path_a, path_b, Extension.FULL)

    bundle = benchmark(build)
    separate = bundle.shared_partition.byte_size * 2
    shared = bundle.shared_partition.byte_size
    record(
        "sharing_savings",
        format_table(
            ["quantity", "bytes"],
            [
                ["two private copies", separate],
                ["one shared store", shared],
                ["saved", separate - shared],
            ],
            "Sharing — storage for the common TOOL→MANUFACTURER→Location segment",
        ),
    )
    assert bundle.bytes_saved > 0
    bundle.consistency_check(db)


def test_adaptive_retune_throughput(benchmark, record):
    profile = ApplicationProfile(
        c=(40, 80, 160, 320),
        d=(36, 64, 128),
        fan=(2, 2, 2),
        size=(400, 300, 200, 100),
    )
    generated = ChainGenerator(seed=43).generate(profile)
    manager = ASRManager(generated.db)
    sizes = {f"T{i}": int(profile.size[i]) for i in range(4)}

    def tune_once():
        asr = manager.create(
            generated.path, Extension.RIGHT, Decomposition.binary(generated.path.m)
        )
        recorder = WorkloadRecorder(generated.path)
        recorder.record_query(0, 2, "bw", count=100)
        recorder.record_update(0, count=5)
        designer = AdaptiveDesigner(manager, asr, recorder, sizes)
        decision = designer.retune()
        manager.drop(designer.asr)
        return decision

    decision = benchmark(tune_once)
    record(
        "adaptive_decision",
        format_table(
            ["field", "value"],
            [
                ["retuned", decision.retuned],
                ["current pages/op", round(decision.current_cost, 2)],
                ["best design", decision.best.describe()],
            ],
            "Adaptive — one monitor→advise→re-materialize cycle",
        ),
    )
    assert decision.retuned
