"""Measured maintenance page traffic vs the analytical update model.

The paper's section 6 costs are analytical only.  Here a live ASR is
maintained through a stream of set-insert updates with page accounting
switched on (``ASRManager.buffer``), and the measured tree page writes
per update are compared — loosely — with the model's ``aup`` term.  The
*search* term is not comparable (the simulator's object base has a
reverse-reference index the paper's object layout lacks), so the checks
are order-of-magnitude sanity bounds plus the structural claim that the
full extension's maintenance touches far fewer pages than the
right-complete extension's for right-end updates.
"""

import random

from repro.asr import ASRManager, Decomposition, Extension
from repro.bench.render import format_table
from repro.costmodel import ApplicationProfile, UpdateCostModel
from repro.storage.stats import AccessStats, BufferScope
from repro.workload import ChainGenerator, measure_profile

PROFILE = ApplicationProfile(
    c=(30, 60, 120, 240),
    d=(27, 54, 110),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)


def measured_maintenance_pages(extension: Extension, updates: int = 30):
    generated = ChainGenerator(seed=61).generate(PROFILE)
    db, path = generated.db, generated.path
    manager = ASRManager(db)
    manager.create(path, extension, Decomposition.binary(path.m))
    stats = AccessStats()
    rng = random.Random(62)
    applied = 0
    while applied < updates:
        owner = rng.choice(generated.layers[2])
        collection = db.attr(owner, "A")
        if not collection:
            continue
        target = rng.choice(generated.layers[3])
        with BufferScope(stats) as buffer:
            manager.buffer = buffer
            changed = db.set_insert(collection, target)
            manager.buffer = None
        if changed:
            applied += 1
    manager.check_consistency()
    return stats.total / updates, measure_profile(generated)


def test_maintenance_pages_full_vs_right(benchmark, record):
    full_pages, measured = benchmark(measured_maintenance_pages, Extension.FULL)
    right_pages, _ = measured_maintenance_pages(Extension.RIGHT)
    model = UpdateCostModel(measured)
    dec = Decomposition.binary(measured.n)
    rows = [
        ["full (measured tree writes/ins_2)", round(full_pages, 2)],
        ["right (measured tree writes/ins_2)", round(right_pages, 2)],
        ["full (model aup)", round(model.aup(Extension.FULL, 2, dec), 2)],
        ["right (model aup)", round(model.aup(Extension.RIGHT, 2, dec), 2)],
        ["full (model total incl. search)", round(model.total(Extension.FULL, 2, dec), 2)],
        ["right (model total incl. search)", round(model.total(Extension.RIGHT, 2, dec), 2)],
    ]
    record(
        "maintenance_measured",
        format_table(
            ["quantity", "pages"],
            rows,
            "Maintenance — measured simulator traffic vs analytical model (ins_2)",
        ),
    )
    # Sanity: maintenance touches pages, but far fewer than a rebuild would.
    assert 0 < full_pages < 200
    # The model's *total* ordering (right needs data searches for a
    # right-end update) must agree with the structural claim.
    assert model.total(Extension.FULL, 2, dec) < model.total(Extension.RIGHT, 2, dec)
