"""Figure 15 (section 6.4.3): the Figure 14 mix under decomposition (0,3,4).

Paper's point: non-binary decompositions change the picture — the
(0,3,4) layout tailors the partitions to the mix's query/update ranges.
For this mix the left-complete extension under (0,3,4) beats its binary
layout, while full pays for scanning the wide (0,3) partition in the
Q_{1,2}(fw) leg.
"""

from repro.asr import Decomposition, Extension
from repro.bench import figures
from repro.bench.render import format_series
from repro.costmodel import MixCostModel
from repro.workload import FIG11_PROFILE, FIG14_MIX


def test_fig15_opmix_034(benchmark, record):
    p_ups, series = benchmark(figures.fig15_opmix)
    record(
        "fig15_opmix_034",
        format_series(
            "P_up",
            p_ups,
            series,
            "Figure 15 — normalized mix cost vs P_up, decomposition (0,3,4)",
        ),
    )
    model = MixCostModel(FIG11_PROFILE)
    coarse = Decomposition.of(0, 3, 4)
    binary = Decomposition.binary(4)
    for p_up in (0.1, 0.5, 0.9):
        left_coarse = model.mix_cost(Extension.LEFT, coarse, FIG14_MIX, p_up)
        left_binary = model.mix_cost(Extension.LEFT, binary, FIG14_MIX, p_up)
        assert left_coarse < left_binary, (p_up, left_coarse, left_binary)
    # All supported designs still far below the no-support baseline at
    # query-dominated mixes.
    assert series["left/(0,3,4)"][0] < 0.05
    assert series["full/(0,3,4)"][0] < 0.2
