"""Micro-benchmarks of the executable substrates.

Timings (not page counts) for the structures the simulator is built on:
B+ tree insert/lookup/bulk-load, ASR construction, incremental
maintenance throughput, and supported query evaluation on a live store.
"""

import random

import pytest

from repro.asr import ASRManager, Decomposition, Extension
from repro.costmodel import ApplicationProfile
from repro.query import BackwardQuery, QueryEvaluator
from repro.storage import BPlusTree
from repro.workload import ChainGenerator

PROFILE = ApplicationProfile(
    c=(40, 80, 160, 320),
    d=(36, 64, 128),
    fan=(2, 2, 2),
    size=(400, 300, 200, 100),
)


def test_btree_insert_throughput(benchmark):
    keys = list(range(5000))
    random.Random(5).shuffle(keys)

    def build():
        tree = BPlusTree(leaf_capacity=64, interior_capacity=64)
        for key in keys:
            tree.insert(key, key)
        return tree

    tree = benchmark(build)
    assert len(tree) == 5000


def test_btree_bulk_load_and_range(benchmark):
    entries = [(key, key) for key in range(20000)]

    def build_and_scan():
        tree = BPlusTree.bulk_load(entries, 128, 128)
        return sum(1 for _ in tree.range(lo=5000, hi=15000))

    count = benchmark(build_and_scan)
    assert count == 10000


def test_asr_build(benchmark):
    generated = ChainGenerator(seed=23).generate(PROFILE)
    manager = ASRManager(generated.db)

    def build():
        asr = manager.create(
            generated.path, Extension.FULL, Decomposition.binary(generated.path.m)
        )
        manager.drop(asr)
        return asr

    asr = benchmark(build)
    assert asr.tuple_count > 0


def test_maintenance_throughput(benchmark):
    generated = ChainGenerator(seed=29).generate(PROFILE)
    manager = ASRManager(generated.db)
    manager.create(
        generated.path, Extension.FULL, Decomposition.binary(generated.path.m)
    )
    rng = random.Random(31)
    db = generated.db
    layer0, layer1 = generated.layers[0], generated.layers[1]

    def churn():
        for _ in range(25):
            owner = rng.choice(layer0)
            value = db.attr(owner, "A")
            if value is not None and rng.random() < 0.5 and value in db:
                db.set_insert(value, rng.choice(layer1))
            else:
                target = rng.choice(layer1)
                collection = db.new_set("SET_T1", [target])
                db.set_attr(owner, "A", collection)

    benchmark(churn)
    manager.check_consistency()


def test_supported_backward_query_latency(benchmark):
    generated = ChainGenerator(seed=37).generate(PROFILE)
    manager = ASRManager(generated.db)
    asr = manager.create(
        generated.path, Extension.FULL, Decomposition.binary(generated.path.m)
    )
    evaluator = QueryEvaluator(generated.db, generated.store)
    target = generated.layers[generated.path.n][0]
    query = BackwardQuery(generated.path, 0, generated.path.n, target=target)

    result = benchmark(lambda: evaluator.evaluate_supported(query, asr))
    assert result.cells == evaluator.evaluate_unsupported(query).cells
