"""Figure 6 (section 5.9.1): cost of Q_{0,4}(bw) per extension/decomposition.

Paper's claims: every supported evaluation beats the unsupported scan by
orders of magnitude, and non-decomposed access relations answer the
whole-path query cheaper than binary-decomposed ones (one tree descent
instead of one per partition).
"""

from repro.bench import figures
from repro.bench.render import format_table


def test_fig06_backward_query(benchmark, record):
    data = benchmark(figures.fig06_backward_query)
    record(
        "fig06_backward_query",
        format_table(
            ["design", "page accesses"],
            sorted(data.items()),
            "Figure 6 — Q_{0,4}(bw) cost",
        ),
    )
    for extension in ("can", "full", "left", "right"):
        assert data[f"{extension}/nodec"] <= data[f"{extension}/bi"]
        assert data[f"{extension}/bi"] < data["nosupport"] / 10
