"""Figure 13 (section 6.3.3): ins_1 update cost under varying object sizes.

Paper's claims: canonical and right-complete update costs grow with the
object sizes (their maintenance requires exhaustive data searches whose
page counts scale with the objects); the left-complete extension needs
only a forward search and is marginally affected; full needs no data
search at all.
"""

from repro.bench import figures
from repro.bench.render import format_series


def test_fig13_update_size(benchmark, record):
    sizes, series = benchmark(figures.fig13_update_sizes)
    record(
        "fig13_update_size",
        format_series(
            "size_i",
            sizes,
            series,
            "Figure 13 — ins_1 update cost under varying object size (binary dec)",
        ),
    )
    # Canonical and right grow substantially over the sweep.
    assert series["can"][-1] > 1.5 * series["can"][0]
    assert series["right"][-1] > 1.5 * series["right"][0]
    # Full is flat; left at most marginally affected.
    assert series["full"][-1] == series["full"][0]
    assert series["left"][-1] <= 1.2 * series["left"][0]
    # Ordering: full <= left << can, right at the large end.
    assert series["full"][-1] <= series["left"][-1]
    assert series["left"][-1] < series["can"][-1]
    assert series["left"][-1] < series["right"][-1]
