"""Execution contexts: one object owning accounting, buffering, tracing.

Historically every charged operation in this library threaded a bare
``buffer=None`` parameter from the public API down to the B+ tree nodes.
That worked for single measurements but left three concerns scattered
across ~60 call sites: *which* :class:`~repro.storage.stats.AccessStats`
gets charged, *what buffer policy* governs distinct-page counting (the
paper's Yao-style per-operation buffer, a bounded LRU pool, or no
caching at all), and *how* one measurement is delimited (snapshot /
delta pairs copy-pasted per caller).

:class:`ExecutionContext` consolidates all three:

* it owns the :class:`~repro.storage.stats.AccessStats` counters;
* it instantiates buffer scopes according to a declared policy
  (``unbounded`` — the analytical model's assumption, ``bounded`` — a
  finite LRU pool persisting across operations, ``null`` — every touch
  charged);
* it records **operation spans**: named, optionally nested measurement
  intervals with their page-access deltas, exportable as a dict / JSON
  (the CLI's ``--trace`` flag writes exactly this).

Every storage / ASR / query entry point now accepts either an
``ExecutionContext`` or (deprecated, but fully supported) a raw buffer
scope through the same parameter; :func:`resolve_buffer` performs the
normalization once at the API boundary.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ExitHookError
from repro.storage.stats import (
    AccessStats,
    BoundedBufferScope,
    BufferScope,
    NullBuffer,
    resolve_buffer,
)

__all__ = ["ExecutionContext", "Span", "resolve_buffer", "POLICIES"]

#: Recognized buffer policies (see :class:`ExecutionContext`).
POLICIES = ("unbounded", "bounded", "null")


@dataclass
class Span:
    """One traced operation: a named interval with its access delta."""

    name: str
    index: int
    depth: int
    page_reads: int = 0
    page_writes: int = 0
    by_category: dict[str, int] = field(default_factory=dict)

    @property
    def total_pages(self) -> int:
        return self.page_reads + self.page_writes

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "depth": self.depth,
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "total_pages": self.total_pages,
            "by_category": dict(self.by_category),
        }


class ExecutionContext:
    """Owns accounting, buffer policy, and tracing for one execution.

    Parameters
    ----------
    policy:
        ``"unbounded"`` (default): each operation gets a fresh
        :class:`BufferScope` — the per-operation distinct-page counting
        the analytical model assumes (section 5.6).
        ``"bounded"``: one :class:`BoundedBufferScope` of ``capacity``
        pages shared by *all* operations of the context — a real,
        finite buffer pool whose residency survives operation
        boundaries.
        ``"null"``: a :class:`NullBuffer` — every touch is charged.
    capacity:
        LRU capacity in pages; required for (and only meaningful under)
        the ``bounded`` policy.
    stats:
        An existing :class:`AccessStats` to charge; a fresh one by
        default.
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector`.  Every buffer
        scope the context creates consults it on charged page accesses,
        and subsystems holding the context (the ASR manager's flush and
        recovery pipeline) consult its named crash points — so one
        policy object makes a whole execution's failures reproducible.
    shared_buffer:
        Optional externally owned buffer scope (typically a
        :class:`~repro.storage.stats.WorkerScope` over a
        :class:`~repro.storage.stats.SharedBufferPool`) used as *the*
        scope for every operation of this context — the per-connection
        idiom of :class:`~repro.concurrency.ContextPool`, where many
        contexts share one bounded pool.  Only meaningful under the
        ``bounded`` policy; ``capacity`` then describes the shared
        pool and may be omitted.
    metrics:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`.
        When attached, every completed span publishes its page delta
        into the ``span.pages`` histogram (labelled by operation name),
        :meth:`count` mirrors operation counters into the ``ops``
        counter family, and dropped spans bump ``spans.dropped`` — the
        registry is how many contexts' traces aggregate into one
        observable surface.
    max_spans:
        Optional bound on the retained span trace.  ``None`` (the
        default) keeps every span, as tests and one-shot measurements
        expect.  Long-lived servers set a bound: :attr:`spans` becomes a
        ring buffer of the most recent ``max_spans`` spans and
        :attr:`spans_dropped` counts the evicted ones (also surfaced in
        :meth:`to_dict` and the metrics registry), so a context serving
        millions of operations holds bounded memory.

    Use as a context manager to get an explicit lifetime boundary::

        with ExecutionContext() as ctx:
            evaluator = QueryEvaluator(db, store, context=ctx)
            ...
        print(ctx.to_json())

    Exit hooks (:meth:`add_exit_hook`) run at that boundary — the
    :class:`~repro.asr.manager.ASRManager` uses this to flush batched
    maintenance when its context closes.
    """

    def __init__(
        self,
        policy: str = "unbounded",
        capacity: int | None = None,
        stats: AccessStats | None = None,
        fault_injector=None,
        shared_buffer=None,
        metrics=None,
        max_spans: int | None = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown buffer policy {policy!r}; known: {POLICIES}")
        if shared_buffer is not None:
            if policy != "bounded":
                raise ValueError("a shared buffer implies the 'bounded' policy")
            if capacity is None:
                capacity = getattr(shared_buffer, "capacity", None)
        elif policy == "bounded" and (capacity is None or capacity < 1):
            raise ValueError("bounded policy requires a positive page capacity")
        if policy != "bounded" and capacity is not None:
            raise ValueError(f"capacity is only meaningful under 'bounded', not {policy!r}")
        if max_spans is not None and max_spans < 1:
            raise ValueError("max_spans must be a positive span count")
        self.policy = policy
        self.capacity = capacity
        self.stats = stats if stats is not None else AccessStats()
        self.fault_injector = fault_injector
        self.metrics = metrics
        self.max_spans = max_spans
        #: Completed operation spans, in completion order.  A plain list
        #: when unbounded; a ring of the newest ``max_spans`` otherwise.
        self.spans: list[Span] | deque[Span] = (
            [] if max_spans is None else deque(maxlen=max_spans)
        )
        #: Spans evicted from a full ring buffer (0 when unbounded).
        self.spans_dropped = 0
        #: ``operation name -> times entered`` counters.
        self.op_counts: dict[str, int] = {}
        #: Metric snapshots interleaved with the trace (``--trace``).
        self.metric_snapshots: list[dict] = []
        self._span_stack: list[Span] = []
        self._buffer_stack: list[BufferScope | NullBuffer] = []
        self._ambient: BufferScope | NullBuffer | None = shared_buffer
        self._exit_hooks: list[Callable[[], None]] = []
        self._next_index = 0
        self._closed = False

    # ------------------------------------------------------------------
    # buffer management
    # ------------------------------------------------------------------

    def new_scope(self) -> BufferScope | NullBuffer:
        """A fresh buffer scope under this context's policy."""
        if self.policy == "bounded":
            # The bounded pool is a *shared* resource: residency must
            # survive operation boundaries, so there is only one.
            return self._ambient_scope()
        if self.policy == "null":
            return NullBuffer(self.stats, self.fault_injector)
        return BufferScope(self.stats, self.fault_injector)

    def _ambient_scope(self) -> BufferScope | NullBuffer:
        if self._ambient is None:
            if self.policy == "bounded":
                assert self.capacity is not None
                self._ambient = BoundedBufferScope(
                    self.stats, self.capacity, self.fault_injector
                )
            elif self.policy == "null":
                self._ambient = NullBuffer(self.stats, self.fault_injector)
            else:
                self._ambient = BufferScope(self.stats, self.fault_injector)
        return self._ambient

    @property
    def current_buffer(self) -> BufferScope | NullBuffer:
        """The buffer accesses are charged to right now.

        Inside an :meth:`operation` span this is the span's scope;
        outside, a context-lifetime ambient scope (created lazily) so
        that charging through a bare context is always well defined.
        """
        if self._buffer_stack:
            return self._buffer_stack[-1]
        return self._ambient_scope()

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------

    @contextmanager
    def operation(self, name: str) -> Iterator[BufferScope | NullBuffer]:
        """Delimit one traced operation; yields its buffer scope.

        The span's page-access delta is recorded on exit.  Operations
        nest: a child span's accesses are also part of its parent's
        delta (the deltas are measured on the shared stats).
        """
        span = Span(name, self._next_index, depth=len(self._span_stack))
        self._next_index += 1
        self.count(name)
        before = self.stats.snapshot()
        buffer = self.new_scope()
        self._span_stack.append(span)
        self._buffer_stack.append(buffer)
        try:
            yield buffer
        finally:
            self._buffer_stack.pop()
            self._span_stack.pop()
            delta = self.stats.delta_since(before)
            span.page_reads = delta.page_reads
            span.page_writes = delta.page_writes
            span.by_category = dict(delta.by_category)
            if self.max_spans is not None and len(self.spans) == self.max_spans:
                self.spans_dropped += 1
                if self.metrics is not None:
                    self.metrics.inc("spans.dropped")
            self.spans.append(span)
            if self.metrics is not None:
                self.metrics.observe("span.pages", span.total_pages, op=name)

    def count(self, name: str, n: int = 1) -> None:
        """Bump the ``name`` operation counter by ``n``.

        The single entry point for event counting: updates the local
        :attr:`op_counts` dict and mirrors into the attached metrics
        registry's ``ops`` counter family (labelled by operation name),
        so per-context counts and fleet-wide aggregates stay one call.
        """
        self.op_counts[name] = self.op_counts.get(name, 0) + n
        if self.metrics is not None:
            self.metrics.inc("ops", n, op=name)

    def snapshot_metrics(self, label: str | None = None) -> dict | None:
        """Interleave a registry snapshot with the span trace.

        Appends (and returns) an entry recording the attached registry's
        full state *and* the trace position (``at_span`` — the index the
        next span will get), so an exported trace shows how metrics
        evolved between phases.  No-op returning ``None`` without a
        registry.
        """
        if self.metrics is None:
            return None
        entry = {
            "at_span": self._next_index,
            "label": label,
            "metrics": self.metrics.snapshot(),
        }
        self.metric_snapshots.append(entry)
        return entry

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------

    def add_exit_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` when the context closes (LIFO order)."""
        self._exit_hooks.append(hook)

    def close(self) -> None:
        """Run every exit hook (LIFO); further closes are no-ops.

        A hook that raises does not prevent the remaining hooks from
        running — a failing trace exporter must not drop another
        manager's pending flush.  A single failure is re-raised as
        itself once all hooks ran; several are aggregated into an
        :class:`~repro.errors.ExitHookError`.
        """
        if self._closed:
            return
        self._closed = True
        errors: list[BaseException] = []
        while self._exit_hooks:
            hook = self._exit_hooks.pop()
            try:
                hook()
            except BaseException as error:
                errors.append(error)
        if len(errors) == 1:
            raise errors[0]
        if errors:
            aggregate = ExitHookError(errors)
            aggregate.__cause__ = errors[0]
            raise aggregate

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        return None

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The full trace: policy, headline counters, and all spans."""
        out = {
            "policy": self.policy,
            "capacity": self.capacity,
            "page_reads": self.stats.page_reads,
            "page_writes": self.stats.page_writes,
            "total_pages": self.stats.total,
            "by_category": dict(self.stats.by_category),
            "op_counts": dict(self.op_counts),
            "spans": [span.as_dict() for span in self.spans],
            "max_spans": self.max_spans,
            "spans_dropped": self.spans_dropped,
        }
        if self.metric_snapshots:
            out["metric_snapshots"] = list(self.metric_snapshots)
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(policy={self.policy!r}, "
            f"reads={self.stats.page_reads}, writes={self.stats.page_writes}, "
            f"spans={len(self.spans)})"
        )


# The API-boundary normalization shim lives in repro.storage.stats (so the
# storage layer can use it without importing upward); re-exported here as
# the canonical import site for higher layers.
