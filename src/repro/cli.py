"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures [--only figNN]``
    Regenerate the paper's evaluation figures as text tables.

``advise --profile profile.json [--pup P] [--top N] [--budget-kib K]``
    Rank physical designs for a profile and operation mix.  The JSON
    file holds the Figure 3 parameters and (optionally) the mix::

        {
          "c": [1000, 5000, 10000, 50000, 100000],
          "d": [900, 4000, 8000, 20000],
          "fan": [2, 2, 3, 4],
          "size": [500, 400, 300, 300, 100],
          "queries": [[0.5, 0, 4, "bw"], [0.5, 0, 3, "bw"]],
          "updates": [[1.0, 3]]
        }

``validate [--seed S] [--scale X] [--trace trace.json]``
    Generate a chain object base, run queries on the page-counting
    simulator, and print measured vs model page counts.  With
    ``--trace`` the whole run executes under one
    :class:`~repro.context.ExecutionContext` with a metrics registry
    attached, and its trace (per-span page accesses, operation
    counters, metric snapshots interleaved at phase boundaries) is
    written as JSON.

``demo``
    The robot quickstart (paper Query 1) end to end.

``export-demo --out db.json``
    Write the paper's Company world (Figure 2), with a full-extension
    ASR configuration, to a JSON database file.

``profile --db db.json --path "Division.Manufactures.Composition.Name"``
    Load a saved database and print the measured Figure 3 parameters of
    a path over it.

``bench serve [--clients N] [--ops K] [--seed S] [--io-micros U]
[--io-dist D] [--async] [--max-inflight M] [--capacity C]
[--profile fig14|fig16|queries] [--query-fraction F]
[--query-cache-size Z] [--out BENCH_serve.json]``
    Serve a seeded operation mix over one shared bounded buffer pool
    and one ASR-managed chain database; report throughput, speedup over
    a single client, and per-operation p50/p95/p99 latency
    (:mod:`repro.bench.serve`).  Threaded by default (``N`` blocking
    client threads); with ``--async`` the same stream runs on an
    asyncio event loop — up to ``--max-inflight`` concurrent operations
    awaiting their simulated device charges
    (:mod:`repro.device`, distribution picked by ``--io-dist``) while
    CPU-bound plan evaluation is offloaded to ``N`` executor threads —
    and the report adds the async-vs-threaded speedup.  The ``queries``
    profile replays *textual* selects through the query-service
    pipeline (parse → validate → plan → execute, compiled plans cached
    by epoch) instead of pre-bound query objects.  The report embeds
    the run's metrics snapshot and cost-model drift report, which
    ``repro stats`` renders.

``bench chaos [--chaos-rate R] [--chaos-burst B]
[--chaos-crash-points P1,P2:crash] [--async] [--op-deadline-ms D]
[--soak-ops K] [--min-recoveries R] [--out BENCH_chaos.json]``
    The SLO-gated chaos soak (:mod:`repro.bench.chaos`): one daemon
    serves the seeded stream while a :class:`ChaosController` arms
    fault points from the live op stream and the background
    :class:`HealerLoop` races it.  Four phases — storm (until
    ``--soak-ops`` served *and* ``--min-recoveries`` heals), settle
    (chaos off, quarantine drains), healthz probe over real HTTP,
    graceful drain.  ``BENCH_chaos.json`` records p50/p95/p99 latency,
    strike/fault/recovery counts, MTTR, breaker transitions, and the
    end state; exit 0 iff the end state is consistent, accounting
    holds, and ``/healthz`` answered 200.

``bench advisor [--advisor-interval SEC] [--advisor-threshold G]
[--advisor-min-ops N] [--phase-seconds SEC] [--out BENCH_advisor.json]``
    The SLO-gated self-tuning soak (:mod:`repro.bench.advisor`): one
    daemon serves a query-heavy stream while the background
    :class:`AdvisorLoop` re-costs the chain ASR's design against the
    measured mix; mid-run the stream shifts update-heavy.  Gates — the
    loop converges to the cost-model-preferred design in each phase
    within two decisive sweeps, an injected build failure rolls back
    without losing the ASR or bumping the epoch, each applied retune
    bumps the epoch exactly once and the first post-retune ``POST
    /query`` recompiles (no stale-epoch cache hit), ``/healthz`` stays
    200 throughout, and the end state is consistent.  Exit 0 iff all
    gates hold.

``serve [--port P] [--clients N] [--async] [--max-inflight M]
[--io-dist D] [--profile fig14|fig16|queries] [--ops K]
[--query-fraction F] [--query-cache-size Z] [--drift-interval SEC]
[--chaos-rate R] [--op-deadline-ms D] [--shed-backoff-ms B]
[--healer-interval SEC] [--no-healer]
[--advisor-interval SEC] [--advisor-threshold G] [--advisor-dry-run]
[--trace-sample-rate R] [--slow-trace-ms MS] [--trace-capacity N]
[--out BENCH_serve_daemon.json] [--addr-file F]``
    Run the long-lived serving daemon (:mod:`repro.server`): the seeded
    operation stream replays in a loop — on client threads, or with
    ``--async`` on an event loop behind a bounded admission queue that
    sheds (counting ``admission.rejected``) instead of queueing
    unboundedly — while an HTTP endpoint serves ``GET /metrics`` (live
    Prometheus exposition), ``GET /healthz`` (accounting invariant +
    quarantine state + hit-rate sanity as JSON; non-200 on violation),
    ``GET /stats`` (the ``repro stats`` JSON payload), and
    ``POST /query`` (a JSON ``{"query": "select …"}`` body executed
    through the query service — parsed, schema-validated, cost-planned
    and run over the shared pool, with compiled plans cached per
    ``(text, epoch)`` up to ``--query-cache-size`` entries; parse and
    validation errors come back as structured HTTP 400 bodies).  Drift
    ratios are re-published every ``--drift-interval`` seconds.
    ``--port 0`` binds an ephemeral port (written to ``--addr-file``);
    SIGINT/SIGTERM drain gracefully and write a final report to
    ``--out``.  A background healer retries quarantined ASRs with
    exponential backoff (``--no-healer`` disables it); ``--chaos-rate``
    arms seeded fault injection against the live stream; in the async
    core ``--op-deadline-ms`` sheds queue entries whose deadline passed
    before execution and ``--shed-backoff-ms`` paces the admission pump
    after a full-queue shed.  Per-ASR circuit breakers open after
    repeated faults and route queries to the degraded GOM traversal
    until a half-open probe heals them (:mod:`repro.resilience`).
    With ``--advisor-interval`` > 0 a background :class:`AdvisorLoop`
    re-costs the chain ASR's (extension, decomposition) against the
    live measured op mix every sweep and — past the hysteresis
    ``--advisor-threshold``, an evidence floor and a cooldown —
    re-materializes it online (one atomic swap, one epoch bump, the
    compiled-plan cache invalidates itself); ``GET /advisor`` exposes
    the loop's verdict history and ``--advisor-dry-run`` decides
    without acting.

``stats [--in BENCH_serve.json] [--json] [--prometheus]``
    Render the telemetry embedded in a serve report: the accounting
    invariant, the cost-model drift table (observed vs predicted page
    accesses per plan shape), and the metrics snapshot (counters,
    gauges, histograms).  ``--json`` emits the raw structures;
    ``--prometheus`` re-renders the snapshot in the Prometheus text
    exposition format.

``doctor [--db db.json] [--repair]``
    Verify the crash-consistency state of every ASR and, with
    ``--repair``, recover quarantined ones in place
    (:meth:`~repro.asr.manager.ASRManager.verify`).  Without ``--db`` a
    built-in demonstration injects a crash mid-flush first, so the
    command always has something to diagnose.  Exit code 0 means every
    ASR is consistent.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.asr import ASRManager, Decomposition, Extension
from repro.context import ExecutionContext
from repro.costmodel import (
    ApplicationProfile,
    DesignAdvisor,
    OperationMix,
    QueryCostModel,
    QuerySpec,
    UpdateSpec,
)
from repro.errors import ReproError
from repro.query import BackwardQuery, QueryEvaluator
from repro.workload import ChainGenerator, FIG14_MIX, measure_profile


def _io_dist_spec(spec: str) -> str:
    """Argparse type for ``--io-dist``: validate early, keep the string."""
    from repro.device import parse_io_dist

    try:
        parse_io_dist(spec, io_micros=150.0)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return spec


def _chaos_points_spec(spec: str) -> str:
    """Argparse type for ``--chaos-crash-points``: validate, keep the string."""
    from repro.resilience.chaos import parse_chaos_points

    try:
        parse_chaos_points(spec)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return spec


def _add_resilience_options(parser) -> None:
    """The resilience knobs ``bench chaos`` and ``serve`` share."""
    parser.add_argument(
        "--chaos-rate",
        type=float,
        default=0.0,
        help="per-operation probability of arming a chaos fault point "
        "(0 disables chaos; strikes are seeded and replayable)",
    )
    parser.add_argument(
        "--chaos-burst",
        type=int,
        default=0,
        help="strikes per burst storm (a strike may expand into this "
        "many consecutive strikes; 0 disables storms)",
    )
    parser.add_argument(
        "--chaos-crash-points",
        type=_chaos_points_spec,
        default="asr.apply.mid-delta,asr.recover.replay",
        help="comma-separated fault points to strike; append ':crash' "
        "for a non-retryable SimulatedCrash instead of a transient fault",
    )
    parser.add_argument(
        "--op-deadline-ms",
        type=float,
        default=None,
        help="async core: shed queue entries older than this at dequeue "
        "time, unexecuted (counted in deadline.shed, separately from "
        "admission rejects)",
    )
    parser.add_argument(
        "--shed-backoff-ms",
        type=float,
        default=1.0,
        help="async core: admission-pump backoff after shedding into a "
        "full queue (jittered +-50%% from the run's seed)",
    )
    parser.add_argument(
        "--healer-interval",
        type=float,
        default=0.25,
        help="seconds between background healer sweeps of the "
        "quarantine set",
    )
    parser.add_argument(
        "--no-healer",
        dest="healer",
        action="store_false",
        help="disable the background healer (quarantined ASRs then wait "
        "for 'repro doctor --repair')",
    )


def _add_advisor_options(parser) -> None:
    """The self-tuning knobs ``bench advisor`` and ``serve`` share."""
    parser.add_argument(
        "--advisor-interval",
        type=float,
        default=0.0,
        help="seconds between background advisor sweeps re-costing the "
        "chain ASR's (extension, decomposition) against the measured op "
        "mix (0 disables the advisor; bench advisor defaults to 0.25)",
    )
    parser.add_argument(
        "--advisor-threshold",
        type=float,
        default=None,
        help="hysteresis: predicted gain (current cost / best cost) a "
        "retune must clear before the ASR is re-materialized "
        "(serve default: 1.2; bench advisor default: 1.05 — its "
        "update-heavy phase's materialized winner is a close call)",
    )
    parser.add_argument(
        "--advisor-min-ops",
        type=int,
        default=32,
        help="evidence floor: recorded operations a sweep needs before "
        "the measured mix is trusted",
    )
    parser.add_argument(
        "--advisor-dry-run",
        action="store_true",
        help="decide but never touch the physical design (what *would* "
        "have been retuned shows up in GET /advisor)",
    )
    parser.add_argument(
        "--advisor-drift-calibration",
        action="store_true",
        help="scale the current design's cost by the drift monitor's "
        "observed/predicted ratio before the hysteresis gate (off by "
        "default: a cached pool under-runs the model for every design, "
        "so one-sided calibration suppresses earned retunes)",
    )


def _add_serve_workload_options(parser, *, ops_help: str, out_help: str) -> None:
    """The workload/device options ``bench serve`` and ``serve`` share.

    One definition for both subcommands, so a new knob (``--io-dist``,
    ``--async``, ``--max-inflight``, …) cannot drift between them.
    """
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="client threads (async mode: CPU executor threads)",
    )
    parser.add_argument("--ops", type=int, default=200, help=ops_help)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--capacity", type=int, default=256, help="shared buffer pool pages"
    )
    parser.add_argument(
        "--io-micros",
        type=float,
        default=150.0,
        help="simulated device latency per charged page, microseconds "
        "(the median for jittered distributions)",
    )
    parser.add_argument(
        "--io-dist",
        type=_io_dist_spec,
        default="fixed",
        help="device latency distribution: fixed (default), "
        "lognormal[:SIGMA], or a device class (nvme, ssd, disk)",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve on an asyncio event loop (awaitable device charges, "
        "CPU work offloaded to a bounded executor) instead of one "
        "blocking thread per client",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=1024,
        help="async mode: bound on concurrent in-flight operations "
        "(the admission limit; the daemon sheds beyond it)",
    )
    parser.add_argument(
        "--profile",
        choices=["fig14", "fig16", "queries"],
        default="fig14",
        help="application shape to serve (Figure 14 mix, Figure 16 mix, "
        "or textual selects through the query service)",
    )
    parser.add_argument(
        "--query-fraction",
        type=float,
        default=0.8,
        help="fraction of the stream that is queries (the rest are "
        "FIG14-style updates); 1.0 keeps the object graph quiescent",
    )
    parser.add_argument(
        "--query-cache-size",
        type=int,
        default=128,
        help="compiled-plan cache capacity for POST /query "
        "(0 disables caching)",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="fraction of requests whose traces are retained head-on "
        "(seeded; 0 disables tracing unless --slow-trace-ms is set)",
    )
    parser.add_argument(
        "--slow-trace-ms",
        type=float,
        default=None,
        help="tail capture: always retain traces slower than this many "
        "milliseconds (and all shed/degraded/breaker-open outcomes)",
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=512,
        help="ring-buffer capacity of the retained-trace store",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_serve.json"), help=out_help
    )


def _serve_config_from(args) -> "object":
    """The :class:`~repro.bench.serve.ServeConfig` an argparse bundle names."""
    from repro.bench.serve import ServeConfig

    return ServeConfig(
        clients=args.clients,
        ops=args.ops,
        seed=args.seed,
        capacity=args.capacity,
        io_micros=args.io_micros,
        io_dist=args.io_dist,
        profile=args.profile,
        query_fraction=args.query_fraction,
        use_async=args.use_async,
        max_inflight=args.max_inflight,
        query_cache_size=args.query_cache_size,
        max_spans=getattr(args, "max_spans", None),
        op_deadline_ms=getattr(args, "op_deadline_ms", None),
        shed_backoff_ms=getattr(args, "shed_backoff_ms", 1.0),
        trace_sample_rate=args.trace_sample_rate,
        slow_trace_ms=args.slow_trace_ms,
        trace_capacity=args.trace_capacity,
    )


def _chaos_config_from(args) -> "object | None":
    """The :class:`~repro.resilience.ChaosConfig` an argparse bundle names."""
    from repro.resilience import ChaosConfig
    from repro.resilience.chaos import parse_chaos_points

    if args.chaos_rate <= 0.0:
        return None
    return ChaosConfig(
        rate=args.chaos_rate,
        burst=args.chaos_burst,
        points=parse_chaos_points(args.chaos_crash_points),
        seed=args.seed,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Access support relations for object bases "
        "(Kemper & Moerkotte, SIGMOD 1990) — reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    figures = commands.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "--only",
        metavar="figNN",
        help="one figure id, e.g. fig04, fig14 (default: all)",
    )

    advise = commands.add_parser("advise", help="rank physical designs")
    advise.add_argument("--profile", required=True, type=Path, help="JSON profile")
    advise.add_argument("--pup", type=float, default=0.2, help="update probability")
    advise.add_argument("--top", type=int, default=10, help="designs to print")
    advise.add_argument(
        "--budget-kib", type=float, default=None, help="storage budget in KiB"
    )

    validate = commands.add_parser(
        "validate", help="measured (simulator) vs model page counts"
    )
    validate.add_argument("--seed", type=int, default=7)
    validate.add_argument(
        "--scale", type=float, default=1.0, help="multiplier on the base world size"
    )
    validate.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="write the ExecutionContext trace (spans, counters) as JSON",
    )

    commands.add_parser("demo", help="run the robot quickstart")

    export_demo = commands.add_parser(
        "export-demo", help="write the Company demo world to a JSON file"
    )
    export_demo.add_argument("--out", required=True, type=Path)

    measure = commands.add_parser(
        "profile", help="measured Figure 3 parameters of a path over a saved db"
    )
    measure.add_argument("--db", required=True, type=Path, help="JSON database")
    measure.add_argument(
        "--path", required=True, help='path expression, e.g. "Division.Manufactures.Composition.Name"'
    )

    bench = commands.add_parser(
        "bench", help="runtime benchmarks (beyond the paper's page counts)"
    )
    bench.add_argument(
        "action", choices=["serve", "chaos", "advisor"], help="which benchmark"
    )
    _add_serve_workload_options(
        bench,
        ops_help="operations to replay (chaos: per client-loop pass)",
        out_help="where to write the JSON report "
        "(chaos default: BENCH_chaos.json; advisor: BENCH_advisor.json)",
    )
    _add_resilience_options(bench)
    _add_advisor_options(bench)
    bench.add_argument(
        "--phase-seconds",
        type=float,
        default=20.0,
        help="bench advisor: wall-clock cap on each convergence phase",
    )
    bench.add_argument(
        "--soak-ops",
        type=int,
        default=400,
        help="bench chaos: operations the storm phase must serve",
    )
    bench.add_argument(
        "--min-recoveries",
        type=int,
        default=1,
        help="bench chaos: healer recoveries the storm phase waits for",
    )
    bench.add_argument(
        "--soak-seconds",
        type=float,
        default=60.0,
        help="bench chaos: wall-clock cap on the storm phase",
    )
    bench.add_argument(
        "--settle-seconds",
        type=float,
        default=10.0,
        help="bench chaos: wall-clock cap on the settle (heal) phase",
    )

    serve = commands.add_parser(
        "serve", help="long-lived serving daemon with an HTTP metrics endpoint"
    )
    serve.add_argument(
        "--port", type=int, default=8000, help="HTTP port (0 binds an ephemeral one)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    _add_serve_workload_options(
        serve,
        ops_help="length of the seeded stream replayed in a loop",
        out_help="where the final drain report is written",
    )
    serve.add_argument(
        "--drift-interval",
        type=float,
        default=5.0,
        help="seconds between drift/accounting re-publications",
    )
    serve.add_argument(
        "--max-spans",
        type=int,
        default=256,
        help="per-context span-ring bound (long-lived workers stay bounded)",
    )
    serve.add_argument(
        "--addr-file",
        type=Path,
        default=None,
        help="write the bound host:port here once listening",
    )
    _add_resilience_options(serve)
    _add_advisor_options(serve)

    stats = commands.add_parser(
        "stats", help="render the telemetry embedded in a serve report"
    )
    stats.add_argument(
        "--in",
        dest="input",
        type=Path,
        default=Path("BENCH_serve.json"),
        help="serve report to read (default: BENCH_serve.json)",
    )
    stats.add_argument(
        "--json", action="store_true", help="emit the raw JSON structures"
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="emit the metrics snapshot in Prometheus text format",
    )

    doctor = commands.add_parser(
        "doctor", help="verify (and repair) ASR crash-consistency state"
    )
    doctor.add_argument(
        "--db",
        type=Path,
        default=None,
        help="JSON database with ASR configurations "
        "(default: a built-in crash-injection demonstration)",
    )
    doctor.add_argument(
        "--repair", action="store_true", help="recover quarantined ASRs in place"
    )
    return parser


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------


def _cmd_figures(args, out) -> int:
    from repro.bench import figures as figure_module
    from repro.bench.render import format_series, format_table

    sections: list[tuple[str, callable]] = [
        ("fig04", lambda: format_table(
            ["design", "KiB"], sorted(figure_module.fig04_sizes().items()),
            "Figure 4 — access support relation sizes (KiB)")),
        ("fig05", lambda: format_series(
            "d_i", *figure_module.fig05_varying_d(),
            title="Figure 5 — sizes under varying d_i (KiB)")),
        ("fig06", lambda: format_table(
            ["design", "pages"], sorted(figure_module.fig06_backward_query().items()),
            "Figure 6 — Q_{0,4}(bw) cost")),
        ("fig07", lambda: format_series(
            "size_i", *figure_module.fig07_object_size(),
            title="Figure 7 — Q_{0,4}(bw) vs object size")),
        ("fig08", lambda: format_series(
            "d_i", *figure_module.fig08_partial_query(),
            title="Figure 8 — Q_{0,3}(bw) support")),
        ("fig09", lambda: format_series(
            "fan_i", *figure_module.fig09_fanout(),
            title="Figure 9 — Q_{0,4}(bw) vs fan-out")),
        ("fig11", lambda: format_table(
            ["design", "pages"], sorted(figure_module.fig11_update_costs().items()),
            "Figure 11 — ins_3 update cost")),
        ("fig12", lambda: format_table(
            ["design", "pages"], sorted(figure_module.fig12_update_costs().items()),
            "Figure 12 — ins_3 update cost (fan 2,1,1,4)")),
        ("fig13", lambda: format_series(
            "size_i", *figure_module.fig13_update_sizes(),
            title="Figure 13 — ins_1 update cost vs object size")),
        ("fig14", lambda: format_series(
            "P_up", *figure_module.fig14_opmix(),
            title="Figure 14 — normalized mix cost (binary dec)")),
        ("fig15", lambda: format_series(
            "P_up", *figure_module.fig15_opmix(),
            title="Figure 15 — normalized mix cost (dec (0,3,4))")),
        ("fig16", lambda: format_series(
            "P_up", *figure_module.fig16_left_vs_full(),
            title="Figure 16 — left vs full (n=5)")),
        ("fig17", lambda: format_series(
            "P_up", *figure_module.fig17_right_vs_full(),
            title="Figure 17 — right vs full (n=5)")),
    ]
    wanted = dict(sections)
    if args.only:
        if args.only not in wanted:
            print(f"unknown figure {args.only!r}; known: {sorted(wanted)}", file=out)
            return 2
        sections = [(args.only, wanted[args.only])]
    for index, (_name, render) in enumerate(sections):
        if index:
            print("", file=out)
        print(render(), file=out)
    return 0


def _load_profile(path: Path) -> tuple[ApplicationProfile, OperationMix]:
    data = json.loads(path.read_text())
    profile = ApplicationProfile(
        c=tuple(data["c"]),
        d=tuple(data["d"]),
        fan=tuple(data["fan"]),
        size=tuple(data.get("size", ())),
        shar=tuple(data.get("shar", ())),
    )
    if "queries" in data or "updates" in data:
        queries = tuple(
            (float(w), QuerySpec(int(i), int(j), str(kind)))
            for w, i, j, kind in data.get("queries", ())
        )
        updates = tuple(
            (float(w), UpdateSpec(int(i))) for w, i in data.get("updates", ())
        )
        mix = OperationMix(queries=queries, updates=updates)
    else:
        mix = FIG14_MIX
    return profile, mix


def _cmd_advise(args, out) -> int:
    profile, mix = _load_profile(args.profile)
    advisor = DesignAdvisor(profile)
    budget = args.budget_kib * 1024 if args.budget_kib is not None else None
    choices = advisor.enumerate(mix, args.pup, max_storage_bytes=budget)
    print(f"mix: {mix}", file=out)
    print(f"P_up = {args.pup:g}; {len(choices)} feasible designs", file=out)
    for rank, choice in enumerate(choices[: args.top], start=1):
        print(f"{rank:3d}. {choice.describe()}", file=out)
    return 0


def _cmd_validate(args, out) -> int:
    base = ApplicationProfile(
        c=(50, 100, 200, 400),
        d=(45, 85, 170),
        fan=(2, 2, 2),
        size=(500, 400, 300, 100),
    )
    scaled = ApplicationProfile(
        c=tuple(max(2, int(value * args.scale)) for value in base.c),
        d=tuple(int(value * args.scale) for value in base.d),
        fan=base.fan,
        size=base.size,
    )
    generated = ChainGenerator(seed=args.seed).generate(scaled)
    measured = measure_profile(generated)
    if args.trace is not None:
        from repro.telemetry import MetricsRegistry

        # Trace runs carry a registry so the exported trace interleaves
        # metric snapshots with the span timeline.
        context = ExecutionContext(metrics=MetricsRegistry())
    else:
        context = None
    manager = ASRManager(generated.db, context=context)
    asr = manager.create(
        generated.path, Extension.FULL, Decomposition.binary(generated.path.m)
    )
    if context is not None:
        context.snapshot_metrics("after-build")
    evaluator = QueryEvaluator(generated.db, generated.store, context=context)
    model = QueryCostModel(measured)
    target = generated.layers[measured.n][0]
    query = BackwardQuery(generated.path, 0, measured.n, target=target)
    unsupported = evaluator.evaluate_unsupported(query)
    if context is not None:
        context.snapshot_metrics("after-unsupported")
    supported = evaluator.evaluate_supported(query, asr)
    if context is not None:
        context.snapshot_metrics("after-supported")
    print(
        f"world: c={tuple(int(x) for x in measured.c)} "
        f"(seed {args.seed}, scale {args.scale:g})",
        file=out,
    )
    print(
        f"Q_0,{measured.n}(bw): measured unsupported {unsupported.page_reads} "
        f"pages vs model {model.qnas(0, measured.n, 'bw'):.0f}",
        file=out,
    )
    print(
        f"Q_0,{measured.n}(bw): measured supported  {supported.page_reads} "
        f"pages vs model "
        f"{model.q(Extension.FULL, 0, measured.n, 'bw', Decomposition.binary(measured.n)):.0f}",
        file=out,
    )
    print(
        "results identical:", supported.cells == unsupported.cells, file=out
    )
    if context is not None:
        context.close()
        args.trace.write_text(context.to_json())
        print(
            f"trace: {len(context.spans)} span(s), "
            f"{len(context.metric_snapshots)} metric snapshot(s), "
            f"{context.stats.page_reads} reads / {context.stats.page_writes} "
            f"writes -> {args.trace}",
            file=out,
        )
    return 0


def _cmd_demo(args, out) -> int:
    from repro.gom import ObjectBase, PathExpression, Schema
    from repro.query import Planner, SelectExecutor

    schema = Schema()
    schema.define_tuple("MANUFACTURER", {"Name": "STRING", "Location": "STRING"})
    schema.define_tuple("TOOL", {"Function": "STRING", "ManufacturedBy": "MANUFACTURER"})
    schema.define_tuple("ARM", {"MountedTool": "TOOL"})
    schema.define_tuple("ROBOT", {"Name": "STRING", "Arm": "ARM"})
    schema.define_set("ROBOT_SET", "ROBOT")
    db = ObjectBase(schema)
    maker = db.new("MANUFACTURER", Name="RobClone", Location="Utopia")
    tools = [
        db.new("TOOL", Function="welding", ManufacturedBy=maker),
        db.new("TOOL", Function="gripping", ManufacturedBy=maker),
    ]
    robots = [
        db.new("ROBOT", Name=name, Arm=db.new("ARM", MountedTool=tool))
        for name, tool in [("R2D2", tools[0]), ("X4D5", tools[1]), ("Robi", tools[1])]
    ]
    db.set_var("OurRobots", db.new_set("ROBOT_SET", robots), "ROBOT_SET")
    path = PathExpression.parse(
        schema, "ROBOT.Arm.MountedTool.ManufacturedBy.Location"
    )
    manager = ASRManager(db)
    asr = manager.create(path, Extension.CANONICAL, Decomposition.binary(path.m))
    print(f"indexed {path} ({asr.tuple_count} complete paths)", file=out)
    executor = SelectExecutor(db, Planner(manager), QueryEvaluator(db))
    report = executor.run(
        'select r.Name from r in OurRobots '
        'where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"'
    )
    print(f"Query 1 -> {sorted(report.rows)}  [{report.strategy}]", file=out)
    print(f"page accesses: {report.describe_pages()}", file=out)
    return 0


def _cmd_export_demo(args, out) -> int:
    from repro.gom import ObjectBase, PathExpression, Schema
    from repro.gom.serialization import save

    schema = Schema()
    schema.define_tuple("BasePart", {"Name": "STRING", "Price": "DECIMAL"})
    schema.define_set("BasePartSET", "BasePart")
    schema.define_tuple("Product", {"Name": "STRING", "Composition": "BasePartSET"})
    schema.define_set("ProdSET", "Product")
    schema.define_tuple("Division", {"Name": "STRING", "Manufactures": "ProdSET"})
    schema.define_set("Company", "Division")
    db = ObjectBase(schema)
    door = db.new("BasePart", Name="Door", Price=1205.50)
    pepper = db.new("BasePart", Name="Pepper", Price=0.12)
    sec = db.new(
        "Product", Name="560 SEC", Composition=db.new_set("BasePartSET", [door])
    )
    trak = db.new("Product", Name="MB Trak")
    sausage = db.new(
        "Product", Name="Sausage", Composition=db.new_set("BasePartSET", [pepper])
    )
    auto = db.new("Division", Name="Auto", Manufactures=db.new_set("ProdSET", [sec]))
    truck = db.new(
        "Division", Name="Truck", Manufactures=db.new_set("ProdSET", [sec, trak])
    )
    space = db.new("Division", Name="Space")
    db.set_var("Mercedes", db.new_set("Company", [auto, truck, space]), "Company")
    path = PathExpression.parse(schema, "Division.Manufactures.Composition.Name")
    manager = ASRManager(db)
    manager.create(path, Extension.FULL, Decomposition.binary(path.m))
    save(db, args.out, asrs=manager.asrs)
    print(
        f"wrote {len(db)} objects and {len(manager.asrs)} ASR configuration(s) "
        f"to {args.out}",
        file=out,
    )
    return 0


def _cmd_profile(args, out) -> int:
    from repro.costmodel import profile_from_database
    from repro.gom import PathExpression
    from repro.gom.serialization import load

    db, asrs = load(args.db)
    path = PathExpression.parse(db.schema, args.path)
    profile = profile_from_database(db, path)
    print(f"measured profile of {path} over {args.db}:", file=out)
    print(f"  c    = {tuple(int(x) for x in profile.c)}", file=out)
    print(f"  d    = {tuple(int(x) for x in profile.d)}", file=out)
    print(f"  fan  = {tuple(round(x, 2) for x in profile.fan)}", file=out)
    print(f"  shar = {tuple(round(x, 2) for x in profile.shar)}", file=out)
    if asrs:
        print(f"  {len(asrs)} ASR configuration(s) restored alongside", file=out)
    return 0


def _doctor_demo_manager(out) -> ASRManager:
    """A tiny world with a freshly crashed flush, for the doctor demo."""
    from repro.errors import SimulatedCrash
    from repro.faults import FaultInjector
    from repro.gom import ObjectBase, PathExpression, Schema

    schema = Schema()
    schema.define_tuple("Part", {"Name": "STRING"})
    schema.define_set("PartSET", "Part")
    schema.define_tuple("Product", {"Name": "STRING", "Composition": "PartSET"})
    db = ObjectBase(schema)
    door = db.new("Part", Name="Door")
    wheel = db.new("Part", Name="Wheel")
    parts = db.new_set("PartSET", [door])
    db.new("Product", Name="560 SEC", Composition=parts)
    path = PathExpression.parse(schema, "Product.Composition.Name")
    injector = FaultInjector(seed=7)
    manager = ASRManager(db, fault_injector=injector)
    manager.create(path, Extension.FULL)
    injector.crash_at("asr.flush.mid-delta")
    print("injecting a crash at 'asr.flush.mid-delta' during an update…", file=out)
    try:
        with manager.batch():
            db.set_insert(parts, wheel)
    except SimulatedCrash as crash:
        print(f"  {crash}", file=out)
    return manager


def _cmd_doctor(args, out) -> int:
    if args.db is not None:
        from repro.gom.serialization import load

        db, asrs = load(args.db)
        manager = ASRManager(db)
        for asr in asrs:
            manager.register(asr)
    else:
        manager = _doctor_demo_manager(out)
    report = manager.verify(repair=args.repair)
    for entry in report["asrs"]:
        line = f"  {entry['path']} [{entry['extension']}]: {entry['state']}"
        if "journal" in entry:
            line += f" ({entry['journal']})"
        if "repair" in entry:
            line += f" -> {entry['repair']}"
        print(line, file=out)
    print(
        f"{len(report['asrs'])} ASR(s): {report['quarantined']} quarantined, "
        f"{report['recovered']} recovered, {report['failed']} repair failure(s)",
        file=out,
    )
    return 0 if report["ok"] else 1


def _redirect_shared_out(out_path: Path, fallback: str) -> Path:
    """Steer the shared ``--out`` default away from the bench-serve baseline.

    ``BENCH_serve.json`` is the committed baseline CI compares against;
    only an explicit non-default ``--out`` (or ``bench serve`` itself,
    which owns that path) may write it.
    """
    if out_path == Path("BENCH_serve.json"):
        return Path(fallback)
    return out_path


def _cmd_bench_chaos(args, out) -> int:
    from repro.bench.chaos import ChaosBenchConfig, run_chaos, write_report
    from repro.resilience import ChaosConfig

    out_path = _redirect_shared_out(args.out, "BENCH_chaos.json")
    # A soak with no chaos is pointless; default to a real storm.
    chaos = _chaos_config_from(args) or ChaosConfig(rate=0.25, seed=args.seed)
    config = ChaosBenchConfig(
        serve=_serve_config_from(args),
        chaos=chaos,
        healer_interval=args.healer_interval,
        soak_ops=args.soak_ops,
        min_recoveries=args.min_recoveries,
        soak_seconds=args.soak_seconds,
        settle_seconds=args.settle_seconds,
        out=str(out_path),
    )
    report = run_chaos(config)
    write_report(report, str(out_path))
    soak = report["soak"]
    chaos_report = report["chaos"] or {}
    healer = report["healer"] or {}
    mttr = healer.get("mttr_ms", {})
    breakers = report["breakers"]
    latency = report["latency_ms"]
    end = report["end_state"]
    healthz = report["healthz"]
    print(
        f"chaos soak ({report['daemon']['core']} core, rate {chaos.rate:g}): "
        f"{soak['ops_served']} ops in {soak['storm_seconds']:.1f}s storm "
        f"({soak['throughput_ops_per_s']:.0f} ops/s)",
        file=out,
    )
    print(
        f"chaos: {chaos_report.get('strikes', 0)} strike(s) "
        f"({chaos_report.get('bursts', 0)} burst(s)), "
        f"{chaos_report.get('faults_injected', 0)} fault(s) and "
        f"{chaos_report.get('crashes_injected', 0)} crash(es) injected, "
        f"{report['chaos_casualties']} client casualt(ies)",
        file=out,
    )
    print(
        f"healer: {healer.get('recoveries', 0)} recover(ies), "
        f"{healer.get('failures', 0)} failed attempt(s), MTTR mean "
        f"{mttr.get('mean_ms', 0.0):.1f}ms max {mttr.get('max_ms', 0.0):.1f}ms",
        file=out,
    )
    print(
        f"breakers: {breakers['total_transitions']} transition(s), "
        f"open at drain: {', '.join(breakers['open']) or 'none'}",
        file=out,
    )
    print(
        f"latency: p50={latency['p50_ms']:.2f}ms p95={latency['p95_ms']:.2f}ms "
        f"p99={latency['p99_ms']:.2f}ms over {latency['count']} sampled op(s); "
        f"hit rate {report['hit_rate'] * 100:.1f}%; "
        f"deadline sheds {report['deadline_shed']}, "
        f"admission rejects {report['admission']['rejected']}",
        file=out,
    )
    end_ok = bool(end["consistent"]) and bool(end["accounting_ok"])
    print(
        f"healthz {healthz['status']}; end state "
        f"{'consistent' if end['consistent'] else 'QUARANTINED: ' + str(end['quarantined'])}; "
        f"accounting {'consistent' if end['accounting_ok'] else 'INCONSISTENT'}",
        file=out,
    )
    print(f"report -> {out_path}", file=out)
    return 0 if end_ok and healthz["status"] == 200 else 1


def _cmd_bench_advisor(args, out) -> int:
    from repro.bench.advisor import AdvisorBenchConfig, run_advisor, write_report

    out_path = _redirect_shared_out(args.out, "BENCH_advisor.json")
    config = AdvisorBenchConfig(
        serve=_serve_config_from(args),
        advisor_interval=(
            args.advisor_interval if args.advisor_interval > 0 else 0.25
        ),
        advisor_threshold=(
            args.advisor_threshold if args.advisor_threshold is not None else 1.05
        ),
        advisor_min_ops=args.advisor_min_ops,
        phase_seconds=args.phase_seconds,
        out=str(out_path),
    )
    report = run_advisor(config)
    write_report(report, str(out_path))
    advisor = report["advisor"]
    for phase in report["phases"]:
        line = (
            f"phase {phase['name']}: "
            f"{'converged' if phase['converged'] else 'DID NOT CONVERGE'} "
            f"in {phase['seconds']:.1f}s"
        )
        if phase.get("design"):
            design = phase["design"]
            line += f" -> {design['extension']} dec={design['decomposition']}"
        if "decisive_sweeps" in phase:
            line += f" ({phase['decisive_sweeps']} decisive sweep(s))"
        print(line, file=out)
    rollback = report["rollback"]
    print(
        f"rollback: build failure "
        f"{'left the old design serving' if rollback['ok'] else 'LOST THE ASR'} "
        f"(asrs {rollback['asrs_before']} -> {rollback['asrs_after']}, "
        f"epoch {rollback['epoch_before']} -> {rollback['epoch_after']})",
        file=out,
    )
    epochs = report["epoch_proof"]
    print(
        f"epoch proof: retune bumped {epochs['before']} -> {epochs['after']}; "
        f"post-retune plan {'recompiled' if epochs['post_retune_miss'] else 'SERVED STALE'} "
        f"at epoch {epochs['post_retune_epoch']}",
        file=out,
    )
    print(
        f"advisor: {advisor['sweeps']} sweep(s), {advisor['retunes']} "
        f"retune(s), rejected {advisor['rejected']}",
        file=out,
    )
    healthz = report["healthz"]
    end = report["end_state"]
    print(
        f"healthz: {healthz['probes']} probe(s), all 200: {healthz['all_ok']}; "
        f"end state {'consistent' if end['consistent'] else 'QUARANTINED'}; "
        f"accounting {'consistent' if end['accounting_ok'] else 'INCONSISTENT'}",
        file=out,
    )
    print(f"report -> {out_path}", file=out)
    return 0 if report["ok"] else 1


def _cmd_bench(args, out) -> int:
    if args.action == "chaos":
        return _cmd_bench_chaos(args, out)
    if args.action == "advisor":
        return _cmd_bench_advisor(args, out)
    if args.chaos_rate > 0.0:
        print(
            "error: chaos injection applies to 'bench chaos' and 'serve', "
            "not 'bench serve'",
            file=out,
        )
        return 2
    if args.advisor_interval > 0.0:
        print(
            "error: the advisor loop applies to 'bench advisor' and 'serve', "
            "not 'bench serve'",
            file=out,
        )
        return 2
    from repro.bench.serve import run_serve, write_report

    config = _serve_config_from(args)
    report = run_serve(config)
    write_report(report, str(args.out))
    serve = report["serve"]
    single = report["single_client"]
    print(
        f"served {args.ops} ops ({args.profile}, {serve['mode']} core) with "
        f"{serve['clients']} client(s): {serve['throughput_ops_per_s']:.0f} ops/s "
        f"(single client {single['throughput_ops_per_s']:.0f} ops/s, "
        f"speedup {serve['speedup_vs_single_client']:.2f}x)",
        file=out,
    )
    if "threaded" in report:
        threaded = report["threaded"]
        print(
            f"async vs threaded at {serve['clients']} client(s): "
            f"{serve['speedup_vs_threaded']:.2f}x "
            f"({threaded['throughput_ops_per_s']:.0f} -> "
            f"{serve['throughput_ops_per_s']:.0f} ops/s, "
            f"peak inflight {serve['peak_inflight']})",
            file=out,
        )
    print(
        f"pool: {report['pool']['hit_rate'] * 100:.1f}% hit rate over "
        f"{report['pool']['capacity']} pages; accounting "
        f"{'consistent' if report['accounting']['ok'] else 'INCONSISTENT'}",
        file=out,
    )
    overall = report["drift"]["overall"]
    print(
        f"cost-model drift: geometric-mean observed/predicted ratio "
        f"{overall['geo_mean_ratio']:g} over {overall['count']} op(s) "
        f"({'finite' if overall['finite'] else 'NOT FINITE'})",
        file=out,
    )
    for name, entry in report["operations"].items():
        print(
            f"  {name:<10} n={entry['count']:<4} p50={entry['p50_ms']:.2f}ms "
            f"p95={entry['p95_ms']:.2f}ms p99={entry['p99_ms']:.2f}ms",
            file=out,
        )
    print(f"report -> {args.out}  (render with: repro stats --in {args.out})", file=out)
    return 0 if report["accounting"]["ok"] else 1


def _cmd_serve(args, out) -> int:
    from repro.server import ServeDaemon, ServerConfig

    out_path = _redirect_shared_out(args.out, "BENCH_serve_daemon.json")
    config = ServerConfig(
        serve=_serve_config_from(args),
        host=args.host,
        port=args.port,
        drift_interval=args.drift_interval,
        out=str(out_path),
        addr_file=str(args.addr_file) if args.addr_file is not None else None,
        healer=args.healer,
        healer_interval=args.healer_interval,
        chaos=_chaos_config_from(args),
        advisor_interval=args.advisor_interval,
        advisor_threshold=(
            args.advisor_threshold if args.advisor_threshold is not None else 1.2
        ),
        advisor_min_ops=args.advisor_min_ops,
        advisor_dry_run=args.advisor_dry_run,
        advisor_drift_calibration=args.advisor_drift_calibration,
    )
    return ServeDaemon(config).run(out=out)


def _cmd_stats(args, out) -> int:
    from repro.telemetry import MetricsRegistry, format_stats

    data = json.loads(args.input.read_text())
    metrics = data.get("metrics")
    drift = data.get("drift")
    accounting = data.get("accounting")
    if metrics is None and drift is None and accounting is None:
        print(
            f"error: {args.input} holds no telemetry "
            "(re-run 'repro bench serve' to produce one)",
            file=out,
        )
        return 1
    if args.prometheus:
        registry = MetricsRegistry.from_snapshot(metrics or {})
        print(registry.render_prometheus(), end="", file=out)
        return 0
    if args.json:
        print(
            json.dumps(
                {"metrics": metrics, "drift": drift, "accounting": accounting},
                indent=2,
            ),
            file=out,
        )
        return 0
    print(format_stats(metrics, drift, accounting), file=out)
    return 0


_COMMANDS = {
    "figures": _cmd_figures,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "advise": _cmd_advise,
    "validate": _cmd_validate,
    "demo": _cmd_demo,
    "export-demo": _cmd_export_demo,
    "profile": _cmd_profile,
    "doctor": _cmd_doctor,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
