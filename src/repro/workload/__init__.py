"""Workloads: the paper's parameter tables and synthetic object bases.

:mod:`repro.workload.profiles` encodes, verbatim, every
application-characteristics table from the paper's evaluation sections
(with the two documented typo corrections), keyed by figure number, plus
the operation mixes of section 6.4.

:mod:`repro.workload.generator` materializes a *live* object base whose
measured characteristics match a (scaled-down) profile — the bridge
between the analytical cost model and the executable storage simulator.
"""

from repro.workload.profiles import (
    FIG4_PROFILE,
    FIG5_BASE,
    FIG6_PROFILE,
    FIG8_BASE,
    FIG9_BASE,
    FIG11_PROFILE,
    FIG12_PROFILE,
    FIG14_MIX,
    FIG16_MIX,
    FIG16_PROFILE,
    FIG17_MIX,
    FIG17_PROFILE,
    fig5_profile,
    fig7_profile,
    fig8_profile,
    fig9_profile,
    fig13_profile,
)
from repro.workload.generator import ChainGenerator, GeneratedDatabase, measure_profile
from repro.workload.opstream import Operation, apply_update, operation_stream

__all__ = [
    "FIG4_PROFILE",
    "FIG5_BASE",
    "FIG6_PROFILE",
    "FIG8_BASE",
    "FIG9_BASE",
    "FIG11_PROFILE",
    "FIG12_PROFILE",
    "FIG14_MIX",
    "FIG16_PROFILE",
    "FIG16_MIX",
    "FIG17_PROFILE",
    "FIG17_MIX",
    "fig5_profile",
    "fig7_profile",
    "fig8_profile",
    "fig9_profile",
    "fig13_profile",
    "ChainGenerator",
    "GeneratedDatabase",
    "measure_profile",
    "Operation",
    "apply_update",
    "operation_stream",
]
