"""Seeded concrete operation streams over a generated chain database.

The profile tables (:mod:`repro.workload.profiles`) describe operation
mixes *abstractly* — weighted :class:`~repro.costmodel.opmix.QuerySpec`
and :class:`~repro.costmodel.opmix.UpdateSpec` shapes.  The serve
benchmark and the concurrency stress suite need *executable* operations:
a ``Q_{0,4}(bw)`` with an actual target OID, an ``ins_2`` naming the
actual owner and element.  :func:`operation_stream` performs that
binding against a :class:`~repro.workload.generator.GeneratedDatabase`,
deterministically under a seed, so every client replays an agreed-upon
schedule and reruns are reproducible.

The stream contains no deletions: every bound OID stays valid for the
whole run, so operations may be partitioned across threads in any order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.costmodel.opmix import OperationMix, QuerySpec, UpdateSpec
from repro.gom.objects import OID
from repro.gom.types import NULL
from repro.query.queries import BackwardQuery, ForwardQuery, Query
from repro.workload.generator import GeneratedDatabase
from repro.workload.profiles import FIG14_MIX

__all__ = ["Operation", "operation_stream", "select_stream", "apply_update"]


@dataclass(frozen=True)
class Operation:
    """One bound, executable operation of a workload stream."""

    index: int
    name: str
    kind: str  # "query" | "update" | "select"
    query: Query | None = None
    #: For updates: the chain level ``i`` of ``ins_i`` …
    level: int | None = None
    #: … the ``T_i`` object whose set gains a member …
    owner: OID | None = None
    #: … and the ``T_{i+1}`` element being inserted.
    target: OID | None = None
    #: For selects: the surface query text handed to the query service.
    text: str | None = None


def _bind_query(generated: GeneratedDatabase, spec: QuerySpec, rng: random.Random) -> Query:
    if spec.kind == "bw":
        target = rng.choice(generated.layers[spec.j])
        return BackwardQuery(generated.path, spec.i, spec.j, target=target)
    start = rng.choice(generated.layers[spec.i])
    return ForwardQuery(generated.path, spec.i, spec.j, start=start)


def _bind_update(
    generated: GeneratedDatabase, spec: UpdateSpec, rng: random.Random, index: int
) -> Operation:
    owner = rng.choice(generated.layers[spec.i])
    target = rng.choice(generated.layers[spec.i + 1])
    return Operation(
        index, str(spec), "update", level=spec.i, owner=owner, target=target
    )


def _pick(weighted, rng: random.Random):
    roll = rng.random()
    acc = 0.0
    for weight, spec in weighted:
        acc += weight
        if roll < acc:
            return spec
    return weighted[-1][1]


def operation_stream(
    generated: GeneratedDatabase,
    mix: OperationMix = FIG14_MIX,
    count: int = 200,
    seed: int = 0,
    query_fraction: float = 0.8,
) -> list[Operation]:
    """``count`` bound operations drawn from ``mix``, reproducibly.

    ``mix`` weights queries and updates *within* their kind; the overall
    kind split is ``query_fraction`` (the mix tables of section 6.4
    leave that ratio to the application).  Update specs whose level does
    not exist on ``generated``'s path are skipped.
    """
    n = generated.n
    queries = [(w, q) for w, q in mix.queries if 0 <= q.i < q.j <= n]
    updates = [(w, u) for w, u in mix.updates if 0 <= u.i < n]
    rng = random.Random(seed)
    stream: list[Operation] = []
    for index in range(count):
        if updates and (not queries or rng.random() >= query_fraction):
            stream.append(_bind_update(generated, _pick(updates, rng), rng, index))
        else:
            spec = _pick(queries, rng)
            stream.append(
                Operation(index, str(spec), "query", query=_bind_query(generated, spec, rng))
            )
    return stream


def select_stream(
    generated: GeneratedDatabase,
    mix: OperationMix = FIG14_MIX,
    count: int = 200,
    seed: int = 0,
    query_fraction: float = 0.8,
) -> list[Operation]:
    """``count`` operations mixing *textual* selects with bound updates.

    The select texts exercise the daemon's query-service pipeline end to
    end — parse, validate, plan, execute — over the chain's Payload
    path, with literals drawn from the actually generated values so
    equality selects hit.  Values repeat across the stream, so the
    compiled-plan cache sees genuine hot texts.  Updates are bound from
    ``mix`` exactly as in :func:`operation_stream`.
    """
    n = generated.n
    db = generated.db
    hops = ".".join(["A"] * n + ["Payload"])
    values = sorted(
        db.attr(oid, "Payload")
        for oid in generated.layers[n]
        if db.attr(oid, "Payload") is not NULL
    )
    if not values:
        raise ValueError("generated database has no Payload values to query")
    updates = [(w, u) for w, u in mix.updates if 0 <= u.i < n]
    rng = random.Random(seed)
    stream: list[Operation] = []
    for index in range(count):
        if updates and rng.random() >= query_fraction:
            stream.append(_bind_update(generated, _pick(updates, rng), rng, index))
            continue
        value = rng.choice(values)
        shape = rng.random()
        if shape < 0.5:
            name = "select-eq"
            text = f"select x from x in extent(T0) where x.{hops} = {value}"
        elif shape < 0.8:
            name = "select-range"
            text = f"select x from x in extent(T0) where x.{hops} >= {value}"
        else:
            name = "select-proj"
            text = (
                f"select x, x.{hops} from x in extent(T0) "
                f"where x.{hops} < {value}"
            )
        stream.append(Operation(index, name, "select", text=text))
    return stream


def apply_update(generated: GeneratedDatabase, op: Operation) -> bool:
    """Execute one bound ``ins_i`` against the live database.

    Inserts ``op.target`` into ``op.owner``'s set-valued ``A`` (creating
    the set when the attribute is still NULL, single-valued steps assign
    directly); returns True when the object graph actually changed.
    """
    db = generated.db
    assert op.kind == "update" and op.owner is not None and op.target is not None
    step = generated.path.steps[op.level]
    value = db.attr(op.owner, "A")
    if not step.is_set_occurrence:
        if value == op.target:
            return False
        db.set_attr(op.owner, "A", op.target)
        return True
    if value is NULL:
        collection = db.new_set(step.collection_type, [op.target])
        db.set_attr(op.owner, "A", collection)
        return True
    return db.set_insert(value, op.target)
