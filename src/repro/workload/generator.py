"""Synthetic chain databases matching an application profile.

The cost model describes a world of ``n + 1`` object types connected by
one attribute per level; :class:`ChainGenerator` builds a *live*
:class:`~repro.gom.database.ObjectBase` realizing such a world:

* types ``T0 … Tn`` with, per level ``i``, either a single-valued
  attribute ``A : T_{i+1}`` (``fan_i == 1``) or a set-valued attribute
  ``A : SET_T{i+1}`` holding ``fan_i`` members;
* ``c_i`` objects per type, of which a uniformly chosen ``d_i`` define
  their attribute;
* targets drawn uniformly at random (matching the cost model's
  collision-aware sharing default).

The generated database drives the empirical validation benchmarks: build
ASRs over the chain path, run queries through the storage simulator, and
compare measured page accesses with the analytical predictions — using
:func:`measure_profile` to feed the *actual* realized characteristics
back into the model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.costmodel.parameters import ApplicationProfile
from repro.errors import CostModelError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID
from repro.gom.paths import PathExpression
from repro.gom.schema import Schema
from repro.gom.types import NULL
from repro.storage.objectstore import ClusteredObjectStore


@dataclass
class GeneratedDatabase:
    """A generated chain world: object base, path, store, and layers."""

    db: ObjectBase
    path: PathExpression
    store: ClusteredObjectStore
    profile: ApplicationProfile
    #: ``layers[i]`` lists the OIDs of the ``T_i`` objects, in creation order.
    layers: list[list[OID]]

    @property
    def n(self) -> int:
        return self.profile.n


class ChainGenerator:
    """Builds chain object bases from (integer-valued) profiles."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def generate(self, profile: ApplicationProfile) -> GeneratedDatabase:
        """Materialize a database whose shape follows ``profile``.

        All counts must be integers (scale the paper's profiles down
        before generating; the analytical model is what handles the
        full-size numbers).
        """
        rng = random.Random(self.seed)
        n = profile.n
        counts = [int(c) for c in profile.c]
        defined = [int(d) for d in profile.d]
        fans = [max(1, round(f)) for f in profile.fan]
        for i, (c, value) in enumerate(zip(counts, profile.c)):
            if c != value:
                raise CostModelError(f"c[{i}] must be an integer to generate")
        schema = Schema()
        set_valued = [profile.fan[i] != 1 for i in range(n)]
        # Define types from the tail so attribute targets exist.
        schema.define_tuple(f"T{n}", {"Payload": "INTEGER"})
        for i in range(n - 1, -1, -1):
            if set_valued[i]:
                schema.define_set(f"SET_T{i + 1}", f"T{i + 1}")
                schema.define_tuple(f"T{i}", {"A": f"SET_T{i + 1}"})
            else:
                schema.define_tuple(f"T{i}", {"A": f"T{i + 1}"})
        schema.validate()

        db = ObjectBase(schema)
        layers: list[list[OID]] = []
        for i in range(n, -1, -1):
            layer = [db.new(f"T{i}") for _ in range(counts[i])]
            layers.append(layer)
        layers.reverse()
        for i in range(n):
            owners = rng.sample(layers[i], min(defined[i], counts[i]))
            for owner in owners:
                targets = [rng.choice(layers[i + 1]) for _ in range(fans[i])]
                if set_valued[i]:
                    collection = db.new_set(f"SET_T{i + 1}", set(targets))
                    db.set_attr(owner, "A", collection)
                else:
                    db.set_attr(owner, "A", targets[0])

        # Give the chain terminals queryable atomic values.  A dedicated
        # rng keeps the link topology above byte-identical to what every
        # earlier seed produced — Payload draws never perturb it.
        payload_rng = random.Random(self.seed + 0x5EED)
        for oid in layers[n]:
            db.set_attr(oid, "Payload", payload_rng.randrange(1_000_000))

        sizes = {}
        if profile.size:
            for i in range(n + 1):
                sizes[f"T{i}"] = int(profile.size_(i))
                sizes[f"SET_T{i}"] = 8  # collections are inlined-ish
        store = ClusteredObjectStore(sizes or None)
        store.attach(db)
        path = PathExpression(schema, "T0", tuple("A" for _ in range(n)))
        return GeneratedDatabase(db, path, store, profile, layers)


def measure_profile(
    generated: GeneratedDatabase, size: tuple[float, ...] | None = None
) -> ApplicationProfile:
    """The *realized* characteristics of a generated database.

    Returns an :class:`ApplicationProfile` with measured ``c_i``, ``d_i``,
    average ``fan_i`` and ``shar_i`` — the honest inputs for comparing
    analytical predictions against simulator measurements (random
    generation makes the realized values deviate slightly from the
    requested ones).
    """
    db, path = generated.db, generated.path
    n = path.n
    c = []
    d = []
    fan = []
    shar = []
    for i in range(n + 1):
        extent = db.extent(f"T{i}", include_subtypes=False)
        c.append(max(len(extent), 1))
    for i in range(n):
        step = path.steps[i]
        owners = [
            oid
            for oid in db.extent(f"T{i}", include_subtypes=False)
            if db.attr(oid, "A") is not NULL
        ]
        d.append(len(owners))
        references = 0
        targets: set[OID] = set()
        for owner in owners:
            value = db.attr(owner, "A")
            if step.is_set_occurrence:
                members = db.members(value)  # type: ignore[arg-type]
                references += len(members)
                targets.update(members)  # type: ignore[arg-type]
            else:
                references += 1
                targets.add(value)  # type: ignore[arg-type]
        fan.append(references / len(owners) if owners else 0.0)
        shar.append(references / len(targets) if targets else 0.0)
    sizes = size
    if sizes is None and generated.profile.size:
        sizes = generated.profile.size
    return ApplicationProfile(
        c=tuple(c),
        d=tuple(d),
        fan=tuple(fan),
        size=tuple(sizes) if sizes else (),
        shar=tuple(shar),
    )
