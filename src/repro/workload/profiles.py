"""The paper's application-characteristic tables, by figure.

Every evaluation figure in the paper is driven by an explicit parameter
table; this module transcribes them.  Two corrections (both documented
in DESIGN.md):

* **Figure 6/7 table** prints ``d_2 = 8000`` while ``c_2 = 1000``; a
  defined-attribute count cannot exceed the object count, so we use
  ``d_2 = 800`` (consistent with the neighbouring ``d_i ≈ 0.8·c_i``
  pattern of the table).
* **Figure 17 table** lists six ``d`` values for ``n = 5``; ``d_5`` is
  meaningless (there is no ``A_6``) and is dropped.
"""

from __future__ import annotations

from repro.costmodel.opmix import OperationMix, QuerySpec, UpdateSpec
from repro.costmodel.parameters import ApplicationProfile

# ----------------------------------------------------------------------
# Section 4.4.1, Figure 4 — storage comparison between extensions and
# decompositions (also section 6.3.1/Figure 11 object counts).
# ----------------------------------------------------------------------

FIG4_PROFILE = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
)

# ----------------------------------------------------------------------
# Section 4.4.2, Figure 5 — varying all d_i simultaneously.
# ----------------------------------------------------------------------

FIG5_BASE = ApplicationProfile(
    c=(10_000,) * 5,
    d=(10_000,) * 4,
    fan=(2, 2, 2, 2),
)


def fig5_profile(d: float) -> ApplicationProfile:
    """The Figure 5 profile with all ``d_i`` set to ``d`` (2500 … 10^4)."""
    return FIG5_BASE.with_d((d,) * 4)


# ----------------------------------------------------------------------
# Section 5.9.1, Figure 6 — backward query Q_{0,4}(bw) costs.
# (d_2 corrected from the printed 8000; see module docstring.)
# ----------------------------------------------------------------------

FIG6_PROFILE = ApplicationProfile(
    c=(100, 500, 1000, 5000, 10000),
    d=(90, 400, 800, 2000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)


def fig7_profile(size: float) -> ApplicationProfile:
    """Section 5.9.2, Figure 7: the Figure 6 profile with uniform sizes."""
    return FIG6_PROFILE.with_size((size,) * 5)


# ----------------------------------------------------------------------
# Section 5.9.3, Figure 8 — which queries are supported (Q_{0,3}(bw)).
# ----------------------------------------------------------------------

FIG8_BASE = ApplicationProfile(
    c=(10_000,) * 5,
    d=(10_000,) * 4,
    fan=(2, 2, 2, 2),
    size=(120,) * 5,
)


def fig8_profile(d: float) -> ApplicationProfile:
    """The Figure 8 profile with all ``d_i`` set to ``d`` (10 … 10^4)."""
    return FIG8_BASE.with_d((d,) * 4)


# ----------------------------------------------------------------------
# Section 5.9.4, Figure 9 — an application favouring canonical/left.
# ----------------------------------------------------------------------

FIG9_BASE = ApplicationProfile(
    c=(400_000,) * 5,
    d=(10, 100, 1000, 100_000),
    fan=(10, 10, 10, 10),
    size=(120,) * 5,
)


def fig9_profile(fan: float) -> ApplicationProfile:
    """The Figure 9 profile with all fan-outs set to ``fan`` (10 … 100)."""
    return FIG9_BASE.with_fan((fan,) * 4)


# ----------------------------------------------------------------------
# Section 6.3.1, Figure 11 — update costs, first fixed profile.
# ----------------------------------------------------------------------

FIG11_PROFILE = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 2, 3, 4),
    size=(500, 400, 300, 300, 100),
)

# ----------------------------------------------------------------------
# Section 6.3.2, Figure 12 — update costs, second fixed profile.
# ----------------------------------------------------------------------

FIG12_PROFILE = ApplicationProfile(
    c=(1000, 5000, 10000, 50000, 100000),
    d=(900, 4000, 8000, 20000),
    fan=(2, 1, 1, 4),
    size=(500, 400, 300, 300, 100),
)


def fig13_profile(size: float) -> ApplicationProfile:
    """Section 6.3.3, Figure 13: Figure 11's profile with uniform sizes."""
    return FIG11_PROFILE.with_size((size,) * 5)


# ----------------------------------------------------------------------
# Section 6.4.2/6.4.3, Figures 14-15 — operation mix over FIG11_PROFILE.
# ----------------------------------------------------------------------

FIG14_MIX = OperationMix(
    queries=(
        (0.5, QuerySpec(0, 4, "bw")),
        (0.25, QuerySpec(0, 3, "bw")),
        (0.25, QuerySpec(1, 2, "fw")),
    ),
    updates=(
        (0.5, UpdateSpec(2)),
        (0.5, UpdateSpec(3)),
    ),
)

# ----------------------------------------------------------------------
# Section 6.4.4, Figure 16 — left-complete vs full, n = 5.
# ----------------------------------------------------------------------

FIG16_PROFILE = ApplicationProfile(
    c=(1000, 1000, 5000, 10000, 100000, 100000),
    d=(100, 1000, 3000, 8000, 100000),
    fan=(2, 2, 3, 4, 10),
    size=(600, 500, 400, 300, 300, 100),
)

FIG16_MIX = OperationMix(
    queries=(
        (1 / 3, QuerySpec(0, 5, "bw")),
        (1 / 3, QuerySpec(0, 4, "bw")),
        (1 / 3, QuerySpec(0, 5, "fw")),
    ),
    updates=(
        (1 / 3, UpdateSpec(3)),
        (1 / 3, UpdateSpec(0)),
        (1 / 3, UpdateSpec(4)),
    ),
)

# ----------------------------------------------------------------------
# Section 6.4.5, Figure 17 — right-complete vs full, n = 5.
# (The printed table's sixth d value is dropped; see module docstring.)
# ----------------------------------------------------------------------

FIG17_PROFILE = ApplicationProfile(
    c=(100_000, 100_000, 50_000, 10_000, 1000, 1000),
    d=(100_000, 10_000, 30_000, 10_000, 100),
    fan=(1, 10, 20, 4, 1),
    size=(600, 500, 400, 300, 200, 700),
)

FIG17_MIX = OperationMix(
    queries=(
        (0.5, QuerySpec(0, 5, "bw")),
        (0.25, QuerySpec(1, 5, "bw")),
        (0.25, QuerySpec(2, 5, "bw")),
    ),
    updates=((1.0, UpdateSpec(3)),),
)
