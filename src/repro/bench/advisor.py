"""``repro bench advisor`` — the SLO-gated self-tuning soak (DESIGN §15).

Where ``bench chaos`` asks "does the daemon keep its promises while
faults land", this soak asks "does the physical design follow the
workload".  One :class:`~repro.server.ServeDaemon` runs with the
background :class:`~repro.resilience.advisor.AdvisorLoop` armed, and the
soak walks it through a seeded mix shift:

1. **query-heavy convergence** — the stream is almost all long
   backward queries; the advisor must abandon the daemon's initial
   undecomposed FULL design for the mix's cost-model winner;
2. **shift** — :meth:`~repro.server.ServeDaemon.set_stream` swaps in an
   update-heavier stream (and the recorder resets, marking the regime
   change); the advisor must re-converge to the new winner — a finer
   decomposition, cheaper to maintain — within two *decisive* sweeps
   (sweeps that saw enough evidence and were out of cooldown);
3. **rollback** — a fault armed at ``asr.retune.build`` fails the next
   rebuild mid-build; the gate: the old ASR is still registered,
   serving, and consistent, and the epoch did not move;
4. **epoch proof** — the fault disarmed, the retune is re-driven and
   must bump the manager epoch *exactly once*; a ``POST /query`` text
   warmed into the compiled-plan cache before the retune must recompile
   after it (``cached: false`` at the new epoch) — the epoch-keyed
   cache makes a stale-epoch hit structurally impossible, and this
   probes it end to end over real HTTP.

``/healthz`` is probed over HTTP at every phase boundary and must
answer 200 throughout; the drain gate re-checks accounting and ASR
consistency.  ``BENCH_advisor.json`` records every phase verdict, the
advisor's decision history, and the epoch proof — the numbers the CI
``advisor-smoke`` job gates on.  Exit 0 iff every gate holds.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field, replace

from repro.bench.serve import ServeConfig
from repro.faults import FaultInjector
from repro.server import ServeDaemon, ServerConfig
from repro.workload.opstream import operation_stream, select_stream
from repro.workload.profiles import FIG14_MIX

__all__ = ["AdvisorBenchConfig", "run_advisor", "write_report"]

#: Sweep rejections that do *not* count against convergence: the loop
#: was still gathering evidence or deliberately pacing itself.
_PATIENT_REASONS = ("insufficient-ops", "cooldown")


@dataclass
class AdvisorBenchConfig:
    """Knobs of one advisor soak (all reachable from ``repro bench advisor``)."""

    serve: ServeConfig = field(default_factory=ServeConfig)
    #: Seconds between advisor sweeps — tight, so convergence reflects
    #: the decision gates, not the polling interval.
    advisor_interval: float = 0.25
    #: Hysteresis the soak's retunes must clear.  The update-heavy
    #: phase's materialized winner beats the query-heavy design by only
    #: ~1.13× on the small serve world (the *overall* winner there is
    #: "no ASR", which the loop refuses to de-materialize), so the soak
    #: defaults below the serve daemon's 1.2.
    advisor_threshold: float = 1.05
    #: Evidence floor per sweep.
    advisor_min_ops: int = 64
    #: Stream fraction that is queries in the query-heavy phases.
    query_heavy_fraction: float = 0.95
    #: Stream fraction that is queries after the mid-run shift.  0.7
    #: keeps the materialized LEFT designs ahead of the no-ASR baseline
    #: while flipping the preferred decomposition to a finer one.
    update_heavy_fraction: float = 0.7
    #: Wall-clock cap on each convergence phase, seconds.
    phase_seconds: float = 20.0
    #: Decisive sweeps a phase may burn before its retune ("within two
    #: sweep intervals" — evidence-gathering and cooldown sweeps are
    #: patience, not indecision).
    max_decisive_sweeps: int = 2
    out: str = "BENCH_advisor.json"


def _http_json(url: str, body: dict | None = None) -> tuple[int, dict]:
    """GET (or POST ``body`` as JSON) and decode the JSON response."""
    request = urllib.request.Request(url)
    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, data=data, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:  # non-200 still carries JSON
        return error.code, json.load(error)


def _design_of(advisor) -> dict:
    return dict(advisor.describe()["design"])


def _await_retunes(advisor, target: int, deadline_s: float) -> float:
    """Poll until ``advisor.retunes >= target``; return elapsed seconds."""
    started = time.monotonic()
    deadline = started + max(1.0, deadline_s)
    while time.monotonic() < deadline:
        if advisor.retunes >= target:
            break
        time.sleep(0.02)
    return time.monotonic() - started


def _decisive_delta(before: dict, after: dict) -> int:
    """Convergence-relevant rejections accumulated between snapshots."""
    return sum(
        after.get(reason, 0) - before.get(reason, 0)
        for reason in set(after) | set(before)
        if reason not in _PATIENT_REASONS
    )


def run_advisor(config: AdvisorBenchConfig | None = None) -> dict:
    """Run the soak; returns the JSON-able ``BENCH_advisor.json`` report."""
    config = config or AdvisorBenchConfig()
    # The daemon's initial stream must be the query-heavy phase's: the
    # shared ServeConfig default (0.8 queries) already prefers the finer
    # decomposition the *shift* is supposed to move to.
    serve_config = replace(
        config.serve, query_fraction=config.query_heavy_fraction
    )
    server_config = ServerConfig(
        serve=serve_config,
        port=0,
        drift_interval=0.5,
        out=config.out,  # the daemon's drain report; overwritten below
        healer=True,
        advisor_interval=config.advisor_interval,
        advisor_threshold=config.advisor_threshold,
        advisor_min_ops=config.advisor_min_ops,
    )
    daemon = ServeDaemon(server_config).start()
    world = daemon.world
    advisor = daemon.advisor
    manager = world.manager
    healthz_statuses: list[int] = []
    phases: list[dict] = []
    host, port = daemon.address
    base = f"http://{host}:{port}"

    def probe_healthz() -> None:
        status, _payload = _http_json(f"{base}/healthz")
        healthz_statuses.append(status)

    def stream_for(query_fraction: float, seed: int) -> list:
        if config.serve.profile == "queries":
            return select_stream(
                world.generated,
                FIG14_MIX,
                count=config.serve.ops,
                seed=seed,
                query_fraction=query_fraction,
            )
        return operation_stream(
            world.generated,
            FIG14_MIX,
            count=config.serve.ops,
            seed=seed,
            query_fraction=query_fraction,
        )

    def converge(name: str, target_retunes: int) -> dict:
        rejected_before = dict(advisor.describe()["rejected"])
        design_before = _design_of(advisor)
        elapsed = _await_retunes(advisor, target_retunes, config.phase_seconds)
        described = advisor.describe()
        decisive = _decisive_delta(rejected_before, described["rejected"])
        converged = advisor.retunes >= target_retunes
        design = _design_of(advisor)
        probe_healthz()
        phase = {
            "name": name,
            "converged": converged,
            "seconds": round(elapsed, 3),
            "decisive_sweeps": decisive + (1 if converged else 0),
            "from": design_before,
            "design": design,
            "changed": design != design_before,
            "ops_served": daemon.ops_served,
        }
        phases.append(phase)
        return phase

    try:
        probe_healthz()
        # Phase 1 — the query-heavy stream the daemon started with.
        converge("query-heavy", target_retunes=1)
        # Phase 2 — shift update-heavy; the recorder resets so the new
        # regime's evidence is not blended with the old mix's.
        daemon.set_stream(
            stream_for(config.update_heavy_fraction, config.serve.seed + 1)
        )
        world.recorder.reset()
        converge("update-heavy", target_retunes=2)

        # Phase 3 — rollback: shift to a *pure-query* stream (a retune
        # is wanted again, and with no updates in flight the manager
        # epoch goes quiescent — every move below is attributable to the
        # retune alone), stop the loop (manual sweeps from here — no
        # racing thread), arm a one-shot build fault, and sweep.
        daemon.set_stream(stream_for(1.0, config.serve.seed + 2))
        world.recorder.reset()
        evidence_deadline = time.monotonic() + config.phase_seconds
        while time.monotonic() < evidence_deadline:
            if world.recorder.total_operations >= config.advisor_min_ops:
                break
            time.sleep(0.02)
        advisor.stop()
        time.sleep(0.5)  # let phase 2's in-flight updates drain fully
        injector = FaultInjector(seed=config.serve.seed)
        manager.fault_injector = injector
        injector.fault_at("asr.retune.build", times=1)
        asrs_before = len(manager.asrs)
        epoch_before_fault = manager.epoch
        design_before_fault = _design_of(advisor)
        applied_under_fault = advisor.sweep(force=True)
        manager.check_consistency()
        rollback = {
            "ok": (
                not applied_under_fault
                and len(manager.asrs) == asrs_before
                and manager.epoch == epoch_before_fault
                and _design_of(advisor) == design_before_fault
                and advisor.describe()["rejected"].get("build-failed", 0) >= 1
            ),
            "applied_under_fault": applied_under_fault,
            "asrs_before": asrs_before,
            "asrs_after": len(manager.asrs),
            "epoch_before": epoch_before_fault,
            "epoch_after": manager.epoch,
            "design": _design_of(advisor),
        }
        probe_healthz()

        # Phase 4 — epoch proof: warm a compiled plan over real HTTP,
        # re-drive the retune (fault disarmed itself), and show the
        # cache cannot serve the pre-retune plan afterwards.
        probe_text = select_stream(
            world.generated, FIG14_MIX, count=1, seed=77, query_fraction=1.0
        )[0].text
        _status, first = _http_json(f"{base}/query", {"query": probe_text})
        _status, warmed = _http_json(f"{base}/query", {"query": probe_text})
        retunes_before = advisor.retunes
        applied = advisor.sweep(force=True)
        manager.check_consistency()
        _status, after = _http_json(f"{base}/query", {"query": probe_text})
        epoch_proof = {
            "applied": applied,
            "before": epoch_before_fault,
            "after": manager.epoch,
            "single_bump": manager.epoch == epoch_before_fault + 1,
            "warmed_cached": bool(warmed.get("cached")),
            "post_retune_miss": not after.get("cached", True),
            "post_retune_epoch": after.get("epoch"),
            "epoch_current": after.get("epoch") == manager.epoch,
            "rows_stable": first.get("rows") == after.get("rows"),
        }
        phases.append(
            {
                "name": "re-converge",
                "converged": applied and advisor.retunes == retunes_before + 1,
                "seconds": 0.0,
                "design": _design_of(advisor),
                "changed": _design_of(advisor) != design_before_fault,
                "ops_served": daemon.ops_served,
            }
        )
        probe_healthz()
        advisor_state = advisor.describe()
    finally:
        report = daemon.shutdown()

    resilience = report["resilience"]
    end_state = {
        **resilience["end_state"],
        "accounting_ok": bool(report["accounting"]["ok"]),
        "drain_errors": report["drained"]["errors"],
    }
    convergence_ok = all(
        phase["converged"]
        and phase.get("decisive_sweeps", 0) <= config.max_decisive_sweeps
        for phase in phases
    )
    designs_moved = all(
        phase["changed"] for phase in phases if "changed" in phase
    )
    healthz_ok = bool(healthz_statuses) and all(
        status == 200 for status in healthz_statuses
    )
    epoch_ok = (
        epoch_proof["applied"]
        and epoch_proof["single_bump"]
        and epoch_proof["warmed_cached"]
        and epoch_proof["post_retune_miss"]
        and epoch_proof["epoch_current"]
        and epoch_proof["rows_stable"]
    )
    ok = (
        convergence_ok
        and designs_moved
        and rollback["ok"]
        and epoch_ok
        and healthz_ok
        and bool(end_state["consistent"])
        and bool(end_state["accounting_ok"])
    )
    return {
        "benchmark": "advisor",
        "ok": ok,
        "config": {
            "clients": config.serve.clients,
            "ops": config.serve.ops,
            "seed": config.serve.seed,
            "profile": config.serve.profile,
            "advisor_interval": config.advisor_interval,
            "advisor_threshold": config.advisor_threshold,
            "advisor_min_ops": config.advisor_min_ops,
            "query_heavy_fraction": config.query_heavy_fraction,
            "update_heavy_fraction": config.update_heavy_fraction,
            "phase_seconds": config.phase_seconds,
            "max_decisive_sweeps": config.max_decisive_sweeps,
        },
        "phases": phases,
        "rollback": rollback,
        "epoch_proof": epoch_proof,
        "advisor": advisor_state,
        "healthz": {
            "probes": len(healthz_statuses),
            "statuses": healthz_statuses,
            "all_ok": healthz_ok,
        },
        "end_state": end_state,
        "ops_served": report["ops_served"],
        "uptime_seconds": report["uptime_seconds"],
        "metrics": report["metrics"],
    }


def write_report(report: dict, path: str) -> None:
    """Write the report as indented JSON (the ``BENCH_advisor.json`` artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
