"""Plain-text rendering of benchmark series."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width table; numbers are right-aligned with ``g`` format."""
    rendered_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """One column per named series, one row per x value."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(xs):
        rows.append([x, *(values[index] for values in series.values())])
    return format_table(headers, rows, title)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e12:
            return f"{int(cell)}"
        return f"{cell:.3g}" if abs(cell) < 1 else f"{cell:.1f}"
    return str(cell)
