"""``repro bench chaos`` — the SLO-gated chaos soak (DESIGN §13).

The robustness analogue of ``repro bench serve``: instead of asking
"how fast is the daemon", it asks "does the daemon keep its promises
while faults land".  One :class:`~repro.server.ServeDaemon` runs with
chaos armed (:class:`~repro.resilience.chaos.ChaosController` striking
the fault injector from the live op stream) and the
:class:`~repro.resilience.healer.HealerLoop` racing it, in four phases:

1. **storm** — serve under fire until ``soak_ops`` operations completed
   *and* ``min_recoveries`` healer recoveries happened (capped at
   ``soak_seconds``);
2. **settle** — chaos disarms, the healer drains the quarantine set
   (capped at ``settle_seconds``);
3. **probe** — ``GET /healthz`` over real HTTP, recording the status
   code the liveness probe would have seen;
4. **drain** — graceful shutdown, end-state consistency check.

``BENCH_chaos.json`` records overall p50/p95/p99 latency, hit rate,
strike/fault/recovery counts, MTTR, breaker transitions, deadline and
admission sheds, the healthz verdict, and the end state — the numbers
the CI ``chaos-soak-smoke`` job gates on.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from repro.bench.serve import OpSample, ServeConfig, _percentile
from repro.resilience import ChaosConfig, RecoveryPolicy
from repro.server import ServeDaemon, ServerConfig

__all__ = ["ChaosBenchConfig", "run_chaos", "write_report"]


@dataclass
class ChaosBenchConfig:
    """Knobs of one chaos soak (all reachable from ``repro bench chaos``)."""

    serve: ServeConfig = field(default_factory=ServeConfig)
    chaos: ChaosConfig = field(default_factory=lambda: ChaosConfig(rate=0.25))
    recovery: RecoveryPolicy = field(
        default_factory=lambda: RecoveryPolicy(backoff_s=0.01, jitter=0.25)
    )
    #: Seconds between healer sweeps — tight, so MTTR reflects the
    #: healer, not its polling interval.
    healer_interval: float = 0.05
    #: Operations the storm phase must serve before moving on.
    soak_ops: int = 400
    #: Healer recoveries the storm phase waits for (the soak is
    #: pointless if nothing ever broke).
    min_recoveries: int = 1
    #: Wall-clock cap on the storm phase, seconds.
    soak_seconds: float = 60.0
    #: Wall-clock cap on the settle phase, seconds.
    settle_seconds: float = 10.0
    out: str = "BENCH_chaos.json"


def _overall_latency(samples: list[OpSample]) -> dict:
    latencies = sorted(sample.latency_s for sample in samples)
    return {
        "count": len(latencies),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "mean_ms": round(
            sum(latencies) / len(latencies) * 1e3 if latencies else 0.0, 3
        ),
    }


def run_chaos(config: ChaosBenchConfig | None = None) -> dict:
    """Run the soak; returns the JSON-able ``BENCH_chaos.json`` report."""
    config = config or ChaosBenchConfig()
    server_config = ServerConfig(
        serve=config.serve,
        port=0,
        drift_interval=0.5,
        out=config.out,  # the daemon's drain report; overwritten below
        recovery=config.recovery,
        healer=True,
        healer_interval=config.healer_interval,
        chaos=config.chaos,
    )
    daemon = ServeDaemon(server_config).start()
    try:
        # Phase 1 — storm: serve under fire until the soak targets hold.
        storm_started = time.monotonic()
        deadline = storm_started + max(1.0, config.soak_seconds)
        while time.monotonic() < deadline:
            if (
                daemon.ops_served >= config.soak_ops
                and daemon.healer.recoveries >= config.min_recoveries
            ):
                break
            time.sleep(0.02)
        storm_seconds = time.monotonic() - storm_started
        # Phase 2 — settle: no new faults; the healer drains quarantine.
        daemon.chaos.stop()
        settle_deadline = time.monotonic() + max(0.1, config.settle_seconds)
        while time.monotonic() < settle_deadline:
            if not daemon.world.manager.quarantined:
                break
            time.sleep(0.02)
        # Phase 3 — probe /healthz over real HTTP (the probe's view).
        host, port = daemon.address
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=10
            ) as response:
                healthz_status = response.status
                healthz = json.load(response)
        except urllib.error.HTTPError as error:  # 503 still carries JSON
            healthz_status = error.code
            healthz = json.load(error)
        with daemon._samples_lock:
            samples = list(daemon._samples)
    finally:
        # Phase 4 — drain (disarms chaos and final-sweeps the healer
        # again; both are idempotent).
        report = daemon.shutdown()
    resilience = report["resilience"]
    ops_served = report["ops_served"]
    return {
        "benchmark": "chaos",
        "config": {
            "clients": config.serve.clients,
            "ops": config.serve.ops,
            "seed": config.serve.seed,
            "capacity": config.serve.capacity,
            "io_micros": config.serve.io_micros,
            "io_dist": config.serve.io_dist,
            "async": config.serve.use_async,
            "max_inflight": config.serve.max_inflight,
            "op_deadline_ms": config.serve.op_deadline_ms,
            "shed_backoff_ms": config.serve.shed_backoff_ms,
            "chaos_rate": config.chaos.rate,
            "chaos_burst": config.chaos.burst,
            "chaos_points": [f"{n}:{k}" for n, k in config.chaos.points],
            "healer_interval": config.healer_interval,
            "recovery": {
                "max_retries": config.recovery.max_retries,
                "backoff_s": config.recovery.backoff_s,
                "jitter": config.recovery.jitter,
                "episode_attempts": config.recovery.episode_attempts,
            },
            "soak_ops": config.soak_ops,
            "min_recoveries": config.min_recoveries,
        },
        "soak": {
            "storm_seconds": round(storm_seconds, 3),
            "ops_served": ops_served,
            "throughput_ops_per_s": round(
                ops_served / storm_seconds if storm_seconds else 0.0, 2
            ),
            "sampled_operations": len(samples),
        },
        "latency_ms": _overall_latency(samples),
        "hit_rate": report["pool"]["hit_rate"],
        "chaos": resilience["chaos"],
        "healer": resilience["healer"],
        "breakers": resilience["breakers"],
        "deadline_shed": resilience["deadline_shed"],
        "chaos_casualties": resilience["chaos_casualties"],
        "admission": resilience["admission"],
        "healthz": {
            "status": healthz_status,
            "ok": bool(healthz.get("ok")),
            "healing": healthz.get("healing", []),
            "quarantined_hard": healthz.get("quarantined_hard", []),
        },
        "end_state": {
            **resilience["end_state"],
            "accounting_ok": bool(report["accounting"]["ok"]),
            "drain_errors": report["drained"]["errors"],
        },
        "operations": report["operations"],
        "daemon": {
            "uptime_seconds": report["uptime_seconds"],
            "core": report["core"],
        },
        "metrics": report["metrics"],
        "drift": report["drift"],
    }


def write_report(report: dict, path: str) -> None:
    """Write the report as indented JSON (the ``BENCH_chaos.json`` artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
