"""Shared machinery for the benchmark harness.

:mod:`repro.bench.figures` computes, for every figure of the paper's
evaluation, the data series the figure plots (using the profiles of
:mod:`repro.workload.profiles` and the cost model); the per-figure
benchmark files under ``benchmarks/`` time these computations, render the
series, and assert the paper's qualitative claims.

:mod:`repro.bench.render` turns the series into fixed-width text tables
so ``bench_output.txt`` doubles as the reproduction's figure data.
"""

from repro.bench.render import format_series, format_table
from repro.bench import figures

__all__ = ["format_series", "format_table", "figures"]
