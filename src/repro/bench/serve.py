"""Multi-client query serving over one shared bounded buffer pool.

The paper's evaluation is single-client: one operation at a time, page
accesses as the cost measure.  This driver measures the *serving*
dimension instead: a seeded operation stream (:mod:`repro.workload.opstream`)
replayed against one chain database through a
:class:`~repro.concurrency.ContextPool`, all workers sharing one bounded
LRU pool and the ASR manager's readers-writer lock — queries proceed
concurrently, updates (graph mutation plus eager ASR maintenance) run
under :meth:`~repro.asr.manager.ASRManager.exclusive`.

Page accesses are still the cost *model*; wall-clock needs an I/O model
on top.  Every operation's charged pages are priced by a
:class:`~repro.device.DeviceModel` **after** the operation releases its
locks, in one of two mechanisms:

* **threaded** — ``clients`` worker threads each replay a slice of the
  stream and block in :meth:`~repro.device.DeviceModel.charge`; stalls
  overlap across threads, so in-flight operations are capped at
  ``clients``.
* **async** (``--async``) — one asyncio event loop admits up to
  ``max_inflight`` concurrent operations; each offloads its CPU-bound
  plan evaluation to a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
  of ``clients`` threads (:func:`execute_operation`, which keeps the
  exact lock discipline of the threaded path) and then *awaits*
  :meth:`~repro.device.DeviceModel.acharge` on the loop — so the
  simulated device waits cost no thread at all, and in-flight operations
  are bounded by ``max_inflight`` instead of ``clients``.

The headline report (``BENCH_serve.json``): throughput, speedup versus
the single-client replay of the *same* stream (and, in async mode,
versus the threaded replay at equal ``clients``), per-operation
p50/p95/p99 latencies, the shared pool's hit rate, and the accounting
invariant (shared totals == retired + Σ live per-worker totals).

The benchmark and the long-lived daemon (:mod:`repro.server`) share the
same machinery: :func:`build_world` assembles the generated database,
ASR manager, context pool, and drift monitor into one
:class:`ServeWorld`; :func:`execute_operation` executes one bound
operation's lock-disciplined core; :func:`drive_operation` /
:func:`drive_operation_async` add the device charge and latency
accounting on the thread / event-loop side respectively.  The benchmark
replays the stream once and reports; the daemon replays it in a loop
until signalled.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.asr.adaptive import WorkloadRecorder
from repro.asr.extensions import Extension
from repro.asr.manager import ASRManager
from repro.concurrency import ContextPool, ThreadLocalContexts
from repro.costmodel.parameters import ApplicationProfile
from repro.device import DeviceModel, LatencyModel, parse_io_dist
from repro.gom.paths import PathExpression
from repro.query.costplanner import CostBasedPlanner
from repro.query.evaluator import QueryEvaluator
from repro.query.planner import Planner
from repro.query.service import QueryService
from repro.resilience import BreakerBoard
from repro.telemetry import CostModelPredictor, DriftMonitor, MetricsRegistry, Tracer
from repro.telemetry.tracing import activate, maybe_span
from repro.workload.generator import (
    ChainGenerator,
    GeneratedDatabase,
    measure_profile,
)
from repro.workload.opstream import (
    Operation,
    apply_update,
    operation_stream,
    select_stream,
)
from repro.workload.profiles import FIG14_MIX, FIG16_MIX

__all__ = [
    "ServeConfig",
    "ServeWorld",
    "OpSample",
    "ExecutorWorkers",
    "build_world",
    "execute_operation",
    "drive_operation",
    "drive_operation_async",
    "per_operation",
    "run_serve",
    "SMALL_PROFILE",
    "SMALL_FIG16_PROFILE",
    "SERVE_PROFILES",
]

#: A small n=4 chain (the Figure 14 shape, scaled down ~250×) that
#: builds in well under a second yet yields non-trivial ASR trees.
SMALL_PROFILE = ApplicationProfile(
    c=(40, 80, 120, 240, 480),
    d=(36, 64, 96, 200),
    fan=(2, 2, 2, 2),
    size=(120,) * 5,
)

#: The Figure 16 application shape (n = 5, growing extents, the
#: left-complete-vs-full study), scaled to the same build budget as
#: :data:`SMALL_PROFILE`.
SMALL_FIG16_PROFILE = ApplicationProfile(
    c=(20, 20, 40, 80, 320, 480),
    d=(12, 20, 32, 64, 320),
    fan=(2, 2, 2, 2, 2),
    size=(120,) * 6,
)

#: ``--profile`` choices: name -> (generator profile, operation mix).
#: ``queries`` serves *textual* selects through the query service (the
#: ``POST /query`` pipeline: parse → validate → plan cache → execute)
#: over the Fig. 14 shape, mixed with FIG14 updates.
SERVE_PROFILES = {
    "fig14": (SMALL_PROFILE, FIG14_MIX),
    "fig16": (SMALL_FIG16_PROFILE, FIG16_MIX),
    "queries": (SMALL_PROFILE, FIG14_MIX),
}


@dataclass
class ServeConfig:
    """Knobs of one serve run (all reachable from ``repro bench serve``)."""

    clients: int = 4
    ops: int = 200
    seed: int = 0
    capacity: int = 256
    #: Simulated device latency per charged page, in microseconds
    #: (the median, for jittered distributions).
    io_micros: float = 150.0
    #: Latency distribution spec (see :func:`repro.device.parse_io_dist`):
    #: ``fixed``, ``lognormal[:SIGMA]``, or a device class preset.
    io_dist: str = "fixed"
    query_fraction: float = 0.8
    build_workers: int = 4
    #: Which application shape to serve (a :data:`SERVE_PROFILES` key).
    profile: str = "fig14"
    #: Per-context span-ring bound (``None`` keeps every span — fine for
    #: one bench replay, set for long-lived daemon workers).
    max_spans: int | None = None
    #: Serve on an asyncio event loop with executor offload instead of
    #: one blocking thread per client.
    use_async: bool = False
    #: Async mode: concurrent in-flight operation bound (the admission
    #: limit); threaded mode ignores it — ``clients`` is the bound there.
    max_inflight: int = 1024
    #: Async daemon: queue entries older than this many milliseconds at
    #: dequeue time are shed unexecuted (``deadline.shed``, counted
    #: separately from admission rejects).  ``None`` disables deadlines.
    op_deadline_ms: float | None = None
    #: Async daemon: admission-pump backoff after shedding into a full
    #: queue, in milliseconds (jittered ±50% from the run's seed).
    shed_backoff_ms: float = 1.0
    #: Per-ASR circuit breaker: consecutive fault evidence before the
    #: breaker opens (see :mod:`repro.resilience.breaker`).
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before half-open probing.
    breaker_cooldown_s: float = 2.0
    #: Entries in the query service's compiled-plan cache (LRU, keyed by
    #: normalized text + ASR epoch); 0 disables caching.
    query_cache_size: int = 128
    #: Head-sampling probability for request traces (seeded RNG); 0.0
    #: with no ``slow_trace_ms`` disables tracing entirely — the serve
    #: hot paths then pay nothing for it.
    trace_sample_rate: float = 0.0
    #: Tail-capture threshold: traces at least this slow (end to end,
    #: ms) are always retained, as are shed/degraded/breaker-open/error
    #: outcomes while tracing is enabled.  ``None`` leaves only head
    #: sampling (when its rate is non-zero).
    slow_trace_ms: float | None = None
    #: Ring capacity of the retained-trace store (``GET /trace/recent``).
    trace_capacity: int = 512

    def resolved_profile(self) -> tuple[ApplicationProfile, object]:
        """The (generator profile, operation mix) pair of :attr:`profile`."""
        try:
            return SERVE_PROFILES[self.profile]
        except KeyError:
            raise ValueError(
                f"unknown serve profile {self.profile!r}; "
                f"known: {sorted(SERVE_PROFILES)}"
            ) from None

    def latency_model(self) -> LatencyModel:
        """The latency distribution :attr:`io_dist` describes."""
        return parse_io_dist(self.io_dist, self.io_micros, self.seed)

    def device(self, registry: MetricsRegistry | None = None) -> DeviceModel:
        """A fresh :class:`~repro.device.DeviceModel` for one run."""
        return DeviceModel(self.latency_model(), registry)


@dataclass
class OpSample:
    """One executed operation: what ran, how long, how many pages."""

    name: str
    kind: str
    latency_s: float
    pages: int


@dataclass
class _RunOutcome:
    wall_seconds: float
    samples: list[OpSample] = field(default_factory=list)
    peak_inflight: int = 0

    @property
    def throughput(self) -> float:
        return len(self.samples) / self.wall_seconds if self.wall_seconds else 0.0


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[index]


@dataclass
class ServeWorld:
    """Everything one serve run drives, bench replay or daemon loop."""

    config: ServeConfig
    registry: MetricsRegistry
    generated: GeneratedDatabase
    manager: ASRManager
    pool: ContextPool
    drift: DriftMonitor
    breakers: BreakerBoard
    #: The text-in/rows-out front door (``POST /query`` and the
    #: ``queries`` profile's select operations).
    queries: QueryService
    #: Per-request tracing front door (DESIGN §14); disabled by default.
    tracer: Tracer
    #: The live op mix over the chain path, fed by every executed
    #: operation on both cores and by ``POST /query`` — what the
    #: :class:`~repro.resilience.advisor.AdvisorLoop` re-costs designs
    #: against.  Thread-safe; recording is a couple of dict bumps.
    recorder: WorkloadRecorder

    def stream(self) -> list[Operation]:
        """The seeded operation stream this world's config describes."""
        _profile, mix = self.config.resolved_profile()
        if self.config.profile == "queries":
            return select_stream(
                self.generated,
                mix,
                count=self.config.ops,
                seed=self.config.seed,
                query_fraction=self.config.query_fraction,
            )
        return operation_stream(
            self.generated,
            mix,
            count=self.config.ops,
            seed=self.config.seed,
            query_fraction=self.config.query_fraction,
        )


def build_world(
    config: ServeConfig, registry: MetricsRegistry | None = None
) -> ServeWorld:
    """Generate the chain database, build its ASR, wire pool and drift."""
    registry = registry if registry is not None else MetricsRegistry()
    profile, _mix = config.resolved_profile()
    generated = ChainGenerator(config.seed).generate(profile)
    pool = ContextPool(config.capacity, metrics=registry, max_spans=config.max_spans)
    manager_context = pool.acquire()
    manager = ASRManager(generated.db, context=manager_context)
    manager.create(generated.path, Extension.FULL, workers=config.build_workers)
    if config.profile == "queries":
        # The queries profile selects on the chain's Payload terminals;
        # give those selects an ASR over the value-extended path so the
        # service's planner has something to choose.  (Other profiles
        # keep the single chain ASR their committed baselines assume.)
        payload_path = PathExpression(
            generated.db.schema,
            "T0",
            tuple("A" for _ in range(generated.n)) + ("Payload",),
        )
        manager.create(payload_path, Extension.FULL, workers=config.build_workers)
    # Drift predictions come from the *measured* profile of the world we
    # actually built, so the report isolates model error from input error.
    drift = DriftMonitor(CostModelPredictor(measure_profile(generated)), registry)
    # Per-ASR circuit breakers, fed by the manager's quarantine
    # transitions; the planners below filter candidates through them.
    breakers = BreakerBoard(
        threshold=config.breaker_threshold,
        cooldown_s=config.breaker_cooldown_s,
        registry=registry,
    )
    manager.add_state_listener(breakers.on_asr_state)
    # The textual front door: cost-based planning with breaker gating
    # and an epoch-keyed compiled-plan cache.  Drift stays focused on
    # the replay stream's Q_{i,j} shapes, so no drift hook here.
    queries = QueryService(
        generated.db,
        CostBasedPlanner(manager, breakers=breakers),
        store=generated.store,
        cache_size=config.query_cache_size,
        registry=registry,
    )
    tracer = Tracer(
        registry,
        sample_rate=config.trace_sample_rate,
        slow_trace_ms=config.slow_trace_ms,
        capacity=config.trace_capacity,
        seed=config.seed,
    )
    recorder = WorkloadRecorder(generated.path)
    return ServeWorld(
        config,
        registry,
        generated,
        manager,
        pool,
        drift,
        breakers,
        queries,
        tracer,
        recorder,
    )


def execute_operation(
    world: ServeWorld,
    context,
    planner: Planner,
    evaluator: QueryEvaluator,
    op: Operation,
    trace=None,
) -> int:
    """Execute one bound operation's lock-disciplined core; return pages.

    Queries run through the planner (read side of the manager's lock);
    updates — the graph mutation plus its eager maintenance — are one
    atomic unit under :meth:`~repro.asr.manager.ASRManager.exclusive`,
    with pages read off the manager context's private stats (updates are
    serialized by the write lock, so the delta is unambiguous).  This is
    the CPU-bound half of an operation: no simulated device latency is
    charged here, so it is safe to run on an executor thread while the
    event loop prices the returned pages asynchronously.

    ``trace`` threads the request trace into the planner / query
    service (``plan`` / ``cache-hit`` / ``execute`` phases) and books an
    update's mutation + maintenance under ``execute``; the write-lock
    wait is attributed by the :class:`~repro.concurrency.RWLock` hook,
    which reads the *thread-local* active trace — callers activate it.
    """
    manager, drift = world.manager, world.drift
    if op.kind == "query":
        result = planner.execute(op.query, evaluator, trace=trace)
        world.recorder.record_query(op.query.i, op.query.j, op.query.kind)
        return result.total_pages
    if op.kind == "select":
        outcome = world.queries.execute(op.text, context=context, trace=trace)
        # A textual select resolves anchors from terminal values — the
        # chain-path shape of a full backward traversal.
        world.recorder.record_query(0, world.recorder.path.n, "bw")
        return outcome.report.total_pages
    with manager.exclusive():
        with maybe_span(trace, "apply_update+maintain", "execute"):
            before = manager.context.stats.snapshot()
            apply_update(world.generated, op)
            pages = manager.context.stats.delta_since(before).total
    drift.observe_update(op.level, manager.asrs, pages)
    world.recorder.record_update(op.level)
    return pages


def drive_operation(
    world: ServeWorld,
    context,
    planner: Planner,
    evaluator: QueryEvaluator,
    op: Operation,
    device: DeviceModel,
    admitted_at: float | None = None,
) -> OpSample:
    """Execute one bound operation against ``world`` and time it.

    The threaded drive path: :func:`execute_operation` under the lock
    discipline, then the charged pages sleep their simulated device
    latency on *this* thread (:meth:`~repro.device.DeviceModel.charge`,
    outside all locks), and the end-to-end latency lands in the
    registry's ``op.latency_ms`` histogram.

    ``admitted_at`` (a ``perf_counter`` instant) is when the operation
    was picked up for execution; the gap to drive start is published as
    ``queue.wait_ms`` — the same phase the async core's admission queue
    records, so decomposition is comparable across cores.  When the
    world's tracer is enabled the whole operation is traced, with the
    trace origin backdated to the admission instant.
    """
    start = time.perf_counter()
    trace = world.tracer.begin(op.name, op.kind, started=admitted_at)
    if admitted_at is not None:
        wait_ms = (start - admitted_at) * 1e3
        world.registry.observe("queue.wait_ms", wait_ms)
        if trace is not None:
            trace.add_phase("queue", wait_ms)
    try:
        if trace is None:
            pages = execute_operation(world, context, planner, evaluator, op)
            if pages:
                device.charge(pages)  # simulated I/O, outside locks
        else:
            with activate(trace):
                pages = execute_operation(
                    world, context, planner, evaluator, op, trace=trace
                )
                if pages:
                    device.charge(pages, trace=trace)
    except BaseException:
        world.tracer.finish(trace, "error")
        raise
    latency = time.perf_counter() - start
    world.registry.observe(
        "op.latency_ms",
        latency * 1e3,
        exemplar=None if trace is None else trace.trace_id,
        op=op.name,
        kind=op.kind,
    )
    world.tracer.finish(trace)
    return OpSample(op.name, op.kind, latency, pages)


async def drive_operation_async(
    world: ServeWorld,
    workers: "ExecutorWorkers",
    op: Operation,
    device: DeviceModel,
    trace=None,
    admitted_at: float | None = None,
) -> OpSample:
    """The async drive path: executor offload, then an awaited charge.

    The CPU-bound core runs on ``workers``' bounded executor (where the
    RWLock/ContextPool accounting stays on real threads, exactly as in
    the threaded path); the simulated device latency is awaited on the
    event loop, so an operation in its I/O phase holds no thread.

    ``trace`` is begun by the daemon's admission loop (so the queue wait
    is inside the trace); a bench-style caller may pass ``None`` and the
    world's tracer opens one here.  The trace travels into the executor
    as an explicit argument — ``run_in_executor`` does not propagate
    ``contextvars`` — and ``workers.execute`` pins it to the worker
    thread for the deep (lock, ASR) hooks.
    """
    loop = asyncio.get_running_loop()
    start = time.perf_counter()
    if trace is None:
        trace = world.tracer.begin(op.name, op.kind, started=admitted_at)
    try:
        pages = await loop.run_in_executor(
            workers.executor, workers.execute, op, trace
        )
        if pages:
            await device.acharge(pages, trace=trace)  # simulated I/O, on the loop
    except BaseException:
        world.tracer.finish(trace, "error")
        raise
    latency = time.perf_counter() - start
    world.registry.observe(
        "op.latency_ms",
        latency * 1e3,
        exemplar=None if trace is None else trace.trace_id,
        op=op.name,
        kind=op.kind,
    )
    world.tracer.finish(trace)
    return OpSample(op.name, op.kind, latency, pages)


class ExecutorWorkers:
    """A bounded executor whose threads each own a pooled serve context.

    The async serving core offloads :func:`execute_operation` calls
    here.  Each executor thread lazily acquires its own
    :class:`~repro.context.ExecutionContext` from the world's pool (via
    :class:`~repro.concurrency.ThreadLocalContexts`) plus a planner and
    evaluator bound to it — the same per-worker state a threaded client
    owns — so the pool's accounting invariant (shared == retired + Σ
    live) holds identically in both modes.  :meth:`close` shuts the
    executor down and retires every thread's context.
    """

    def __init__(self, world: ServeWorld, max_workers: int) -> None:
        self.world = world
        self.max_workers = max(1, max_workers)
        self.executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="serve-exec"
        )
        self._contexts = ThreadLocalContexts(world.pool)
        self._local = threading.local()

    def _state(self) -> tuple:
        state = getattr(self._local, "state", None)
        context = self._contexts.get()
        if state is None or state[0] is not context:
            planner = Planner(
                self.world.manager,
                drift=self.world.drift,
                breakers=self.world.breakers,
            )
            evaluator = QueryEvaluator(
                self.world.generated.db,
                self.world.generated.store,
                context=context,
            )
            state = (context, planner, evaluator)
            self._local.state = state
        return state

    def execute(self, op: Operation, trace=None) -> int:
        """Run one operation's core on the calling executor thread.

        ``trace`` arrives as an explicit argument from the event loop
        (``run_in_executor`` copies no context) and is pinned to this
        thread for the duration, so the RWLock wait hooks and the
        evaluator's ASR-lookup spans can find it.
        """
        context, planner, evaluator = self._state()
        if trace is None:
            return execute_operation(self.world, context, planner, evaluator, op)
        with activate(trace):
            return execute_operation(
                self.world, context, planner, evaluator, op, trace=trace
            )

    def close(self) -> None:
        """Drain the executor, then retire every thread's context."""
        self.executor.shutdown(wait=True)
        self._contexts.release_all()


def _teardown_world(world: ServeWorld) -> tuple[dict, dict]:
    """Close a finished run's world; return (pool report, accounting)."""
    world.manager.check_consistency()
    world.pool.pool.check_invariants()
    accounting = world.pool.check_accounting(world.registry)
    world.drift.publish(world.registry)
    pool_report = world.pool.describe()
    world.manager.close()
    return pool_report, accounting


def _run_clients(
    config: ServeConfig,
    clients: int,
) -> tuple[_RunOutcome, dict, dict, MetricsRegistry, DriftMonitor]:
    """Replay the stream over ``clients`` threads against a fresh world."""
    world = build_world(config)
    stream = world.stream()
    device = config.device(world.registry)
    samples_per_client: list[list[OpSample]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []

    def client(k: int) -> None:
        try:
            with world.pool.context() as context:
                planner = Planner(
                    world.manager, drift=world.drift, breakers=world.breakers
                )
                evaluator = QueryEvaluator(
                    world.generated.db, world.generated.store, context=context
                )
                for op in stream[k::clients]:
                    admitted = time.perf_counter()
                    samples_per_client[k].append(
                        drive_operation(
                            world,
                            context,
                            planner,
                            evaluator,
                            op,
                            device,
                            admitted_at=admitted,
                        )
                    )
        except BaseException as error:  # surfaced after join
            errors.append(error)

    threads = [threading.Thread(target=client, args=(k,)) for k in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]

    pool_report, accounting = _teardown_world(world)
    outcome = _RunOutcome(
        wall,
        [s for per in samples_per_client for s in per],
        peak_inflight=min(clients, len(stream)),
    )
    return outcome, pool_report, accounting, world.registry, world.drift


def _run_async(
    config: ServeConfig,
    clients: int,
) -> tuple[_RunOutcome, dict, dict, MetricsRegistry, DriftMonitor]:
    """Replay the stream on one event loop with ``clients`` executor threads.

    Admission is bounded by ``config.max_inflight`` concurrent
    operations (the benchmark *waits* at the bound rather than shedding
    — every stream operation must run for the comparison to be fair; the
    daemon's admission queue is where overload sheds).
    """
    world = build_world(config)
    stream = world.stream()
    device = config.device(world.registry)
    workers = ExecutorWorkers(world, clients)
    samples: list[OpSample] = []
    inflight = {"now": 0, "peak": 0}

    async def main() -> None:
        gate = asyncio.Semaphore(max(1, config.max_inflight))

        async def one(op: Operation) -> None:
            async with gate:
                inflight["now"] += 1
                inflight["peak"] = max(inflight["peak"], inflight["now"])
                try:
                    samples.append(
                        await drive_operation_async(world, workers, op, device)
                    )
                finally:
                    inflight["now"] -= 1

        await asyncio.gather(*(one(op) for op in stream))

    started = time.perf_counter()
    try:
        asyncio.run(main())
        wall = time.perf_counter() - started
    finally:
        workers.close()

    pool_report, accounting = _teardown_world(world)
    outcome = _RunOutcome(wall, samples, peak_inflight=inflight["peak"])
    return outcome, pool_report, accounting, world.registry, world.drift


def per_operation(samples: list[OpSample]) -> dict:
    """Per-operation latency table: count and p50/p95/p99/mean in ms."""
    by_name: dict[str, list[float]] = {}
    for sample in samples:
        by_name.setdefault(sample.name, []).append(sample.latency_s)
    report = {}
    for name, latencies in sorted(by_name.items()):
        latencies.sort()
        report[name] = {
            "count": len(latencies),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "mean_ms": round(sum(latencies) / len(latencies) * 1e3, 3),
        }
    return report


def run_serve(config: ServeConfig | None = None) -> dict:
    """Run the serve benchmark; returns the JSON-able report.

    The report embeds the headline run's full metrics snapshot
    (``metrics``) and the cost-model drift report (``drift``) — the data
    behind ``repro stats``.  In async mode three replays of the same
    stream run back to back — single-client threaded, ``clients``-thread
    threaded, and the async event loop — so the report carries both the
    classic ``speedup_vs_single_client`` and the async-vs-threaded
    speedup at equal ``clients`` and device model.
    """
    config = config or ServeConfig()
    profile, _mix = config.resolved_profile()
    single, _, _, _, _ = _run_clients(config, clients=1)
    threaded, pool_report, accounting, registry, drift = _run_clients(
        config, clients=config.clients
    )
    threaded_section = {
        "clients": config.clients,
        "wall_seconds": round(threaded.wall_seconds, 4),
        "throughput_ops_per_s": round(threaded.throughput, 2),
        "speedup_vs_single_client": round(
            threaded.throughput / single.throughput if single.throughput else 0.0, 3
        ),
    }
    if config.use_async:
        headline, pool_report, accounting, registry, drift = _run_async(
            config, clients=config.clients
        )
    else:
        headline = threaded
    speedup = headline.throughput / single.throughput if single.throughput else 0.0
    serve_section = {
        "mode": "async" if config.use_async else "threaded",
        "clients": config.clients,
        "wall_seconds": round(headline.wall_seconds, 4),
        "throughput_ops_per_s": round(headline.throughput, 2),
        "speedup_vs_single_client": round(speedup, 3),
        "peak_inflight": headline.peak_inflight,
    }
    if config.use_async:
        serve_section["max_inflight"] = config.max_inflight
        serve_section["speedup_vs_threaded"] = round(
            headline.throughput / threaded.throughput if threaded.throughput else 0.0,
            3,
        )
    report = {
        "benchmark": "serve",
        "config": {
            "clients": config.clients,
            "ops": config.ops,
            "seed": config.seed,
            "capacity": config.capacity,
            "io_micros": config.io_micros,
            "io_dist": config.io_dist,
            "query_fraction": config.query_fraction,
            "build_workers": config.build_workers,
            "profile": config.profile,
            "async": config.use_async,
            "max_inflight": config.max_inflight,
            "trace_sample_rate": config.trace_sample_rate,
            "slow_trace_ms": config.slow_trace_ms,
        },
        "device": config.latency_model().describe(),
        "profile": {
            "c": list(profile.c),
            "d": list(profile.d),
            "fan": list(profile.fan),
        },
        "single_client": {
            "wall_seconds": round(single.wall_seconds, 4),
            "throughput_ops_per_s": round(single.throughput, 2),
        },
        "serve": serve_section,
        "pool": pool_report,
        "accounting": accounting,
        "operations": per_operation(headline.samples),
        "metrics": registry.snapshot(),
        "drift": drift.report(),
    }
    if config.use_async:
        report["threaded"] = threaded_section
    return report


def write_report(report: dict, path: str) -> None:
    """Write the report as indented JSON (the ``BENCH_serve.json`` artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
