"""Multi-client query serving over one shared bounded buffer pool.

The paper's evaluation is single-client: one operation at a time, page
accesses as the cost measure.  This driver measures the *serving*
dimension instead: ``clients`` worker threads replay a seeded operation
stream (:mod:`repro.workload.opstream`) against one chain database, each
through its own :class:`~repro.context.ExecutionContext` drawn from a
:class:`~repro.concurrency.ContextPool`, all sharing one bounded LRU
pool and the ASR manager's readers-writer lock — queries proceed
concurrently, updates (graph mutation plus eager ASR maintenance) run
under :meth:`~repro.asr.manager.ASRManager.exclusive`.

Page accesses are still the cost *model*; wall-clock needs an I/O model
on top.  Every charged page is priced at ``io_micros`` of simulated
device latency, slept **after** the operation releases its locks — so
stalls overlap across clients exactly as asynchronous I/O would, and
the multi-client throughput gain over a single client is real rather
than a GIL artifact.

The headline report (``BENCH_serve.json``): throughput, speedup versus
the single-client replay of the *same* stream, and per-operation
p50/p95/p99 latencies, plus the shared pool's hit rate and the
accounting invariant (shared totals == Σ per-worker totals).

The benchmark and the long-lived daemon (:mod:`repro.server`) share the
same machinery: :func:`build_world` assembles the generated database,
ASR manager, context pool, and drift monitor into one
:class:`ServeWorld`, and :func:`drive_operation` executes one bound
operation against it (query through the planner, update under the
manager's exclusive lock, simulated I/O outside locks, latency into the
registry).  The benchmark replays the stream once and reports; the
daemon replays it in a loop until signalled.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field

from repro.asr.extensions import Extension
from repro.asr.manager import ASRManager
from repro.concurrency import ContextPool
from repro.costmodel.parameters import ApplicationProfile
from repro.query.evaluator import QueryEvaluator
from repro.query.planner import Planner
from repro.telemetry import CostModelPredictor, DriftMonitor, MetricsRegistry
from repro.workload.generator import (
    ChainGenerator,
    GeneratedDatabase,
    measure_profile,
)
from repro.workload.opstream import Operation, apply_update, operation_stream
from repro.workload.profiles import FIG14_MIX, FIG16_MIX

__all__ = [
    "ServeConfig",
    "ServeWorld",
    "OpSample",
    "build_world",
    "drive_operation",
    "per_operation",
    "run_serve",
    "SMALL_PROFILE",
    "SMALL_FIG16_PROFILE",
    "SERVE_PROFILES",
]

#: A small n=4 chain (the Figure 14 shape, scaled down ~250×) that
#: builds in well under a second yet yields non-trivial ASR trees.
SMALL_PROFILE = ApplicationProfile(
    c=(40, 80, 120, 240, 480),
    d=(36, 64, 96, 200),
    fan=(2, 2, 2, 2),
    size=(120,) * 5,
)

#: The Figure 16 application shape (n = 5, growing extents, the
#: left-complete-vs-full study), scaled to the same build budget as
#: :data:`SMALL_PROFILE`.
SMALL_FIG16_PROFILE = ApplicationProfile(
    c=(20, 20, 40, 80, 320, 480),
    d=(12, 20, 32, 64, 320),
    fan=(2, 2, 2, 2, 2),
    size=(120,) * 6,
)

#: ``--profile`` choices: name -> (generator profile, operation mix).
SERVE_PROFILES = {
    "fig14": (SMALL_PROFILE, FIG14_MIX),
    "fig16": (SMALL_FIG16_PROFILE, FIG16_MIX),
}


@dataclass
class ServeConfig:
    """Knobs of one serve run (all reachable from ``repro bench serve``)."""

    clients: int = 4
    ops: int = 200
    seed: int = 0
    capacity: int = 256
    #: Simulated device latency per charged page, in microseconds.
    io_micros: float = 150.0
    query_fraction: float = 0.8
    build_workers: int = 4
    #: Which application shape to serve (a :data:`SERVE_PROFILES` key).
    profile: str = "fig14"
    #: Per-context span-ring bound (``None`` keeps every span — fine for
    #: one bench replay, set for long-lived daemon workers).
    max_spans: int | None = None

    def resolved_profile(self) -> tuple[ApplicationProfile, object]:
        """The (generator profile, operation mix) pair of :attr:`profile`."""
        try:
            return SERVE_PROFILES[self.profile]
        except KeyError:
            raise ValueError(
                f"unknown serve profile {self.profile!r}; "
                f"known: {sorted(SERVE_PROFILES)}"
            ) from None


@dataclass
class OpSample:
    """One executed operation: what ran, how long, how many pages."""

    name: str
    kind: str
    latency_s: float
    pages: int


@dataclass
class _RunOutcome:
    wall_seconds: float
    samples: list[OpSample] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return len(self.samples) / self.wall_seconds if self.wall_seconds else 0.0


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[index]


@dataclass
class ServeWorld:
    """Everything one serve run drives, bench replay or daemon loop."""

    config: ServeConfig
    registry: MetricsRegistry
    generated: GeneratedDatabase
    manager: ASRManager
    pool: ContextPool
    drift: DriftMonitor

    def stream(self) -> list[Operation]:
        """The seeded operation stream this world's config describes."""
        _profile, mix = self.config.resolved_profile()
        return operation_stream(
            self.generated,
            mix,
            count=self.config.ops,
            seed=self.config.seed,
            query_fraction=self.config.query_fraction,
        )


def build_world(
    config: ServeConfig, registry: MetricsRegistry | None = None
) -> ServeWorld:
    """Generate the chain database, build its ASR, wire pool and drift."""
    registry = registry if registry is not None else MetricsRegistry()
    profile, _mix = config.resolved_profile()
    generated = ChainGenerator(config.seed).generate(profile)
    pool = ContextPool(config.capacity, metrics=registry, max_spans=config.max_spans)
    manager_context = pool.acquire()
    manager = ASRManager(generated.db, context=manager_context)
    manager.create(generated.path, Extension.FULL, workers=config.build_workers)
    # Drift predictions come from the *measured* profile of the world we
    # actually built, so the report isolates model error from input error.
    drift = DriftMonitor(CostModelPredictor(measure_profile(generated)), registry)
    return ServeWorld(config, registry, generated, manager, pool, drift)


def drive_operation(
    world: ServeWorld,
    context,
    planner: Planner,
    evaluator: QueryEvaluator,
    op: Operation,
    io_seconds: float,
) -> OpSample:
    """Execute one bound operation against ``world`` and time it.

    Queries run through the planner (read side of the manager's lock);
    updates — the graph mutation plus its eager maintenance — are one
    atomic unit under :meth:`~repro.asr.manager.ASRManager.exclusive`,
    with pages read off the manager context's private stats (updates are
    serialized by the write lock, so the delta is unambiguous).  Every
    charged page sleeps ``io_seconds`` of simulated device latency
    *after* the locks are released, and the latency lands in the
    registry's ``op.latency_ms`` histogram.
    """
    manager, drift, registry = world.manager, world.drift, world.registry
    start = time.perf_counter()
    if op.kind == "query":
        result = planner.execute(op.query, evaluator)
        pages = result.total_pages
    else:
        with manager.exclusive():
            before = manager.context.stats.snapshot()
            apply_update(world.generated, op)
            pages = manager.context.stats.delta_since(before).total
        drift.observe_update(op.level, manager.asrs, pages)
    if pages and io_seconds:
        time.sleep(pages * io_seconds)  # simulated I/O, outside locks
    latency = time.perf_counter() - start
    registry.observe("op.latency_ms", latency * 1e3, op=op.name, kind=op.kind)
    return OpSample(op.name, op.kind, latency, pages)


def _run_clients(
    config: ServeConfig,
    clients: int,
) -> tuple[_RunOutcome, dict, dict, MetricsRegistry, DriftMonitor]:
    """Replay the stream over ``clients`` threads against a fresh world."""
    world = build_world(config)
    stream = world.stream()
    io_seconds = config.io_micros / 1e6
    samples_per_client: list[list[OpSample]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []

    def client(k: int) -> None:
        try:
            with world.pool.context() as context:
                planner = Planner(world.manager, drift=world.drift)
                evaluator = QueryEvaluator(
                    world.generated.db, world.generated.store, context=context
                )
                for op in stream[k::clients]:
                    samples_per_client[k].append(
                        drive_operation(
                            world, context, planner, evaluator, op, io_seconds
                        )
                    )
        except BaseException as error:  # surfaced after join
            errors.append(error)

    threads = [threading.Thread(target=client, args=(k,)) for k in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]

    world.manager.check_consistency()
    world.pool.pool.check_invariants()
    accounting = world.pool.check_accounting(world.registry)
    world.drift.publish(world.registry)
    pool_report = world.pool.describe()
    world.manager.close()
    outcome = _RunOutcome(wall, [s for per in samples_per_client for s in per])
    return outcome, pool_report, accounting, world.registry, world.drift


def per_operation(samples: list[OpSample]) -> dict:
    """Per-operation latency table: count and p50/p95/p99/mean in ms."""
    by_name: dict[str, list[float]] = {}
    for sample in samples:
        by_name.setdefault(sample.name, []).append(sample.latency_s)
    report = {}
    for name, latencies in sorted(by_name.items()):
        latencies.sort()
        report[name] = {
            "count": len(latencies),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "mean_ms": round(sum(latencies) / len(latencies) * 1e3, 3),
        }
    return report


def run_serve(config: ServeConfig | None = None) -> dict:
    """Run the serve benchmark; returns the JSON-able report.

    The report embeds the multi-client run's full metrics snapshot
    (``metrics``) and the cost-model drift report (``drift``) — the data
    behind ``repro stats``.
    """
    config = config or ServeConfig()
    profile, _mix = config.resolved_profile()
    single, _, _, _, _ = _run_clients(config, clients=1)
    multi, pool_report, accounting, registry, drift = _run_clients(
        config, clients=config.clients
    )
    speedup = multi.throughput / single.throughput if single.throughput else 0.0
    return {
        "benchmark": "serve",
        "config": {
            "clients": config.clients,
            "ops": config.ops,
            "seed": config.seed,
            "capacity": config.capacity,
            "io_micros": config.io_micros,
            "query_fraction": config.query_fraction,
            "build_workers": config.build_workers,
            "profile": config.profile,
        },
        "profile": {
            "c": list(profile.c),
            "d": list(profile.d),
            "fan": list(profile.fan),
        },
        "single_client": {
            "wall_seconds": round(single.wall_seconds, 4),
            "throughput_ops_per_s": round(single.throughput, 2),
        },
        "serve": {
            "clients": config.clients,
            "wall_seconds": round(multi.wall_seconds, 4),
            "throughput_ops_per_s": round(multi.throughput, 2),
            "speedup_vs_single_client": round(speedup, 3),
        },
        "pool": pool_report,
        "accounting": accounting,
        "operations": per_operation(multi.samples),
        "metrics": registry.snapshot(),
        "drift": drift.report(),
    }


def write_report(report: dict, path: str) -> None:
    """Write the report as indented JSON (the ``BENCH_serve.json`` artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
