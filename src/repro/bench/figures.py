"""Per-figure data-series computation.

Each ``figNN_*`` function regenerates the series one figure of the paper
plots, as ``(xs, {series name: values})`` or a flat mapping for the
bar-style figures.  The benchmark files under ``benchmarks/`` wrap these
in pytest-benchmark fixtures and assert the paper's qualitative claims
(who wins, by what factor, where the break-evens fall).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.costmodel.opmix import MixCostModel, OperationMix
from repro.costmodel.parameters import ApplicationProfile
from repro.costmodel.querycost import QueryCostModel
from repro.costmodel.storagecost import StorageModel
from repro.costmodel.updatecost import UpdateCostModel
from repro.workload import profiles as paper

EXTENSIONS = tuple(Extension)

SeriesData = tuple[Sequence[object], Mapping[str, list[float]]]


def _decs(n: int) -> dict[str, Decomposition]:
    return {"bi": Decomposition.binary(n), "nodec": Decomposition.none(n)}


# ----------------------------------------------------------------------
# Figure 4 — access relation sizes per extension and decomposition
# ----------------------------------------------------------------------


def fig04_sizes(profile: ApplicationProfile | None = None) -> dict[str, float]:
    """Storage (KiB) of every extension × {no-dec, binary} (section 4.4.1)."""
    profile = profile or paper.FIG4_PROFILE
    storage = StorageModel(profile)
    result: dict[str, float] = {}
    for extension in EXTENSIONS:
        for label, dec in _decs(profile.n).items():
            result[f"{extension.value}/{label}"] = (
                storage.relation_bytes(extension, dec) / 1024.0
            )
    return result


# ----------------------------------------------------------------------
# Figure 5 — sizes while varying all d_i (no decomposition)
# ----------------------------------------------------------------------


def fig05_varying_d(
    ds: Sequence[float] = (2500, 5000, 7500, 10_000)
) -> SeriesData:
    """Figure 5 series: extension sizes (KiB) while sweeping all ``d_i``."""
    series: dict[str, list[float]] = {ext.value: [] for ext in EXTENSIONS}
    for d in ds:
        storage = StorageModel(paper.fig5_profile(d))
        for extension in EXTENSIONS:
            series[extension.value].append(
                storage.relation_bytes(extension, Decomposition.none(4)) / 1024.0
            )
    return ds, series


# ----------------------------------------------------------------------
# Figure 6 — Q_{0,4}(bw) per extension and decomposition
# ----------------------------------------------------------------------


def fig06_backward_query() -> dict[str, float]:
    """Figure 6: Q_{0,4}(bw) cost per design over the (corrected) profile."""
    model = QueryCostModel(paper.FIG6_PROFILE)
    result = {"nosupport": model.qnas(0, 4, "bw")}
    for extension in EXTENSIONS:
        for label, dec in _decs(4).items():
            result[f"{extension.value}/{label}"] = model.q(extension, 0, 4, "bw", dec)
    return result


# ----------------------------------------------------------------------
# Figure 7 — Q_{0,4}(bw) under varying object size (binary decomposition)
# ----------------------------------------------------------------------


def fig07_object_size(
    sizes: Sequence[float] = (100, 200, 300, 400, 500, 600, 700, 800)
) -> SeriesData:
    """Figure 7 series: Q_{0,4}(bw) cost while sweeping object sizes."""
    series: dict[str, list[float]] = {"nosupport": []}
    for extension in EXTENSIONS:
        series[extension.value] = []
    dec = Decomposition.binary(4)
    for size in sizes:
        model = QueryCostModel(paper.fig7_profile(size))
        series["nosupport"].append(model.qnas(0, 4, "bw"))
        for extension in EXTENSIONS:
            series[extension.value].append(model.q(extension, 0, 4, "bw", dec))
    return sizes, series


# ----------------------------------------------------------------------
# Figure 8 — which queries are supported: Q_{0,3}(bw) vs d_i
# ----------------------------------------------------------------------


def fig08_partial_query(
    ds: Sequence[float] = (10, 100, 1000, 2500, 5000, 7500, 10_000)
) -> SeriesData:
    """Figure 8 series: Q_{0,3}(bw) per design while sweeping ``d_i``."""
    series: dict[str, list[float]] = {
        "nosupport": [],
        "full/bi": [],
        "full/nodec": [],
        "left/bi": [],
        "left/nodec": [],
        "can (any dec)": [],
        "right (any dec)": [],
    }
    for d in ds:
        model = QueryCostModel(paper.fig8_profile(d))
        series["nosupport"].append(model.qnas(0, 3, "bw"))
        for extension in (Extension.FULL, Extension.LEFT):
            for label, dec in _decs(4).items():
                series[f"{extension.value}/{label}"].append(
                    model.q(extension, 0, 3, "bw", dec)
                )
        # Canonical and right cannot evaluate Q_{0,3}; Eq. 35 falls back.
        series["can (any dec)"].append(
            model.q(Extension.CANONICAL, 0, 3, "bw", Decomposition.binary(4))
        )
        series["right (any dec)"].append(
            model.q(Extension.RIGHT, 0, 3, "bw", Decomposition.binary(4))
        )
    return ds, series


# ----------------------------------------------------------------------
# Figure 9 — Q_{0,4}(bw) vs fan-out, canonical/left-favouring profile
# ----------------------------------------------------------------------


def fig09_fanout(
    fans: Sequence[float] = (10, 25, 50, 75, 100)
) -> SeriesData:
    """Figure 9 series: Q_{0,4}(bw) per extension while sweeping fan-out."""
    series: dict[str, list[float]] = {"nosupport": []}
    for extension in EXTENSIONS:
        series[extension.value] = []
    dec_cache = Decomposition.binary(4)
    for fan in fans:
        model = QueryCostModel(paper.fig9_profile(fan))
        series["nosupport"].append(model.qnas(0, 4, "bw"))
        for extension in EXTENSIONS:
            series[extension.value].append(model.q(extension, 0, 4, "bw", dec_cache))
    return fans, series


# ----------------------------------------------------------------------
# Figures 11/12 — update costs ins_3, two fixed profiles
# ----------------------------------------------------------------------


def fig11_update_costs(
    profile: ApplicationProfile | None = None, i: int = 3
) -> dict[str, float]:
    """Figure 11: ``ins_i`` update cost per design (default ``i = 3``)."""
    profile = profile or paper.FIG11_PROFILE
    model = UpdateCostModel(profile)
    result: dict[str, float] = {}
    for extension in EXTENSIONS:
        for label, dec in _decs(profile.n).items():
            result[f"{extension.value}/{label}"] = model.total(extension, i, dec)
    return result


def fig12_update_costs() -> dict[str, float]:
    """Figure 12: ``ins_3`` update cost under the second fixed profile."""
    return fig11_update_costs(paper.FIG12_PROFILE, i=3)


# ----------------------------------------------------------------------
# Figure 13 — update costs ins_1 under varying object sizes
# ----------------------------------------------------------------------


def fig13_update_sizes(
    sizes: Sequence[float] = (100, 200, 300, 400, 500, 600, 700, 800)
) -> SeriesData:
    """Figure 13 series: ``ins_1`` update cost while sweeping object sizes."""
    series: dict[str, list[float]] = {ext.value: [] for ext in EXTENSIONS}
    dec = Decomposition.binary(4)
    for size in sizes:
        model = UpdateCostModel(paper.fig13_profile(size))
        for extension in EXTENSIONS:
            series[extension.value].append(model.total(extension, 1, dec))
    return sizes, series


# ----------------------------------------------------------------------
# Figures 14/15 — operation mix vs P_up
# ----------------------------------------------------------------------


def _mix_series(
    profile: ApplicationProfile,
    mix: OperationMix,
    designs: Mapping[str, tuple[Extension, Decomposition]],
    p_ups: Sequence[float],
) -> SeriesData:
    model = MixCostModel(profile)
    series: dict[str, list[float]] = {"nosupport": []}
    for label in designs:
        series[label] = []
    for p_up in p_ups:
        series["nosupport"].append(1.0)
        for label, (extension, dec) in designs.items():
            series[label].append(model.normalized_cost(extension, dec, mix, p_up))
    return p_ups, series


_P_UPS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def fig14_opmix(p_ups: Sequence[float] = _P_UPS) -> SeriesData:
    """Figure 14 series: normalized mix cost vs ``P_up`` (binary dec)."""
    dec = Decomposition.binary(4)
    designs = {ext.value: (ext, dec) for ext in EXTENSIONS}
    return _mix_series(paper.FIG11_PROFILE, paper.FIG14_MIX, designs, p_ups)


def fig14_break_evens() -> dict[str, float | None]:
    """Figure 14's two break-even update probabilities."""
    model = MixCostModel(paper.FIG11_PROFILE)
    dec = Decomposition.binary(4)
    return {
        "left_vs_full": model.break_even(
            (Extension.LEFT, dec), (Extension.FULL, dec), paper.FIG14_MIX
        ),
        "nosupport_vs_full": model.break_even(
            None, (Extension.FULL, dec), paper.FIG14_MIX
        ),
    }


def fig15_opmix(p_ups: Sequence[float] = _P_UPS) -> SeriesData:
    """Figure 15 series: the Figure 14 mix under decomposition (0,3,4)."""
    dec = Decomposition.of(0, 3, 4)
    designs = {f"{ext.value}/(0,3,4)": (ext, dec) for ext in EXTENSIONS}
    return _mix_series(paper.FIG11_PROFILE, paper.FIG14_MIX, designs, p_ups)


# ----------------------------------------------------------------------
# Figure 16 — left vs full, n = 5, two decompositions
# ----------------------------------------------------------------------


def fig16_left_vs_full(p_ups: Sequence[float] = _P_UPS) -> SeriesData:
    """Figure 16 series: left vs full under two decompositions (n = 5)."""
    binary = Decomposition.binary(5)
    coarse = Decomposition.of(0, 3, 4, 5)
    designs = {
        "left/bi": (Extension.LEFT, binary),
        "full/bi": (Extension.FULL, binary),
        "left/(0,3,4,5)": (Extension.LEFT, coarse),
        "full/(0,3,4,5)": (Extension.FULL, coarse),
    }
    return _mix_series(paper.FIG16_PROFILE, paper.FIG16_MIX, designs, p_ups)


# ----------------------------------------------------------------------
# Figure 17 — right vs full, n = 5, two decompositions
# ----------------------------------------------------------------------


def fig17_right_vs_full(
    p_ups: Sequence[float] = (0.001, 0.0025, 0.005, 0.0075, 0.01, 0.05, 0.1, 0.5, 0.9)
) -> SeriesData:
    """Figure 17 series: right vs full under two decompositions (n = 5)."""
    binary = Decomposition.binary(5)
    coarse = Decomposition.of(0, 3, 5)
    designs = {
        "right/bi": (Extension.RIGHT, binary),
        "full/bi": (Extension.FULL, binary),
        "right/(0,3,5)": (Extension.RIGHT, coarse),
        "full/(0,3,5)": (Extension.FULL, coarse),
    }
    return _mix_series(paper.FIG17_PROFILE, paper.FIG17_MIX, designs, p_ups)


def fig17_break_even() -> float | None:
    """Figure 17's right-vs-full break-even under decomposition (0,3,5)."""
    model = MixCostModel(paper.FIG17_PROFILE)
    coarse = Decomposition.of(0, 3, 5)
    return model.break_even(
        (Extension.RIGHT, coarse), (Extension.FULL, coarse), paper.FIG17_MIX
    )
