"""The object base: typed instances, extents, variables, updates, events.

:class:`ObjectBase` is the in-memory store of GOM instances.  It enforces
strong typing (attribute values must conform to the declared type, where
the declared type is an *upper bound* — subtype instances are accepted),
maintains per-type extents, database variables (the paper's
``var OurRobots: ROBOT_SET``), and a reverse-reference index used by
backward traversal and by index maintenance.

Every primitive mutation emits an event (:mod:`repro.gom.events`) after it
has been applied, so that access support relations can be maintained
incrementally (paper, section 6).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.errors import ObjectBaseError, TypingError
from repro.gom.events import (
    AttributeSet,
    Event,
    ObjectCreated,
    ObjectDeleted,
    SetInserted,
    SetRemoved,
)
from repro.gom.objects import OID, Cell, ObjectInstance
from repro.gom.schema import Schema
from repro.gom.types import NULL, AtomicType, ListType, SetType, TupleType


class ObjectBase:
    """A strongly typed, event-publishing object store.

    Parameters
    ----------
    schema:
        The type catalog instances must conform to.  The schema may still
        be extended after the object base is created.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._objects: dict[OID, ObjectInstance] = {}
        self._extents: dict[str, set[OID]] = {}
        self._variables: dict[str, tuple[Cell, str | None]] = {}
        self._referrers: dict[OID, set[OID]] = {}
        self._listeners: list[Callable[[Event], None]] = []
        self._next_oid = 0

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable[[Event], None]) -> None:
        """Register ``listener`` to receive every subsequent change event."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[Event], None]) -> None:
        self._listeners.remove(listener)

    def _emit(self, event: Event) -> None:
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------------
    # instantiation
    # ------------------------------------------------------------------

    def _allocate(self, type_name: str, value: Any) -> OID:
        oid = OID(self._next_oid)
        self._next_oid += 1
        self._objects[oid] = ObjectInstance(oid, type_name, value)
        self._extents.setdefault(type_name, set()).add(oid)
        return oid

    def new(self, type_name: str, **attributes: Any) -> OID:
        """Instantiate a tuple-structured type.

        All attributes (including inherited ones) are initialized to NULL,
        then the keyword arguments are applied through the type-checked
        :meth:`set_attr` path.  Returns the new object's OID.
        """
        tuple_type = self.schema.tuple_type(type_name)
        all_attrs = self.schema.attributes_of(tuple_type.name)
        value = {attr: NULL for attr in all_attrs}
        oid = self._allocate(type_name, value)
        self._emit(ObjectCreated(oid, type_name))
        for attr, attr_value in attributes.items():
            self.set_attr(oid, attr, attr_value)
        return oid

    def new_set(self, type_name: str, elements: Iterable[Cell] = ()) -> OID:
        """Instantiate a set-structured type, initially empty, then fill it."""
        set_type = self.schema.collection_type(type_name)
        if not isinstance(set_type, SetType):
            raise TypingError(f"{type_name!r} is not a set type")
        oid = self._allocate(type_name, set())
        self._emit(ObjectCreated(oid, type_name))
        for element in elements:
            self.set_insert(oid, element)
        return oid

    def new_list(self, type_name: str, elements: Iterable[Cell] = ()) -> OID:
        """Instantiate a list-structured type, initially empty, then extend it."""
        list_type = self.schema.collection_type(type_name)
        if not isinstance(list_type, ListType):
            raise TypingError(f"{type_name!r} is not a list type")
        oid = self._allocate(type_name, [])
        self._emit(ObjectCreated(oid, type_name))
        for element in elements:
            self.list_append(oid, element)
        return oid

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def __contains__(self, oid: OID) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def get(self, oid: OID) -> ObjectInstance:
        """Dereference ``oid`` or raise :class:`ObjectBaseError`."""
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectBaseError(f"dangling OID {oid!r}") from None

    def type_of(self, oid: OID) -> str:
        return self.get(oid).type_name

    def attr(self, oid: OID, attribute: str) -> Cell:
        """Read ``oid.attribute`` (NULL when undefined)."""
        instance = self.get(oid)
        value = instance.value
        if not isinstance(value, dict):
            raise ObjectBaseError(f"{oid!r} is not tuple-structured")
        if attribute not in value:
            # The slot may have been added by schema evolution after this
            # object was created (Schema.add_attribute): materialize it
            # lazily as NULL.
            if attribute in self.schema.attributes_of(instance.type_name):
                value[attribute] = NULL
                return NULL
            raise ObjectBaseError(
                f"{instance.type_name!r} object {oid!r} has no attribute "
                f"{attribute!r}"
            )
        return value[attribute]

    def members(self, oid: OID) -> frozenset[Cell] | tuple[Cell, ...]:
        """The elements of a set or list object, as an immutable snapshot."""
        value = self.get(oid).value
        if isinstance(value, set):
            return frozenset(value)
        if isinstance(value, list):
            return tuple(value)
        raise ObjectBaseError(f"{oid!r} is not collection-structured")

    def extent(self, type_name: str, include_subtypes: bool = True) -> set[OID]:
        """All OIDs of instances of ``type_name`` (and subtypes by default)."""
        self.schema.lookup(type_name)
        result = set(self._extents.get(type_name, ()))
        if include_subtypes:
            for sub in self.schema.subtypes_of(type_name) if self._is_tuple(type_name) else ():
                result |= self._extents.get(sub, set())
        return result

    def _is_tuple(self, type_name: str) -> bool:
        return isinstance(self.schema.lookup(type_name), TupleType)

    def referrers(self, oid: OID) -> set[OID]:
        """OIDs of objects that reference ``oid`` via an attribute or membership."""
        return set(self._referrers.get(oid, ()))

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------

    def set_var(self, name: str, value: Cell, type_name: str | None = None) -> None:
        """Bind a database variable, e.g. ``var Mercedes: Company``."""
        if type_name is not None:
            self._check_conforms(value, type_name, f"variable {name!r}")
        self._variables[name] = (value, type_name)

    def get_var(self, name: str) -> Cell:
        try:
            return self._variables[name][0]
        except KeyError:
            raise ObjectBaseError(f"unknown variable {name!r}") from None

    def var_type(self, name: str) -> str | None:
        try:
            return self._variables[name][1]
        except KeyError:
            raise ObjectBaseError(f"unknown variable {name!r}") from None

    # ------------------------------------------------------------------
    # typing
    # ------------------------------------------------------------------

    def _check_conforms(self, value: Cell, declared: str, where: str) -> None:
        if value is NULL:
            return
        declared_type = self.schema.lookup(declared)
        if isinstance(declared_type, AtomicType):
            if isinstance(value, OID):
                raise TypingError(
                    f"{where}: expected atomic {declared!r}, got OID {value!r}"
                )
            if not declared_type.accepts(value):
                raise TypingError(
                    f"{where}: value {value!r} is not a legal {declared!r}"
                )
            return
        if not isinstance(value, OID):
            raise TypingError(
                f"{where}: expected an object of type {declared!r}, got the "
                f"atomic value {value!r}"
            )
        actual = self.type_of(value)
        if not self.schema.is_subtype(actual, declared):
            raise TypingError(
                f"{where}: object {value!r} has type {actual!r}, which is not "
                f"a subtype of the declared {declared!r}"
            )

    # ------------------------------------------------------------------
    # reverse-reference bookkeeping
    # ------------------------------------------------------------------

    def _ref_added(self, source: OID, target: Cell) -> None:
        if isinstance(target, OID):
            self._referrers.setdefault(target, set()).add(source)

    def _ref_removed(self, source: OID, target: Cell) -> None:
        if isinstance(target, OID):
            holders = self._referrers.get(target)
            if holders is not None and not self._still_references(source, target):
                holders.discard(source)
                if not holders:
                    del self._referrers[target]

    def _still_references(self, source: OID, target: Cell) -> bool:
        value = self._objects[source].value
        if isinstance(value, dict):
            return target in value.values()
        return target in value

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def set_attr(self, oid: OID, attribute: str, value: Cell) -> None:
        """Execute ``oid.attribute := value`` with strong-typing checks."""
        instance = self.get(oid)
        attrs = self.schema.attributes_of(instance.type_name)
        if attribute not in attrs:
            raise ObjectBaseError(
                f"{instance.type_name!r} has no attribute {attribute!r}"
            )
        self._check_conforms(value, attrs[attribute], f"{oid!r}.{attribute}")
        old = instance.value.get(attribute, NULL)
        if old == value and type(old) is type(value):
            return
        instance.value[attribute] = value
        self._ref_removed(oid, old)
        self._ref_added(oid, value)
        self._emit(AttributeSet(oid, instance.type_name, attribute, old, value))

    def set_insert(self, set_oid: OID, element: Cell) -> bool:
        """Execute ``insert element into set_oid`` (the paper's ``ins``).

        Returns True when the element was actually added (sets ignore
        duplicate insertions).
        """
        instance = self.get(set_oid)
        set_type = self.schema.lookup(instance.type_name)
        if not isinstance(set_type, SetType):
            raise ObjectBaseError(f"{set_oid!r} is not set-structured")
        if element is NULL:
            raise TypingError("NULL cannot be a set member")
        self._check_conforms(element, set_type.element_type, f"insert into {set_oid!r}")
        if element in instance.value:
            return False
        instance.value.add(element)
        self._ref_added(set_oid, element)
        self._emit(
            SetInserted(set_oid, instance.type_name, element, self._owner_of(set_oid))
        )
        return True

    def set_remove(self, set_oid: OID, element: Cell) -> bool:
        """Execute ``remove element from set_oid``; True when it was a member."""
        instance = self.get(set_oid)
        if not isinstance(self.schema.lookup(instance.type_name), SetType):
            raise ObjectBaseError(f"{set_oid!r} is not set-structured")
        if element not in instance.value:
            return False
        instance.value.discard(element)
        self._ref_removed(set_oid, element)
        self._emit(
            SetRemoved(set_oid, instance.type_name, element, self._owner_of(set_oid))
        )
        return True

    def list_append(self, list_oid: OID, element: Cell) -> None:
        """Append to a list object (lists are treated like sets by ASRs)."""
        instance = self.get(list_oid)
        list_type = self.schema.lookup(instance.type_name)
        if not isinstance(list_type, ListType):
            raise ObjectBaseError(f"{list_oid!r} is not list-structured")
        self._check_conforms(element, list_type.element_type, f"append to {list_oid!r}")
        instance.value.append(element)
        self._ref_added(list_oid, element)
        self._emit(
            SetInserted(list_oid, instance.type_name, element, self._owner_of(list_oid))
        )

    def _owner_of(self, collection_oid: OID) -> OID | None:
        """The unique tuple object holding ``collection_oid``, if unambiguous."""
        holders = [
            source
            for source in self._referrers.get(collection_oid, ())
            if isinstance(self._objects[source].value, dict)
        ]
        if len(holders) == 1:
            return holders[0]
        return None

    def delete(self, oid: OID) -> None:
        """Remove ``oid``, nulling out every reference that points at it.

        Incoming attribute references become NULL; incoming collection
        memberships are removed.  Each induced change emits its own event
        before the final :class:`ObjectDeleted`.
        """
        instance = self.get(oid)
        for source in list(self._referrers.get(oid, ())):
            source_value = self._objects[source].value
            if isinstance(source_value, dict):
                for attr, cell in list(source_value.items()):
                    if cell == oid:
                        self.set_attr(source, attr, NULL)
            elif isinstance(source_value, set):
                self.set_remove(source, oid)
            else:
                while oid in source_value:
                    source_value.remove(oid)
                    self._ref_removed(source, oid)
                    self._emit(
                        SetRemoved(
                            source,
                            self._objects[source].type_name,
                            oid,
                            self._owner_of(source),
                        )
                    )
        # Drop outgoing references from the reverse index.
        value = instance.value
        targets = value.values() if isinstance(value, dict) else list(value)
        for target in targets:
            if isinstance(target, OID):
                holders = self._referrers.get(target)
                if holders is not None:
                    holders.discard(oid)
                    if not holders:
                        del self._referrers[target]
        del self._objects[oid]
        self._extents[instance.type_name].discard(oid)
        self._referrers.pop(oid, None)
        self._emit(ObjectDeleted(oid, instance.type_name, value))

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------

    def verify_integrity(self) -> list[str]:
        """Check structural invariants; returns a list of problems.

        Verified: every stored cell conforms to its declared type, extents
        match the stored objects, no reference dangles, and the
        reverse-reference index agrees with a recomputation.  An empty
        list means the object base is consistent (the test suite asserts
        this after randomized update streams).
        """
        problems: list[str] = []
        recomputed: dict[OID, set[OID]] = {}
        for instance in self._objects.values():
            oid, type_name, value = instance.oid, instance.type_name, instance.value
            if oid not in self._extents.get(type_name, set()):
                problems.append(f"{oid!r} missing from extent of {type_name!r}")
            if isinstance(value, dict):
                declared = self.schema.attributes_of(type_name)
                for attr, cell in value.items():
                    if attr not in declared:
                        problems.append(f"{oid!r} stores undeclared {attr!r}")
                        continue
                    if isinstance(cell, OID) and cell not in self._objects:
                        problems.append(f"{oid!r}.{attr} dangles to {cell!r}")
                        continue
                    try:
                        self._check_conforms(cell, declared[attr], f"{oid!r}.{attr}")
                    except TypingError as error:
                        problems.append(str(error))
                    if isinstance(cell, OID):
                        recomputed.setdefault(cell, set()).add(oid)
            else:
                collection_type = self.schema.lookup(type_name)
                element_type = collection_type.element_type  # type: ignore[union-attr]
                for cell in value:
                    if isinstance(cell, OID) and cell not in self._objects:
                        problems.append(f"{oid!r} member {cell!r} dangles")
                        continue
                    try:
                        self._check_conforms(cell, element_type, f"member of {oid!r}")
                    except TypingError as error:
                        problems.append(str(error))
                    if isinstance(cell, OID):
                        recomputed.setdefault(cell, set()).add(oid)
        for type_name, extent in self._extents.items():
            for oid in extent:
                if oid not in self._objects:
                    problems.append(f"extent of {type_name!r} lists dead {oid!r}")
                elif self._objects[oid].type_name != type_name:
                    problems.append(f"{oid!r} filed under wrong extent {type_name!r}")
        stored = {oid: holders for oid, holders in self._referrers.items() if holders}
        if stored != recomputed:
            for oid in set(stored) | set(recomputed):
                if stored.get(oid, set()) != recomputed.get(oid, set()):
                    problems.append(
                        f"referrer index drift at {oid!r}: stored "
                        f"{sorted(stored.get(oid, set()), key=lambda o: o.value)} vs "
                        f"actual {sorted(recomputed.get(oid, set()), key=lambda o: o.value)}"
                    )
        return problems

    def objects(self) -> Iterator[ObjectInstance]:
        """Iterate over all stored instances (order unspecified)."""
        return iter(self._objects.values())

    def oids(self) -> Iterator[OID]:
        return iter(self._objects.keys())
