"""The GOM type system (paper, section 2).

GOM provides a built-in collection of elementary *value* types whose
instances carry no identity (their value is their identity), and three
type constructors:

* the **tuple** constructor ``[a1: t1, ..., an: tn]`` aggregating typed
  attributes, with single or multiple inheritance from supertypes;
* the **set** constructor ``{t}``;
* the **list** constructor ``<t>``.

Types are referenced *by name*; resolution happens through
:class:`repro.gom.schema.Schema`, which allows mutually recursive type
definitions (a ``Product`` may reference a ``BasePartSET`` defined later).

The module also defines :data:`NULL`, the undefined value that every
attribute of a freshly instantiated tuple object holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import SchemaError


class Null:
    """The undefined value of GOM.

    A singleton: every occurrence of an undefined attribute is *the* value
    :data:`NULL`.  It is falsy, compares equal only to itself, and renders
    as ``NULL`` — matching the paper's relation listings, e.g. the tuple
    ``(i2, i5, i9, NULL, NULL, NULL)`` of the full extension example.
    """

    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL"

    def __copy__(self) -> "Null":
        return self

    def __deepcopy__(self, memo: dict) -> "Null":
        return self

    def __reduce__(self):
        return (Null, ())


#: The one undefined value.  ``obj.attr is NULL`` tests definedness.
NULL = Null()


class GomType:
    """Abstract base of all GOM types.

    Concrete subclasses are :class:`AtomicType`, :class:`TupleType`,
    :class:`SetType` and :class:`ListType`.  A type is identified by its
    ``name``; two types with the same name are the same type as far as the
    schema is concerned.
    """

    name: str

    def is_atomic(self) -> bool:
        return isinstance(self, AtomicType)

    def is_tuple(self) -> bool:
        return isinstance(self, TupleType)

    def is_set(self) -> bool:
        return isinstance(self, SetType)

    def is_list(self) -> bool:
        return isinstance(self, ListType)

    def is_collection(self) -> bool:
        return self.is_set() or self.is_list()


@dataclass(frozen=True)
class AtomicType(GomType):
    """A built-in elementary value type (``STRING``, ``INTEGER``, ...).

    ``pytypes`` lists the Python classes whose instances are acceptable
    values; ``byte_size`` is the nominal storage footprint used by the
    storage simulator when an atomic value terminates a path (the cost
    model's ``OIDsize`` applies to OID columns only, so atomic tail
    columns need their own size).
    """

    name: str
    pytypes: tuple[type, ...]
    byte_size: int = 8

    def accepts(self, value: Any) -> bool:
        """Return True when ``value`` is a legal instance of this type.

        ``bool`` is rejected for ``INTEGER`` despite being an ``int``
        subclass, because GOM distinguishes BOOLEAN from INTEGER.
        """
        if isinstance(value, bool) and bool not in self.pytypes:
            return False
        return isinstance(value, self.pytypes)

    def __repr__(self) -> str:
        return f"AtomicType({self.name})"


STRING = AtomicType("STRING", (str,), byte_size=16)
CHAR = AtomicType("CHAR", (str,), byte_size=1)
INTEGER = AtomicType("INTEGER", (int,), byte_size=8)
DECIMAL = AtomicType("DECIMAL", (int, float), byte_size=8)
FLOAT = AtomicType("FLOAT", (float,), byte_size=8)
BOOLEAN = AtomicType("BOOLEAN", (bool,), byte_size=1)

#: The atomic types every fresh :class:`~repro.gom.schema.Schema` knows.
BUILTIN_ATOMIC_TYPES: tuple[AtomicType, ...] = (
    STRING,
    CHAR,
    INTEGER,
    DECIMAL,
    FLOAT,
    BOOLEAN,
)


@dataclass(frozen=True)
class TupleType(GomType):
    """A tuple-structured type ``[a1: t1, ..., an: tn]`` with supertypes.

    ``attributes`` maps each *locally declared* attribute name to the name
    of its constrained type; inherited attributes are resolved by the
    schema (:meth:`repro.gom.schema.Schema.attributes_of`).  Attribute
    names must be pairwise distinct, which the constructor guarantees by
    using a mapping; clashes with inherited attributes are detected at
    schema registration time.
    """

    name: str
    attributes: Mapping[str, str]
    supertypes: tuple[str, ...] = ()
    #: Nominal object size in bytes for the storage simulator.  When zero,
    #: the simulator derives a size from the attribute count.
    byte_size: int = 0

    def __post_init__(self) -> None:
        if self.name in self.supertypes:
            raise SchemaError(f"type {self.name!r} cannot be its own supertype")
        object.__setattr__(self, "attributes", dict(self.attributes))
        object.__setattr__(self, "supertypes", tuple(self.supertypes))

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.attributes.items())), self.supertypes))

    def __repr__(self) -> str:
        attrs = ", ".join(f"{a}: {t}" for a, t in self.attributes.items())
        sup = f" supertypes ({', '.join(self.supertypes)})" if self.supertypes else ""
        return f"TupleType({self.name}{sup} [{attrs}])"


@dataclass(frozen=True)
class SetType(GomType):
    """A set-structured type ``{element_type}``.

    Set instances are unordered collections of distinct members, each
    constrained to ``element_type`` (or any subtype of it).  Powersets are
    not permitted (paper, footnote 2): the element type of a set must not
    itself be a set or list type — the schema enforces this on
    registration.
    """

    name: str
    element_type: str

    def __repr__(self) -> str:
        return f"SetType({self.name} = {{{self.element_type}}})"


@dataclass(frozen=True)
class ListType(GomType):
    """A list-structured type ``<element_type>``.

    The paper notes that access support on lists is analogous to sets; the
    library supports list-valued steps in path expressions by treating a
    list occurrence exactly like a set occurrence (the list OID column is
    followed by the element column).
    """

    name: str
    element_type: str

    def __repr__(self) -> str:
        return f"ListType({self.name} = <{self.element_type}>)"


def type_names(types: Sequence[GomType]) -> list[str]:
    """Return the names of ``types`` in order (convenience helper)."""
    return [t.name for t in types]
