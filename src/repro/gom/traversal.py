"""Object-graph traversal along a path expression.

These helpers enumerate (partial) *path instantiations*: sequences of
cells — OIDs, collection OIDs at set occurrences, atomic terminal values —
aligned with the columns of the access support relation of a path
(Definition 3.2).  They are the ground truth the ASR machinery is
validated against, the engine behind *unsupported* query evaluation
(section 5.6), and the search step of incremental index maintenance
(section 6.1).

Forward traversal follows the uni-directional references stored in the
objects; backward traversal uses the object base's reverse-reference
index (an implementation convenience — the *cost model* continues to
charge backward searches as exhaustive scans, exactly as the paper does,
because the paper's object representation has no such index).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import PathError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID, Cell
from repro.gom.paths import PathExpression
from repro.gom.types import NULL


def forward_rows(
    db: ObjectBase, path: PathExpression, i: int, start: Cell
) -> list[tuple[Cell, ...]]:
    """All maximal partial paths from ``start`` (of type ``t_i``) forward.

    Returns tuples covering the ASR columns ``column_of(i) .. m``; where a
    path ends early (undefined attribute, or the empty-set rule of
    Definition 3.3) the remaining cells are NULL.  For ``start`` values of
    atomic type (``i == n`` with an atomic terminal) the single row
    ``(start,)`` is returned.
    """
    if not 0 <= i <= path.n:
        raise PathError(f"start index {i} out of range 0..{path.n}")
    if start is NULL:
        return []
    return list(_extend_forward(db, path, i, start))


def _extend_forward(
    db: ObjectBase, path: PathExpression, i: int, cell: Cell
) -> Iterator[tuple[Cell, ...]]:
    if i == path.n:
        yield (cell,)
        return
    step = path.steps[i]
    pad = _null_pad(path, i)
    if not isinstance(cell, OID):
        # Atomic cell mid-path cannot happen for valid paths; defensive.
        yield (cell,) + pad
        return
    value = db.attr(cell, step.attribute)
    if value is NULL:
        yield (cell,) + pad
        return
    if step.is_set_occurrence:
        assert isinstance(value, OID)
        members = db.members(value)
        if not members:
            # Empty-set rule (Def. 3.3): (id(o), id(set), NULL) and NULL
            # padding for every column after the element column.
            yield (cell, value, NULL) + _null_pad(path, i + 1)
            return
        for member in sorted(members, key=_cell_sort_key):
            for tail in _extend_forward(db, path, i + 1, member):
                yield (cell, value) + tail
    else:
        for tail in _extend_forward(db, path, i + 1, value):
            yield (cell,) + tail


def _null_pad(path: PathExpression, i: int) -> tuple[Cell, ...]:
    """NULL cells for all ASR columns strictly right of ``column_of(i)``."""
    return (NULL,) * (path.m - path.column_of(i))


def _null_pad_left(path: PathExpression, j: int) -> tuple[Cell, ...]:
    """NULL cells for all ASR columns strictly left of ``column_of(j)``."""
    return (NULL,) * path.column_of(j)


def _cell_sort_key(cell: Cell):
    return (cell.value,) if isinstance(cell, OID) else (repr(cell),)


def backward_rows(
    db: ObjectBase, path: PathExpression, j: int, end: Cell
) -> list[tuple[Cell, ...]]:
    """All maximal partial paths *ending* at ``end`` (of type ``t_j``).

    Returns tuples covering the ASR columns ``0 .. column_of(j)``; where a
    path cannot be extended further left, the leading cells are NULL.
    """
    if not 0 <= j <= path.n:
        raise PathError(f"end index {j} out of range 0..{path.n}")
    if end is NULL:
        return []
    return list(_extend_backward(db, path, j, end))


def _extend_backward(
    db: ObjectBase, path: PathExpression, j: int, cell: Cell
) -> Iterator[tuple[Cell, ...]]:
    if j == 0:
        yield (cell,)
        return
    step = path.steps[j - 1]
    predecessors = _predecessor_pairs(db, path, j, cell)
    if not predecessors:
        yield _null_pad_left(path, j) + (cell,)
        return
    for owner, via in predecessors:
        middle = (via, cell) if via is not None else (cell,)
        for head in _extend_backward(db, path, j - 1, owner):
            yield head + middle


def _predecessor_pairs(
    db: ObjectBase, path: PathExpression, j: int, cell: Cell
) -> list[tuple[OID, OID | None]]:
    """Objects of type ``t_{j-1}`` reaching ``cell`` via ``A_j``.

    Returns ``(owner, collection_oid)`` pairs; ``collection_oid`` is None
    for single-valued steps.
    """
    step = path.steps[j - 1]
    pairs: list[tuple[OID, OID | None]] = []
    if step.is_set_occurrence:
        if not isinstance(cell, OID):
            # Atomic set elements: scan collections of the right type.
            collections = [
                coll
                for coll in db.extent(step.collection_type or "", False)
                if cell in db.members(coll)
            ]
        else:
            collections = [
                coll
                for coll in db.referrers(cell)
                if db.type_of(coll) == step.collection_type
            ]
        for coll in collections:
            for owner in _attribute_holders(db, step.domain_type, step.attribute, coll):
                pairs.append((owner, coll))
    else:
        for owner in _attribute_holders(db, step.domain_type, step.attribute, cell):
            pairs.append((owner, None))
    return sorted(pairs, key=lambda p: (_cell_sort_key(p[0]), _cell_sort_key(p[1] or p[0])))


def _attribute_holders(
    db: ObjectBase, domain_type: str, attribute: str, target: Cell
) -> list[OID]:
    """Objects in the extent of ``domain_type`` with ``attribute == target``."""
    if isinstance(target, OID):
        candidates = [
            source
            for source in db.referrers(target)
            if db.schema.is_subtype(db.type_of(source), domain_type)
        ]
    else:
        candidates = list(db.extent(domain_type))
    return [
        oid
        for oid in candidates
        if attribute in db.schema.attributes_of(db.type_of(oid))
        and db.attr(oid, attribute) == target
    ]


def reachable_terminals(
    db: ObjectBase, path: PathExpression, start: Cell, i: int = 0, j: int | None = None
) -> set[Cell]:
    """The ``t_j`` cells reachable from ``start`` in ``t_i`` — a forward query.

    This is the reference semantics of ``Q_{i,j}(fw)`` (section 5.1.2):
    ``select o.A_{i+1}.….A_j from o`` — every object (or atomic value) of
    type ``t_j`` lying on a complete sub-path from ``start``.
    """
    j = path.n if j is None else j
    if not 0 <= i < j <= path.n:
        raise PathError(f"invalid query bounds ({i}, {j})")
    target_column = path.column_of(j) - path.column_of(i)
    result: set[Cell] = set()
    for row in forward_rows(db, path, i, start):
        cell = row[target_column]
        if cell is not NULL:
            result.add(cell)
    return result


def origins_reaching(
    db: ObjectBase,
    path: PathExpression,
    end: Cell,
    i: int = 0,
    j: int | None = None,
    candidates: Sequence[Cell] | None = None,
) -> set[OID]:
    """The ``t_i`` objects with a path to ``end`` in ``t_j`` — a backward query.

    Reference semantics of ``Q_{i,j}(bw)`` (section 5.1.1): ``select o from
    o in C where end in o.A_{i+1}.….A_j``.  When ``candidates`` is given,
    the result is intersected with it (the collection ``C``).
    """
    j = path.n if j is None else j
    if not 0 <= i < j <= path.n:
        raise PathError(f"invalid query bounds ({i}, {j})")
    origin_column = 0 if i == 0 else path.column_of(i)
    result: set[OID] = set()
    for row in backward_rows(db, path, j, end):
        cell = row[origin_column]
        if cell is not NULL and isinstance(cell, OID):
            result.add(cell)
    if candidates is not None:
        result &= set(candidates)  # type: ignore[arg-type]
    return result
