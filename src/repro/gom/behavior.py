"""Behavior: methods on tuple types with inheritance and overriding.

The paper motivates object models by "incorporation of type
extensibility and object-specific behavior within the model" (§1).
This module supplies the behavioral half of GOM: methods are registered
per tuple type, inherited along the supertype lattice, overridable in
subtypes, and dispatched on the *runtime* type of the receiver —
object-specific behavior in the late-binding sense.

Methods receive a :class:`Receiver` as their first argument: a thin,
read-friendly handle combining the object base and the OID.

Example::

    registry = MethodRegistry(schema)
    registry.define("ROBOT", "describe",
                    lambda self: f"robot {self['Name']}")
    registry.define("WELDING_ROBOT", "describe",
                    lambda self: f"welder {self['Name']}")
    registry.invoke(db, some_robot, "describe")
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SchemaError, TypingError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID, Cell
from repro.gom.schema import Schema
from repro.gom.types import NULL


class Receiver:
    """The ``self`` handle passed to GOM methods.

    Supports ``receiver["Attr"]`` for attribute reads, ``receiver.oid``,
    ``receiver.type_name``, navigation via :meth:`follow`, and calling
    sibling methods via :meth:`send` (dynamic dispatch again).
    """

    __slots__ = ("db", "oid", "_registry")

    def __init__(self, db: ObjectBase, oid: OID, registry: "MethodRegistry") -> None:
        self.db = db
        self.oid = oid
        self._registry = registry

    @property
    def type_name(self) -> str:
        return self.db.type_of(self.oid)

    def __getitem__(self, attribute: str) -> Cell:
        return self.db.attr(self.oid, attribute)

    def follow(self, attribute: str) -> "Receiver | Cell":
        """Dereference an object-valued attribute into another receiver."""
        value = self.db.attr(self.oid, attribute)
        if isinstance(value, OID):
            return Receiver(self.db, value, self._registry)
        return value

    def send(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke another method on the same object (late-bound)."""
        return self._registry.invoke(self.db, self.oid, method, *args, **kwargs)

    def __repr__(self) -> str:
        return f"Receiver({self.oid}, {self.type_name})"


class MethodRegistry:
    """Per-schema method tables with inheritance-aware dispatch."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._methods: dict[tuple[str, str], Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    # definition
    # ------------------------------------------------------------------

    def define(
        self, type_name: str, method: str, implementation: Callable[..., Any]
    ) -> None:
        """Attach ``implementation`` as ``type_name``'s ``method``.

        Redefinition on the same type is rejected (define once); a
        *subtype* may override by defining the same method name on
        itself.
        """
        self.schema.tuple_type(type_name)  # must be tuple-structured
        if not callable(implementation):
            raise SchemaError(f"method {method!r} needs a callable implementation")
        key = (type_name, method)
        if key in self._methods:
            raise SchemaError(
                f"method {method!r} is already defined on {type_name!r}"
            )
        self._methods[key] = implementation

    def override(
        self, type_name: str, method: str, implementation: Callable[..., Any]
    ) -> None:
        """Replace an existing (possibly inherited) definition explicitly."""
        self.schema.tuple_type(type_name)
        if self.resolve(type_name, method) is None:
            raise SchemaError(
                f"cannot override {method!r}: no definition visible on "
                f"{type_name!r}"
            )
        self._methods[(type_name, method)] = implementation

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def resolve(self, type_name: str, method: str) -> Callable[..., Any] | None:
        """The most specific implementation visible on ``type_name``."""
        if (type_name, method) in self._methods:
            return self._methods[(type_name, method)]
        for supertype in self.schema.supertypes_of(type_name):
            if (supertype, method) in self._methods:
                return self._methods[(supertype, method)]
        return None

    def methods_of(self, type_name: str) -> dict[str, Callable[..., Any]]:
        """Every method visible on ``type_name`` (own + inherited)."""
        visible: dict[str, Callable[..., Any]] = {}
        for supertype in reversed(self.schema.supertypes_of(type_name)):
            for (owner, name), fn in self._methods.items():
                if owner == supertype:
                    visible[name] = fn
        for (owner, name), fn in self._methods.items():
            if owner == type_name:
                visible[name] = fn
        return visible

    def invoke(
        self, db: ObjectBase, oid: OID, method: str, *args: Any, **kwargs: Any
    ) -> Any:
        """Dispatch ``method`` on the runtime type of ``oid``."""
        if oid is NULL or not isinstance(oid, OID):
            raise TypingError("methods can only be invoked on objects")
        type_name = db.type_of(oid)
        implementation = self.resolve(type_name, method)
        if implementation is None:
            raise SchemaError(
                f"no method {method!r} visible on type {type_name!r}"
            )
        return implementation(Receiver(db, oid, self), *args, **kwargs)
