"""Path expressions (Definition 3.1 of the paper).

A path expression ``t0.A1.….An`` is valid iff for each step either

* ``t_{i-1}`` is a tuple type declaring ``A_i : t_i`` (single-valued), or
* ``t_{i-1}`` declares ``A_i : t'_i`` where ``t'_i`` is a set (or list)
  type over ``t_i`` — a **set occurrence** at ``A_i``.

A path with no set occurrence is called **linear**.  With ``k`` set
occurrences the associated access support relation has arity
``m + 1 = n + k + 1`` (Definition 3.2): every set occurrence contributes
an extra column holding the collection's own OID between the referencing
object and the element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PathError
from repro.gom.schema import Schema
from repro.gom.types import AtomicType, ListType, SetType, TupleType


@dataclass(frozen=True)
class PathStep:
    """One attribute hop ``A_i`` of a path expression.

    ``domain_type`` is ``t_{i-1}``, ``range_type`` is ``t_i`` (for a set
    occurrence this is the *element* type), and ``collection_type`` names
    ``t'_i`` when the step is a set occurrence, else ``None``.
    """

    attribute: str
    domain_type: str
    range_type: str
    collection_type: str | None = None

    @property
    def is_set_occurrence(self) -> bool:
        return self.collection_type is not None


@dataclass(frozen=True)
class PathColumn:
    """One column ``S_l`` of the access support relation for a path.

    ``type_name`` is the column's domain (an object type, collection type,
    or atomic type name); ``step_index`` is the 1-based index ``i`` of the
    attribute ``A_i`` that produced the column (0 for the anchor column
    ``S_0``); ``is_collection`` marks the extra column a set occurrence
    inserts for the collection's own OID.
    """

    type_name: str
    step_index: int
    is_collection: bool = False

    @property
    def label(self) -> str:
        prefix = "OID"
        return f"{prefix}_{self.type_name}"


class PathExpression:
    """A validated path expression over a schema.

    Instances are immutable and hashable; equality is structural on
    ``(anchor_type, attributes)``.

    Examples
    --------
    >>> path = PathExpression(schema, "ROBOT",
    ...                       ["Arm", "MountedTool", "ManufacturedBy", "Location"])
    >>> path.n, path.k, path.m
    (4, 0, 4)
    >>> str(path)
    'ROBOT.Arm.MountedTool.ManufacturedBy.Location'
    """

    def __init__(self, schema: Schema, anchor_type: str, attributes: Sequence[str]):
        if not attributes:
            raise PathError("a path expression needs at least one attribute")
        anchor = schema.lookup(anchor_type)
        if not isinstance(anchor, TupleType):
            raise PathError(
                f"path anchor {anchor_type!r} must be a tuple-structured type"
            )
        self.schema = schema
        self.anchor_type = anchor_type
        self.attributes: tuple[str, ...] = tuple(attributes)
        self.steps: tuple[PathStep, ...] = tuple(
            self._resolve_steps(schema, anchor_type, self.attributes)
        )
        self.columns: tuple[PathColumn, ...] = tuple(self._build_columns())

    @staticmethod
    def _resolve_steps(
        schema: Schema, anchor_type: str, attributes: Sequence[str]
    ) -> list[PathStep]:
        steps: list[PathStep] = []
        current = anchor_type
        for position, attribute in enumerate(attributes, start=1):
            current_type = schema.lookup(current)
            if not isinstance(current_type, TupleType):
                raise PathError(
                    f"step {position} ({attribute!r}): domain type {current!r} "
                    "is not tuple-structured"
                )
            declared = schema.attribute_type(current, attribute)
            if isinstance(declared, (SetType, ListType)):
                element = schema.lookup(declared.element_type)
                if isinstance(element, (SetType, ListType)):
                    raise PathError(
                        f"step {position} ({attribute!r}): nested collection "
                        f"type {declared.name!r} is not allowed in paths"
                    )
                steps.append(
                    PathStep(attribute, current, declared.element_type, declared.name)
                )
                current = declared.element_type
            else:
                steps.append(PathStep(attribute, current, declared.name))
                current = declared.name
            if position < len(attributes) and isinstance(
                schema.lookup(current), AtomicType
            ):
                raise PathError(
                    f"step {position} ({attribute!r}) reaches atomic type "
                    f"{current!r} but the path continues"
                )
        return steps

    def _build_columns(self) -> list[PathColumn]:
        columns = [PathColumn(self.anchor_type, 0)]
        for index, step in enumerate(self.steps, start=1):
            if step.is_set_occurrence:
                assert step.collection_type is not None
                columns.append(PathColumn(step.collection_type, index, True))
            columns.append(PathColumn(step.range_type, index))
        return columns

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, schema: Schema, text: str) -> "PathExpression":
        """Parse ``"t0.A1.….An"`` — the first component names the anchor."""
        parts = [part.strip() for part in text.split(".")]
        if len(parts) < 2 or not all(parts):
            raise PathError(
                f"cannot parse path expression {text!r}: expected 't0.A1.….An'"
            )
        return cls(schema, parts[0], parts[1:])

    def subpath(self, i: int, j: int) -> "PathExpression":
        """The path ``t_i.A_{i+1}.….A_j`` (used by partial-range queries)."""
        if not 0 <= i < j <= self.n:
            raise PathError(f"invalid subpath bounds ({i}, {j}) for n={self.n}")
        return PathExpression(self.schema, self.types[i], self.attributes[i:j])

    # ------------------------------------------------------------------
    # derived properties
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """The path length (number of attributes)."""
        return len(self.attributes)

    @property
    def k(self) -> int:
        """The number of set occurrences in the path."""
        return sum(1 for step in self.steps if step.is_set_occurrence)

    @property
    def m(self) -> int:
        """The last column index of the access support relation (m = n + k)."""
        return self.n + self.k

    @property
    def arity(self) -> int:
        """The number of columns of the access support relation (m + 1)."""
        return self.m + 1

    @property
    def is_linear(self) -> bool:
        """True when the path contains no set occurrence."""
        return self.k == 0

    @property
    def types(self) -> tuple[str, ...]:
        """The type names ``t_0, …, t_n`` along the path."""
        return (self.anchor_type,) + tuple(step.range_type for step in self.steps)

    def set_occurrences_before(self, i: int) -> int:
        """``k(i)``: the number of set occurrences at ``A_j`` for ``j < i``."""
        if not 0 <= i <= self.n:
            raise PathError(f"attribute index {i} out of range 0..{self.n}")
        return sum(1 for step in self.steps[: max(i - 1, 0)] if step.is_set_occurrence)

    def column_of(self, i: int) -> int:
        """The ASR column index holding OIDs of type ``t_i``.

        ``column_of(0) == 0``; for ``i >= 1`` this is ``i`` plus the number
        of set occurrences at or before ``A_i`` (the collection OID column
        precedes the element column).
        """
        if not 0 <= i <= self.n:
            raise PathError(f"type index {i} out of range 0..{self.n}")
        if i == 0:
            return 0
        extra = sum(1 for step in self.steps[:i] if step.is_set_occurrence)
        return i + extra

    def type_index_of_column(self, column: int) -> int:
        """Inverse of :meth:`column_of` (collection columns map to their step)."""
        if not 0 <= column <= self.m:
            raise PathError(f"column {column} out of range 0..{self.m}")
        return self.columns[column].step_index

    def column_labels(self) -> list[str]:
        """Human-readable column labels, matching the paper's tables."""
        labels = []
        for column in self.columns:
            gom_type = self.schema.lookup(column.type_name)
            prefix = "VALUE" if isinstance(gom_type, AtomicType) else "OID"
            labels.append(f"{prefix}_{column.type_name}")
        return labels

    @property
    def terminal_is_atomic(self) -> bool:
        """True when the path ends in an atomic value (e.g. ``….Name``)."""
        return isinstance(self.schema.lookup(self.types[-1]), AtomicType)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        return ".".join((self.anchor_type,) + self.attributes)

    def __repr__(self) -> str:
        return f"PathExpression({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathExpression):
            return NotImplemented
        return (
            self.anchor_type == other.anchor_type
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.anchor_type, self.attributes))
