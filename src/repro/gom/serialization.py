"""Persistence: dump and load object bases (plus ASR configurations).

A production library needs its databases to survive the process.  The
format is plain JSON, organized as::

    {
      "format": "repro-objectbase",
      "version": 1,
      "schema":    [ {kind, name, ...}, ... ]      # in definition order
      "objects":   [ {oid, type, value}, ... ]
      "variables": { name: {cell, type} }
      "next_oid":  int
      "asrs":      [ {path, extension, borders}, ... ]   # optional
    }

Cells are encoded as tagged one-key objects: ``{"oid": 7}``,
``{"null": true}``, or ``{"value": <atomic>}`` — so OIDs, NULLs, and
atomic values round-trip unambiguously.  ASRs are persisted as
*configurations* (path, extension, decomposition) and re-materialized on
load; their contents are derivable, and rebuilding keeps the loader
simple and trustworthy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ObjectBaseError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID, Cell
from repro.gom.schema import Schema
from repro.gom.types import NULL, AtomicType, ListType, SetType, TupleType

FORMAT_NAME = "repro-objectbase"
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# cell encoding
# ----------------------------------------------------------------------


def encode_cell(cell: Cell) -> dict[str, Any]:
    """Encode a cell as a tagged one-key JSON object."""
    if cell is NULL:
        return {"null": True}
    if isinstance(cell, OID):
        return {"oid": cell.value}
    return {"value": cell}


def decode_cell(data: dict[str, Any]) -> Cell:
    """Inverse of :func:`encode_cell`."""
    if "null" in data:
        return NULL
    if "oid" in data:
        return OID(int(data["oid"]))
    if "value" in data:
        return data["value"]
    raise ObjectBaseError(f"malformed cell encoding: {data!r}")


# ----------------------------------------------------------------------
# schema encoding
# ----------------------------------------------------------------------


def _encode_schema(schema: Schema) -> list[dict[str, Any]]:
    entries = []
    for gom_type in schema:
        if isinstance(gom_type, AtomicType):
            continue  # built-ins are implicit
        if isinstance(gom_type, TupleType):
            entries.append(
                {
                    "kind": "tuple",
                    "name": gom_type.name,
                    "attributes": dict(gom_type.attributes),
                    "supertypes": list(gom_type.supertypes),
                }
            )
        elif isinstance(gom_type, SetType):
            entries.append(
                {"kind": "set", "name": gom_type.name, "element": gom_type.element_type}
            )
        elif isinstance(gom_type, ListType):
            entries.append(
                {"kind": "list", "name": gom_type.name, "element": gom_type.element_type}
            )
    return entries


def _decode_schema(entries: Iterable[dict[str, Any]]) -> Schema:
    schema = Schema()
    for entry in entries:
        kind = entry.get("kind")
        if kind == "tuple":
            schema.define_tuple(
                entry["name"], entry["attributes"], entry.get("supertypes", ())
            )
        elif kind == "set":
            schema.define_set(entry["name"], entry["element"])
        elif kind == "list":
            schema.define_list(entry["name"], entry["element"])
        else:
            raise ObjectBaseError(f"unknown schema entry kind {kind!r}")
    schema.validate()
    return schema


# ----------------------------------------------------------------------
# object base encoding
# ----------------------------------------------------------------------


def dump_object_base(db: ObjectBase, asrs: Iterable = ()) -> dict[str, Any]:
    """Encode ``db`` (and optionally ASR configurations) as a JSON dict."""
    objects = []
    for instance in sorted(db.objects(), key=lambda o: o.oid.value):
        value = instance.value
        if isinstance(value, dict):
            encoded: Any = {
                attr: encode_cell(cell) for attr, cell in sorted(value.items())
            }
        elif isinstance(value, set):
            encoded = {
                "set": sorted(
                    (encode_cell(cell) for cell in value),
                    key=lambda c: json.dumps(c, sort_keys=True, default=str),
                )
            }
        else:
            encoded = {"list": [encode_cell(cell) for cell in value]}
        objects.append(
            {"oid": instance.oid.value, "type": instance.type_name, "value": encoded}
        )
    variables = {
        name: {"cell": encode_cell(db.get_var(name)), "type": db.var_type(name)}
        for name in db._variables
    }
    asr_entries = [
        {
            "path": str(asr.path),
            "extension": asr.extension.value,
            "borders": list(asr.decomposition.borders),
        }
        for asr in asrs
    ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "schema": _encode_schema(db.schema),
        "objects": objects,
        "variables": variables,
        "next_oid": db._next_oid,
        "asrs": asr_entries,
    }


def load_object_base(data: dict[str, Any]):
    """Rebuild ``(db, asrs)`` from a dict produced by :func:`dump_object_base`.

    Objects are re-created with their original OIDs (bypassing the typed
    constructors, then re-checked); ASRs are re-materialized from their
    stored configurations.
    """
    from repro.asr.asr import AccessSupportRelation
    from repro.asr.decomposition import Decomposition
    from repro.asr.extensions import Extension
    from repro.gom.objects import ObjectInstance
    from repro.gom.paths import PathExpression

    if data.get("format") != FORMAT_NAME:
        raise ObjectBaseError(f"not a {FORMAT_NAME} document")
    if data.get("version") != FORMAT_VERSION:
        raise ObjectBaseError(f"unsupported format version {data.get('version')!r}")
    schema = _decode_schema(data["schema"])
    db = ObjectBase(schema)
    # First pass: allocate all objects empty so references resolve.
    for entry in data["objects"]:
        oid = OID(int(entry["oid"]))
        type_name = entry["type"]
        gom_type = schema.lookup(type_name)
        if isinstance(gom_type, TupleType):
            value: Any = {attr: NULL for attr in schema.attributes_of(type_name)}
        elif isinstance(gom_type, SetType):
            value = set()
        elif isinstance(gom_type, ListType):
            value = []
        else:
            raise ObjectBaseError(f"cannot materialize atomic type {type_name!r}")
        if oid in db._objects:
            raise ObjectBaseError(f"duplicate OID {oid!r} in document")
        db._objects[oid] = ObjectInstance(oid, type_name, value)
        db._extents.setdefault(type_name, set()).add(oid)
    db._next_oid = int(data.get("next_oid", 0))
    # Second pass: fill contents through the type-checked mutators.
    for entry in data["objects"]:
        oid = OID(int(entry["oid"]))
        encoded = entry["value"]
        if "set" in encoded:
            for cell in encoded["set"]:
                db.set_insert(oid, decode_cell(cell))
        elif "list" in encoded:
            for cell in encoded["list"]:
                db.list_append(oid, decode_cell(cell))
        else:
            for attr, cell in encoded.items():
                decoded = decode_cell(cell)
                if decoded is not NULL:
                    db.set_attr(oid, attr, decoded)
    for name, entry in data.get("variables", {}).items():
        db.set_var(name, decode_cell(entry["cell"]), entry.get("type"))
    asrs = []
    for entry in data.get("asrs", ()):
        path = PathExpression.parse(schema, entry["path"])
        extension = Extension(entry["extension"])
        decomposition = Decomposition(tuple(entry["borders"]))
        asrs.append(AccessSupportRelation.build(db, path, extension, decomposition))
    return db, asrs


# ----------------------------------------------------------------------
# file convenience
# ----------------------------------------------------------------------


def save(db: ObjectBase, path: str | Path, asrs: Iterable = ()) -> None:
    """Write the object base (and ASR configurations) to a JSON file."""
    Path(path).write_text(json.dumps(dump_object_base(db, asrs), indent=1))


def load(path: str | Path):
    """Read ``(db, asrs)`` back from a JSON file written by :func:`save`."""
    return load_object_base(json.loads(Path(path).read_text()))
