"""GOM — the Generic Object Model substrate (paper, section 2).

This subpackage implements the object model the paper uses as its research
vehicle: object identity, built-in value types, the tuple/set/list type
constructors, subtyping via (multiple) inheritance, strong typing, and
instantiation with NULL-initialized attributes.  On top of it live the
path expressions of Definition 3.1 and the object base with per-type
extents and update events that the access support relation machinery
subscribes to.
"""

from repro.gom.types import (
    NULL,
    AtomicType,
    GomType,
    ListType,
    Null,
    SetType,
    TupleType,
    BOOLEAN,
    CHAR,
    DECIMAL,
    FLOAT,
    INTEGER,
    STRING,
)
from repro.gom.schema import Schema
from repro.gom.objects import OID, ObjectInstance
from repro.gom.events import (
    AttributeSet,
    ObjectCreated,
    ObjectDeleted,
    SetInserted,
    SetRemoved,
)
from repro.gom.database import ObjectBase
from repro.gom.paths import PathExpression
from repro.gom.behavior import MethodRegistry, Receiver
from repro.gom.serialization import save, load

__all__ = [
    "NULL",
    "Null",
    "GomType",
    "AtomicType",
    "TupleType",
    "SetType",
    "ListType",
    "STRING",
    "INTEGER",
    "DECIMAL",
    "CHAR",
    "BOOLEAN",
    "FLOAT",
    "Schema",
    "OID",
    "ObjectInstance",
    "ObjectBase",
    "PathExpression",
    "MethodRegistry",
    "Receiver",
    "save",
    "load",
    "ObjectCreated",
    "ObjectDeleted",
    "AttributeSet",
    "SetInserted",
    "SetRemoved",
]
