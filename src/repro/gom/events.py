"""Change events emitted by the object base.

Access support relations must be kept consistent with the object base
under updates (paper, section 6).  Rather than wiring the index code into
the update paths, :class:`repro.gom.database.ObjectBase` publishes one
event per primitive mutation and interested parties (notably
:class:`repro.asr.manager.ASRManager`) subscribe.

Events are emitted *after* the mutation has been applied, and carry the
previous value where a subscriber needs it to compute a delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.gom.objects import OID, Cell


@dataclass(frozen=True)
class ObjectCreated:
    """A new instance was created (tuple, set, or list structured)."""

    oid: OID
    type_name: str


@dataclass(frozen=True)
class ObjectDeleted:
    """An instance was removed from the object base.

    ``old_value`` is the value the object held at deletion time so that
    subscribers can retract derived tuples without re-reading the object.
    """

    oid: OID
    type_name: str
    old_value: Any


@dataclass(frozen=True)
class AttributeSet:
    """``obj.attribute := new_value`` was executed on a tuple object.

    Corresponds to overwriting a single-valued attribute; assigning NULL
    models attribute deletion.  ``old_value`` is the previously stored
    cell (possibly NULL).
    """

    oid: OID
    type_name: str
    attribute: str
    old_value: Cell
    new_value: Cell


@dataclass(frozen=True)
class SetInserted:
    """``insert element into set_object`` — the paper's ``ins_i`` operation.

    ``owner`` identifies the tuple object whose set-valued attribute holds
    the set, when the set is reachable from exactly one such owner; it is
    ``None`` for free-standing sets (set sharing makes the owner ambiguous
    and subscribers must consult the object graph instead).
    """

    set_oid: OID
    set_type: str
    element: Cell
    owner: OID | None = None


@dataclass(frozen=True)
class SetRemoved:
    """``remove element from set_object`` (inverse of :class:`SetInserted`)."""

    set_oid: OID
    set_type: str
    element: Cell
    owner: OID | None = None


Event = ObjectCreated | ObjectDeleted | AttributeSet | SetInserted | SetRemoved
