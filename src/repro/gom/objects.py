"""Object identity and object instances.

An object instance is the triple ``(i, v, t)`` of the paper (section 2.2):
an invisible, lifetime-invariant identifier ``i``, a value ``v``, and a
type ``t``.  Values of atomic types carry no identity — their value *is*
their identity — so atomic values appear directly wherever an OID could.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import total_ordering
from typing import Any, Union

from repro.gom.types import NULL, Null


@total_ordering
@dataclass(frozen=True)
class OID:
    """A system-generated object identifier.

    OIDs are invisible to the database user in GOM; here they surface as
    opaque, hashable, totally ordered handles (ordering is needed because
    OIDs serve as B+ tree keys).  The repr ``i42`` matches the paper's
    ``i0, i1, ...`` notation.
    """

    value: int

    def __repr__(self) -> str:
        return f"i{self.value}"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, OID):
            return NotImplemented
        return self.value < other.value


#: A cell of an access support relation or an attribute slot: either an
#: OID, an atomic value (its value is its identity), or NULL.
Cell = Union[OID, str, int, float, bool, Null]


@dataclass
class ObjectInstance:
    """The stored representation of one object: ``(oid, value, type)``.

    ``value`` is, depending on the constructor of ``type_name``:

    * a ``dict`` attribute→Cell for tuple-structured objects (attributes a
      fresh instance does not define hold :data:`~repro.gom.types.NULL`);
    * a ``set`` of Cells for set-structured objects;
    * a ``list`` of Cells for list-structured objects.
    """

    oid: OID
    type_name: str
    value: Any = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"ObjectInstance({self.oid}, {self.type_name}, {self.value!r})"


def is_oid(cell: Cell) -> bool:
    """True when ``cell`` is an object identifier (not NULL, not atomic)."""
    return isinstance(cell, OID)


def is_defined(cell: Cell) -> bool:
    """True when ``cell`` is not the NULL value."""
    return cell is not NULL
