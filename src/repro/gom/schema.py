"""Schema: the catalog of GOM type definitions.

A :class:`Schema` registers tuple, set, and list types (atomic types are
built in), resolves type names, computes the full attribute map of a tuple
type under (multiple) inheritance, and answers subtype questions.  It
performs the static legality checks of section 2.1 of the paper:

* supertype lists may only name tuple-structured types;
* inheritance must be acyclic;
* attributes inherited from several supertypes must agree on their
  constrained type (GOM's "inherits *all* attributes" rule leaves genuine
  clashes undefined, so we reject them);
* set/list element types must not themselves be collection types
  (no powersets, footnote 2 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.gom.types import (
    BUILTIN_ATOMIC_TYPES,
    AtomicType,
    GomType,
    ListType,
    SetType,
    TupleType,
)


class Schema:
    """A mutable catalog of type definitions.

    Example — the robot schema of section 2.2::

        schema = Schema()
        schema.define_tuple("MANUFACTURER", {"Name": "STRING", "Location": "STRING"})
        schema.define_tuple("TOOL", {"Function": "STRING",
                                     "ManufacturedBy": "MANUFACTURER"})
        schema.define_tuple("ARM", {"Kinematics": "STRING", "MountedTool": "TOOL"})
        schema.define_tuple("ROBOT", {"Name": "STRING", "Arm": "ARM"})
        schema.define_set("ROBOT_SET", "ROBOT")
    """

    def __init__(self) -> None:
        self._types: dict[str, GomType] = {t.name: t for t in BUILTIN_ATOMIC_TYPES}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def define(self, gom_type: GomType) -> GomType:
        """Register an already-constructed type object."""
        name = gom_type.name
        if name in self._types:
            raise SchemaError(f"type {name!r} is already defined")
        if isinstance(gom_type, TupleType):
            self._check_tuple(gom_type)
        elif isinstance(gom_type, (SetType, ListType)):
            self._check_collection(gom_type)
        elif not isinstance(gom_type, AtomicType):
            raise SchemaError(f"unknown kind of type object: {gom_type!r}")
        self._types[name] = gom_type
        return gom_type

    def define_tuple(
        self,
        name: str,
        attributes: Mapping[str, str],
        supertypes: Iterable[str] = (),
        byte_size: int = 0,
    ) -> TupleType:
        """Define ``type name is supertypes (...) [a1: t1, ...]``."""
        return self.define(  # type: ignore[return-value]
            TupleType(name, dict(attributes), tuple(supertypes), byte_size)
        )

    def define_set(self, name: str, element_type: str) -> SetType:
        """Define ``type name is {element_type}``."""
        return self.define(SetType(name, element_type))  # type: ignore[return-value]

    def define_list(self, name: str, element_type: str) -> ListType:
        """Define ``type name is <element_type>``."""
        return self.define(ListType(name, element_type))  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def _check_tuple(self, t: TupleType) -> None:
        for sup_name in t.supertypes:
            sup = self._types.get(sup_name)
            if sup is None:
                raise SchemaError(
                    f"type {t.name!r}: unknown supertype {sup_name!r} "
                    "(supertypes must be defined first)"
                )
            if not isinstance(sup, TupleType):
                raise SchemaError(
                    f"type {t.name!r}: supertype {sup_name!r} is not tuple-structured"
                )
        # Multiple-inheritance attribute clashes: collect the full inherited
        # attribute map and require agreement on types.
        merged: dict[str, str] = {}
        for sup_name in t.supertypes:
            for attr, attr_type in self._attributes_of_name(sup_name).items():
                if attr in merged and merged[attr] != attr_type:
                    raise SchemaError(
                        f"type {t.name!r}: attribute {attr!r} inherited with "
                        f"conflicting types {merged[attr]!r} and {attr_type!r}"
                    )
                merged[attr] = attr_type
        for attr, attr_type in t.attributes.items():
            if attr in merged and merged[attr] != attr_type:
                raise SchemaError(
                    f"type {t.name!r}: attribute {attr!r} redeclared with type "
                    f"{attr_type!r}, inherited as {merged[attr]!r}"
                )

    def _check_collection(self, t: SetType | ListType) -> None:
        element = self._types.get(t.element_type)
        if element is not None and element.is_collection():
            raise SchemaError(
                f"type {t.name!r}: element type {t.element_type!r} is a "
                "collection type (powersets / nested collections are not "
                "permitted in paths, paper footnote 2)"
            )

    def add_attribute(self, type_name: str, attribute: str, attr_type: str) -> None:
        """Extend a tuple type with a new attribute (type extensibility).

        The paper's introduction credits object models with "type
        extensibility"; this is the schema-evolution half: the attribute
        becomes visible on ``type_name`` and all its subtypes, and
        existing instances read it as NULL until assigned
        (:class:`~repro.gom.database.ObjectBase` materializes the slot
        lazily).
        """
        t = self.tuple_type(type_name)
        if attr_type not in self._types:
            raise SchemaError(f"unknown attribute type {attr_type!r}")
        existing = self.attributes_of(type_name)
        if attribute in existing:
            raise SchemaError(
                f"type {type_name!r} already has attribute {attribute!r}"
            )
        for sub in self.subtypes_of(type_name):
            declared = self.tuple_type(sub).attributes
            if attribute in declared and declared[attribute] != attr_type:
                raise SchemaError(
                    f"subtype {sub!r} already declares {attribute!r} with "
                    f"type {declared[attribute]!r}"
                )
        attributes = dict(t.attributes)
        attributes[attribute] = attr_type
        self._types[type_name] = TupleType(
            type_name, attributes, t.supertypes, t.byte_size
        )

    def validate(self) -> None:
        """Check that every referenced type name is defined.

        Registration is deliberately lazy about *forward* references in
        attribute positions so that mutually recursive schemas can be
        declared; call :meth:`validate` once the schema is complete.
        """
        for t in self._types.values():
            if isinstance(t, TupleType):
                for attr, attr_type in t.attributes.items():
                    if attr_type not in self._types:
                        raise SchemaError(
                            f"type {t.name!r}: attribute {attr!r} references "
                            f"undefined type {attr_type!r}"
                        )
            elif isinstance(t, (SetType, ListType)):
                if t.element_type not in self._types:
                    raise SchemaError(
                        f"type {t.name!r}: element type {t.element_type!r} "
                        "is undefined"
                    )
                self._check_collection(t)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[GomType]:
        return iter(self._types.values())

    def lookup(self, name: str) -> GomType:
        """Return the type registered under ``name`` or raise SchemaError."""
        try:
            return self._types[name]
        except KeyError:
            raise SchemaError(f"unknown type {name!r}") from None

    def tuple_type(self, name: str) -> TupleType:
        t = self.lookup(name)
        if not isinstance(t, TupleType):
            raise SchemaError(f"type {name!r} is not tuple-structured")
        return t

    def atomic_type(self, name: str) -> AtomicType:
        t = self.lookup(name)
        if not isinstance(t, AtomicType):
            raise SchemaError(f"type {name!r} is not atomic")
        return t

    def collection_type(self, name: str) -> SetType | ListType:
        t = self.lookup(name)
        if not isinstance(t, (SetType, ListType)):
            raise SchemaError(f"type {name!r} is not a collection type")
        return t

    def type_names(self) -> list[str]:
        return list(self._types)

    # ------------------------------------------------------------------
    # inheritance
    # ------------------------------------------------------------------

    def supertypes_of(self, name: str) -> list[str]:
        """All (transitive) supertypes of tuple type ``name``, nearest first."""
        t = self.tuple_type(name)
        seen: list[str] = []
        frontier = list(t.supertypes)
        while frontier:
            sup = frontier.pop(0)
            if sup in seen:
                continue
            seen.append(sup)
            frontier.extend(self.tuple_type(sup).supertypes)
        return seen

    def subtypes_of(self, name: str) -> list[str]:
        """All (transitive) subtypes of ``name``, excluding ``name`` itself."""
        result = []
        for t in self._types.values():
            if isinstance(t, TupleType) and t.name != name:
                if name in self.supertypes_of(t.name):
                    result.append(t.name)
        return result

    def is_subtype(self, sub: str, sup: str) -> bool:
        """True when ``sub`` conforms to the upper bound ``sup``.

        Every type conforms to itself; a tuple type conforms to each of its
        transitive supertypes.
        """
        if sub == sup:
            return True
        t = self._types.get(sub)
        if isinstance(t, TupleType):
            return sup in self.supertypes_of(sub)
        return False

    def attributes_of(self, name: str) -> dict[str, str]:
        """The full attribute map of tuple type ``name`` incl. inherited ones."""
        return self._attributes_of_name(name)

    def _attributes_of_name(self, name: str) -> dict[str, str]:
        t = self.tuple_type(name)
        merged: dict[str, str] = {}
        for sup in t.supertypes:
            merged.update(self._attributes_of_name(sup))
        merged.update(t.attributes)
        return merged

    def attribute_type(self, tuple_name: str, attribute: str) -> GomType:
        """Resolve the constrained type of ``tuple_name.attribute``."""
        attrs = self.attributes_of(tuple_name)
        if attribute not in attrs:
            raise SchemaError(
                f"type {tuple_name!r} has no attribute {attribute!r} "
                f"(known: {sorted(attrs)})"
            )
        return self.lookup(attrs[attribute])
