"""Concurrency primitives: a readers-writer lock and a context pool.

Everything built in the earlier layers — buffer scopes, execution
contexts, the ASR manager's batch/journal pipeline — was single-threaded.
This module supplies the two pieces that make the hot path safely
concurrent:

* :class:`RWLock` — a reentrant readers-writer lock.  The
  :class:`~repro.asr.manager.ASRManager` holds one: queries take the
  read side (many may probe and read ASR trees at once), while event
  maintenance, flushes, recovery, and registration changes take the
  write side (tree mutations and CONSISTENT→APPLYING→… state
  transitions are exclusive).
* :class:`ContextPool` — the per-connection-context idiom: each worker
  thread acquires its *own* :class:`~repro.context.ExecutionContext`
  (private span trace, private per-operation accounting) while all of
  them share one :class:`~repro.storage.stats.SharedBufferPool` of
  bounded capacity and one lock-protected
  :class:`~repro.storage.stats.ThreadSafeAccessStats` aggregate.

The invariant that makes the accounting trustworthy under contention:
every page charge goes to the shared stats (via the pool) *and* is
mirrored onto the charging worker's private stats (via its
:class:`~repro.storage.stats.WorkerScope`), so

    shared totals  ==  Σ over workers of private totals

which the concurrency stress suite asserts after mixed traffic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.context import ExecutionContext
from repro.storage.stats import (
    AccessStats,
    SharedBufferPool,
    ThreadSafeAccessStats,
    WorkerScope,
)

__all__ = ["RWLock", "ContextPool"]


class RWLock:
    """A readers-writer lock with a reentrant writer.

    * Any number of threads may hold the read side at once.
    * The write side is exclusive against readers and other writers.
    * The writing thread may re-acquire the write side (nesting — e.g.
      ``close()`` flushing inside its own write section) and may take
      the read side while writing.
    * Upgrading (read held, write requested by the same thread) is
      refused with :class:`RuntimeError` instead of deadlocking.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._write_depth = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            while self._writer is not None and self._writer != me:
                self._cond.wait()
            self._readers[me] = self._readers.get(me, 0) + 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count <= 1:
                self._readers.pop(me, None)
            else:
                self._readers[me] = count - 1
            self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if self._readers.get(me):
                raise RuntimeError(
                    "read->write upgrade is not supported: release the read "
                    "side before requesting the write side"
                )
            while self._writer is not None or self._readers:
                self._cond.wait()
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a thread not holding the lock")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @property
    def write_held(self) -> bool:
        """True when the *calling* thread holds the write side."""
        return self._writer == threading.get_ident()


class ContextPool:
    """Hands each worker its own context over one shared buffer pool.

    Parameters
    ----------
    capacity:
        Page capacity of the shared LRU pool.
    stats:
        The shared aggregate; a fresh
        :class:`~repro.storage.stats.ThreadSafeAccessStats` by default.
    fault_injector:
        Optional injector consulted by the shared pool on charged
        accesses (under the pool lock, so fault decisions are
        serialized and reproducible per access sequence).

    Usage, one worker thread each::

        pool = ContextPool(capacity=256)
        def worker():
            with pool.context() as ctx:
                evaluator = QueryEvaluator(db, store, context=ctx)
                ...

    Every context created by :meth:`acquire` has a *private*
    :class:`~repro.storage.stats.AccessStats` (so its spans measure only
    its own thread's accesses) and charges the shared pool through a
    :class:`~repro.storage.stats.WorkerScope`; the pool charges the
    shared :attr:`stats`, whose totals therefore equal the sum of the
    per-worker totals at any quiescent point.
    """

    def __init__(
        self,
        capacity: int,
        stats: AccessStats | None = None,
        fault_injector=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be at least one page")
        self.capacity = capacity
        self.stats = stats if stats is not None else ThreadSafeAccessStats()
        self.fault_injector = fault_injector
        self.pool = SharedBufferPool(self.stats, capacity, fault_injector)
        self._lock = threading.Lock()
        self._contexts: list[ExecutionContext] = []

    def acquire(self) -> ExecutionContext:
        """A fresh worker context sharing this pool's buffer frames."""
        worker_stats = AccessStats()
        context = ExecutionContext(
            policy="bounded",
            stats=worker_stats,
            fault_injector=self.fault_injector,
            shared_buffer=WorkerScope(self.pool, worker_stats),
        )
        with self._lock:
            self._contexts.append(context)
        return context

    @contextmanager
    def context(self) -> Iterator[ExecutionContext]:
        """``with pool.context() as ctx`` — acquire, then close on exit."""
        ctx = self.acquire()
        try:
            yield ctx
        finally:
            ctx.close()

    @property
    def contexts(self) -> list[ExecutionContext]:
        """Every context handed out so far (closed ones included)."""
        with self._lock:
            return list(self._contexts)

    def close(self) -> None:
        """Close every context handed out (runs their exit hooks)."""
        for context in self.contexts:
            context.close()

    def describe(self) -> dict:
        """Headline pool counters, JSON-able (for benchmark reports)."""
        return {
            "capacity": self.capacity,
            "resident_pages": self.pool.distinct_pages,
            "hits": self.pool.hits,
            "misses": self.pool.misses,
            "hit_rate": round(self.pool.hit_rate, 4),
            "page_reads": self.stats.page_reads,
            "page_writes": self.stats.page_writes,
            "contexts": len(self.contexts),
        }
