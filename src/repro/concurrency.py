"""Concurrency primitives: a readers-writer lock and a context pool.

Everything built in the earlier layers — buffer scopes, execution
contexts, the ASR manager's batch/journal pipeline — was single-threaded.
This module supplies the two pieces that make the hot path safely
concurrent:

* :class:`RWLock` — a reentrant readers-writer lock.  The
  :class:`~repro.asr.manager.ASRManager` holds one: queries take the
  read side (many may probe and read ASR trees at once), while event
  maintenance, flushes, recovery, and registration changes take the
  write side (tree mutations and CONSISTENT→APPLYING→… state
  transitions are exclusive).
* :class:`ContextPool` — the per-connection-context idiom: each worker
  thread acquires its *own* :class:`~repro.context.ExecutionContext`
  (private span trace, private per-operation accounting) while all of
  them share one :class:`~repro.storage.stats.SharedBufferPool` of
  bounded capacity and one lock-protected
  :class:`~repro.storage.stats.ThreadSafeAccessStats` aggregate.

The invariant that makes the accounting trustworthy under contention:
every page charge goes to the shared stats (via the pool) *and* is
mirrored onto the charging worker's private stats (via its
:class:`~repro.storage.stats.WorkerScope`), so

    shared totals  ==  Σ over workers of private totals

which the concurrency stress suite asserts after mixed traffic.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.context import ExecutionContext
from repro.storage.stats import (
    AccessStats,
    SharedBufferPool,
    ThreadSafeAccessStats,
    WorkerScope,
)
from repro.telemetry.tracing import current_trace

__all__ = ["RWLock", "ContextPool", "ThreadLocalContexts"]


class RWLock:
    """A readers-writer lock with a reentrant writer and writer preference.

    * Any number of threads may hold the read side at once.
    * The write side is exclusive against readers and other writers.
    * The writing thread may re-acquire the write side (nesting — e.g.
      ``close()`` flushing inside its own write section) and may take
      the read side while writing.
    * Upgrading (read held, write requested by the same thread) is
      refused with :class:`RuntimeError` instead of deadlocking.
    * **Writers are preferred**: once a writer is queued, threads that do
      not already hold the read (or write) side stop being admitted as
      readers, so a saturating read stream cannot starve ``flush`` or
      ``recover`` indefinitely — the queued writer acquires as soon as
      the readers admitted before it drain.  Threads already holding the
      read side may still re-acquire it (reentrant reads), otherwise a
      waiting writer and a nested read would deadlock each other.

    ``metrics`` (optional, also settable after construction) is a
    :class:`~repro.telemetry.registry.MetricsRegistry` into which every
    non-reentrant write acquisition publishes its queueing delay as the
    ``lock.writer_wait_ms`` histogram — the update-latency tail the serve
    benchmarks watch.  An uncontended acquisition observes 0.0 without
    reading the clock, so the fast path stays wall-clock-free.
    """

    def __init__(self, metrics=None) -> None:
        self._cond = threading.Condition()
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._write_depth = 0
        self._writers_waiting = 0
        self.metrics = metrics

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._may_read(me):
                # Uncontended fast path: no clock read, no trace lookup.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            trace = current_trace()
            start = time.perf_counter() if trace is not None else None
            while not self._may_read(me):
                self._cond.wait()
            self._readers[me] = self._readers.get(me, 0) + 1
        if start is not None:
            trace.add_phase("lock.read", (time.perf_counter() - start) * 1e3)

    def _may_read(self, me: int) -> bool:
        """Whether ``me`` may be admitted as a reader right now."""
        if self._writer == me:
            return True  # reading under one's own write lock
        if self._writer is not None:
            return False
        # Writer preference: a queued writer blocks *new* readers, but a
        # thread already holding the read side may re-enter.
        return not self._writers_waiting or bool(self._readers.get(me))

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count <= 1:
                self._readers.pop(me, None)
            else:
                self._readers[me] = count - 1
            self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        start = None
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if self._readers.get(me):
                raise RuntimeError(
                    "read->write upgrade is not supported: release the read "
                    "side before requesting the write side"
                )
            trace = None
            if self._writer is not None or self._readers:
                trace = current_trace()
                if self.metrics is not None or trace is not None:
                    start = time.perf_counter()
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1
        waited_ms = 0.0 if start is None else (time.perf_counter() - start) * 1e3
        if self.metrics is not None:
            self.metrics.observe("lock.writer_wait_ms", waited_ms)
        if trace is not None and start is not None:
            trace.add_phase("lock.write", waited_ms)

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a thread not holding the lock")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @property
    def write_held(self) -> bool:
        """True when the *calling* thread holds the write side."""
        return self._writer == threading.get_ident()

    @property
    def writers_waiting(self) -> int:
        """Writers currently queued (blocking new reader admissions)."""
        with self._cond:
            return self._writers_waiting


class ContextPool:
    """Hands each worker its own context over one shared buffer pool.

    Parameters
    ----------
    capacity:
        Page capacity of the shared LRU pool.
    stats:
        The shared aggregate; a fresh
        :class:`~repro.storage.stats.ThreadSafeAccessStats` by default.
    fault_injector:
        Optional injector consulted by the shared pool on charged
        accesses (under the pool lock, so fault decisions are
        serialized and reproducible per access sequence).
    metrics:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`.
        Registered as lazy callable gauges at construction (capacity,
        residency, hits/misses/hit rate, evictions, live occupancy,
        contexts recycled), passed to every acquired context, and the
        target of :meth:`check_accounting` — the pool never pays for
        metrics on the touch path.
    max_spans:
        Optional per-context span-trace bound, forwarded to every
        acquired :class:`~repro.context.ExecutionContext` (long-lived
        serve workers keep bounded memory; ``None`` keeps every span).

    Usage, one worker thread each::

        pool = ContextPool(capacity=256)
        def worker():
            with pool.context() as ctx:
                evaluator = QueryEvaluator(db, store, context=ctx)
                ...

    Every context created by :meth:`acquire` has a *private*
    :class:`~repro.storage.stats.AccessStats` (so its spans measure only
    its own thread's accesses) and charges the shared pool through a
    :class:`~repro.storage.stats.WorkerScope`; the pool charges the
    shared :attr:`stats`, whose totals therefore equal the sum of the
    per-worker totals at any quiescent point.

    **Recycling.**  :meth:`release` (and the :meth:`context` manager)
    retires a finished context: its exit hooks run, its private stats
    fold into the pool's :attr:`retired` accumulator, and its
    :class:`~repro.storage.stats.WorkerScope` goes onto a free list that
    :meth:`acquire` drains first — the scope is *reset* onto a fresh
    private :class:`AccessStats`, so a reused worker slot never inherits
    a predecessor's counters.  :attr:`contexts` therefore lists only
    *live* contexts, and the accounting invariant becomes

        shared totals  ==  retired totals + Σ live per-worker totals

    which :meth:`check_accounting` evaluates (and publishes).
    """

    def __init__(
        self,
        capacity: int,
        stats: AccessStats | None = None,
        fault_injector=None,
        metrics=None,
        max_spans: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be at least one page")
        self.capacity = capacity
        self.stats = stats if stats is not None else ThreadSafeAccessStats()
        self.fault_injector = fault_injector
        self.metrics = metrics
        self.max_spans = max_spans
        self.pool = SharedBufferPool(self.stats, capacity, fault_injector)
        #: Accumulated private stats of every retired (released) context.
        self.retired = AccessStats()
        #: Contexts retired through :meth:`release` so far.
        self.recycled = 0
        #: Acquisitions that reused a retired worker scope.
        self.reused = 0
        self._lock = threading.Lock()
        self._contexts: list[ExecutionContext] = []
        self._free_scopes: list[WorkerScope] = []
        if metrics is not None:
            self._register_gauges(metrics)

    def _register_gauges(self, metrics) -> None:
        """Register the pool's lazy gauges (evaluated at snapshot time)."""
        metrics.gauge_fn("pool.capacity", lambda: self.capacity)
        metrics.gauge_fn("pool.resident_pages", lambda: self.pool.distinct_pages)
        metrics.gauge_fn("pool.hits", lambda: self.pool.hits)
        metrics.gauge_fn("pool.misses", lambda: self.pool.misses)
        metrics.gauge_fn("pool.hit_rate", lambda: self.pool.hit_rate)
        metrics.gauge_fn("pool.evictions", lambda: self.pool.evictions)
        metrics.gauge_fn("pool.occupancy", lambda: len(self.contexts))
        metrics.gauge_fn("pool.recycled", lambda: self.recycled)

    def acquire(self) -> ExecutionContext:
        """A worker context sharing this pool's buffer frames.

        Reuses a retired :class:`WorkerScope` when one is free (reset
        onto fresh private stats); otherwise creates a new scope.
        """
        worker_stats = AccessStats()
        with self._lock:
            scope = self._free_scopes.pop() if self._free_scopes else None
            if scope is not None:
                self.reused += 1
        if scope is None:
            scope = WorkerScope(self.pool, worker_stats)
        else:
            scope.stats = worker_stats
        context = ExecutionContext(
            policy="bounded",
            stats=worker_stats,
            fault_injector=self.fault_injector,
            shared_buffer=scope,
            metrics=self.metrics,
            max_spans=self.max_spans,
        )
        with self._lock:
            self._contexts.append(context)
        return context

    def release(self, context: ExecutionContext) -> None:
        """Retire ``context``: close it, fold its stats, recycle its scope.

        The context's private totals move into :attr:`retired` even when
        an exit hook raises, so the accounting invariant holds across
        failures.  Releasing a context the pool does not own (or twice)
        is a no-op beyond closing it.
        """
        try:
            context.close()
        finally:
            with self._lock:
                if context in self._contexts:
                    self._contexts.remove(context)
                    self.retired.merge(context.stats)
                    self.recycled += 1
                    scope = context._ambient
                    if isinstance(scope, WorkerScope):
                        self._free_scopes.append(scope)

    @contextmanager
    def context(self) -> Iterator[ExecutionContext]:
        """``with pool.context() as ctx`` — acquire, then retire on exit."""
        ctx = self.acquire()
        try:
            yield ctx
        finally:
            self.release(ctx)

    @property
    def contexts(self) -> list[ExecutionContext]:
        """The *live* contexts (acquired and not yet released)."""
        with self._lock:
            return list(self._contexts)

    def worker_totals(self) -> AccessStats:
        """Σ of per-worker private stats: retired plus every live context."""
        totals = AccessStats()
        with self._lock:
            totals.merge(self.retired)
            for context in self._contexts:
                totals.merge(context.stats)
        return totals

    def check_accounting(self, registry=None) -> dict:
        """Evaluate (and publish) the shared-vs-Σ-workers invariant.

        Returns a JSON-able dict with both sides and an ``ok`` flag;
        when a registry is attached (or passed), the same numbers are
        published as ``accounting.*`` gauges so the invariant is
        assertable *through the registry*.  Only meaningful at a
        quiescent point (no worker mid-charge).
        """
        shared = self.stats.snapshot()
        workers = self.worker_totals()
        result = {
            "shared_reads": shared.page_reads,
            "shared_writes": shared.page_writes,
            "worker_reads": workers.page_reads,
            "worker_writes": workers.page_writes,
            "ok": (
                shared.page_reads == workers.page_reads
                and shared.page_writes == workers.page_writes
            ),
        }
        registry = registry if registry is not None else self.metrics
        if registry is not None:
            registry.set_gauge("accounting.shared_reads", result["shared_reads"])
            registry.set_gauge("accounting.shared_writes", result["shared_writes"])
            registry.set_gauge("accounting.worker_reads", result["worker_reads"])
            registry.set_gauge("accounting.worker_writes", result["worker_writes"])
            registry.set_gauge("accounting.ok", 1.0 if result["ok"] else 0.0)
        return result

    def close(self) -> None:
        """Retire every live context (runs their exit hooks)."""
        for context in self.contexts:
            self.release(context)

    def describe(self) -> dict:
        """Headline pool counters, JSON-able (for benchmark reports)."""
        return {
            "capacity": self.capacity,
            "resident_pages": self.pool.distinct_pages,
            "hits": self.pool.hits,
            "misses": self.pool.misses,
            "hit_rate": round(self.pool.hit_rate, 4),
            "evictions": self.pool.evictions,
            "page_reads": self.stats.page_reads,
            "page_writes": self.stats.page_writes,
            "contexts": len(self.contexts),
            "recycled": self.recycled,
            "reused": self.reused,
        }


class ThreadLocalContexts:
    """Hands each calling thread one pooled context, lazily.

    The executor-offload serving path (DESIGN §12) runs CPU-bound plan
    evaluation on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
    whose threads the event loop reuses for arbitrary operations — so a
    context cannot be scoped to one operation the way
    :meth:`ContextPool.context` scopes it to one client thread's whole
    replay.  This helper pins a pool context to each *thread* instead:
    the first :meth:`get` on a thread acquires from the pool, later calls
    return the same context, and :meth:`release_all` retires every
    handed-out context at once.

    :meth:`release_all` is for the coordinator thread *after* the worker
    threads are done (e.g. after ``executor.shutdown(wait=True)``):
    releasing a context still in use by a live thread would tear its
    accounting mid-charge.
    """

    def __init__(self, pool: ContextPool) -> None:
        self.pool = pool
        self._local = threading.local()
        self._lock = threading.Lock()
        self._handed_out: list[ExecutionContext] = []
        #: Bumped by :meth:`release_all` so a surviving thread never
        #: resurrects a context that was already retired under it.
        self._generation = 0

    def get(self) -> ExecutionContext:
        """This thread's context, acquiring one on first use."""
        entry = getattr(self._local, "entry", None)
        if entry is not None:
            context, generation = entry
            if generation == self._generation:
                return context
        with self._lock:
            generation = self._generation
        context = self.pool.acquire()
        self._local.entry = (context, generation)
        with self._lock:
            if generation == self._generation:
                self._handed_out.append(context)
                return context
        # A release_all raced our acquisition: retire immediately.
        self._local.entry = None
        self.pool.release(context)
        return self.get()

    @property
    def live(self) -> int:
        """Contexts currently handed out and not yet released."""
        with self._lock:
            return len(self._handed_out)

    def release_all(self) -> None:
        """Retire every handed-out context back into the pool.

        Call only once the owning threads are quiescent (executor shut
        down); a thread that calls :meth:`get` afterwards acquires a
        fresh context.
        """
        with self._lock:
            contexts, self._handed_out = self._handed_out, []
            self._generation += 1
        for context in contexts:
            self.pool.release(context)
