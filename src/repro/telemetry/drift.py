"""Live predicted-vs-observed cost-model drift monitoring.

The paper's entire argument rests on an *analytical* cost model (Yao's
formula, Eqs. 16–34) predicting page accesses per (extension,
decomposition) choice; the advisor ranks physical designs by those
predictions.  Nothing so far checked the predictions against what the
running system actually does — the methodology gap Darmont & Gruenwald
close for clustering strategies by measuring simulated workloads.

:class:`DriftMonitor` closes it here: for every executed plan it records
the model's predicted page accesses next to the span's measured
``page_reads + page_writes`` and maintains, per
``(extension, decomposition, op-kind)`` key, running error ratios —
observed/predicted totals and the geometric mean of the per-operation
ratios (the standard scale-free aggregate for multiplicative error).  A
drift report close to 1.0 means the advisor's rankings can be trusted on
this workload; a sustained departure means the profile drifted or the
model term is wrong, and names which term.

:class:`CostModelPredictor` supplies the predictions: Eqs. 31–32 for
unsupported plans, Eqs. 33–34 (with the ASR's actual decomposition
translated to type indices) for supported ones, and the section 6
``search + aup`` maintenance terms for ``ins_i`` updates.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.asr.decomposition import Decomposition
from repro.costmodel.parameters import ApplicationProfile
from repro.costmodel.querycost import QueryCostModel
from repro.costmodel.updatecost import UpdateCostModel
from repro.query.queries import Query

__all__ = ["DriftMonitor", "CostModelPredictor", "type_decomposition"]

#: Key label for plans answered without any ASR.
UNSUPPORTED = "unsupported"


def type_decomposition(asr) -> Decomposition:
    """An ASR's decomposition expressed over type indices (``m == n``).

    ASR partitions are declared over *columns* of the extension (which
    may repeat types for non-full extensions); the cost model speaks
    type indices.  Shared with the cost-based planner.
    """
    borders = tuple(
        dict.fromkeys(
            asr.path.type_index_of_column(column)
            for column in asr.decomposition.borders
        )
    )
    return Decomposition(borders)


@dataclass
class DriftEntry:
    """Running error aggregate of one (extension, decomposition, op) key."""

    count: int = 0
    predicted_total: float = 0.0
    observed_total: float = 0.0
    #: Observations where both sides were positive (geomean-eligible).
    finite_count: int = 0
    log_ratio_sum: float = 0.0
    min_ratio: float = math.inf
    max_ratio: float = -math.inf
    #: Observations skipped from the geomean (a zero on either side).
    skipped: int = 0

    def record(self, predicted: float, observed: float) -> None:
        """Fold one (predicted, observed) page-access pair in."""
        self.count += 1
        self.predicted_total += predicted
        self.observed_total += observed
        if predicted > 0 and observed > 0:
            ratio = observed / predicted
            self.finite_count += 1
            self.log_ratio_sum += math.log(ratio)
            self.min_ratio = min(self.min_ratio, ratio)
            self.max_ratio = max(self.max_ratio, ratio)
        else:
            self.skipped += 1

    @property
    def ratio(self) -> float:
        """Observed/predicted page totals (inf when predicted is 0)."""
        if self.predicted_total > 0:
            return self.observed_total / self.predicted_total
        return math.inf if self.observed_total else 1.0

    @property
    def geo_mean_ratio(self) -> float:
        """Geometric mean of per-operation observed/predicted ratios."""
        if not self.finite_count:
            return 1.0
        return math.exp(self.log_ratio_sum / self.finite_count)

    def as_dict(self) -> dict:
        """JSON-able summary of this key's drift."""
        return {
            "count": self.count,
            "predicted_pages": round(self.predicted_total, 2),
            "observed_pages": round(self.observed_total, 2),
            "ratio": round(self.ratio, 4) if math.isfinite(self.ratio) else None,
            "geo_mean_ratio": round(self.geo_mean_ratio, 4),
            "min_ratio": round(self.min_ratio, 4) if self.finite_count else None,
            "max_ratio": round(self.max_ratio, 4) if self.finite_count else None,
            "skipped": self.skipped,
        }


class CostModelPredictor:
    """Predicts page accesses for executed operations from one profile.

    Built over the *measured* profile of the generated world (so the
    drift isolates model error, not input error).  Query predictions
    follow the Eq. 35 dispatch the executed plan actually took; update
    predictions price the ASR maintenance terms (``search + aup``)
    without the flat object-representation constant, because the
    simulator charges maintenance pages only.
    """

    def __init__(self, profile: ApplicationProfile) -> None:
        self.profile = profile
        self.query_model = QueryCostModel(profile)
        self.update_model = UpdateCostModel(profile)

    def predict_query(self, query: Query, asr) -> float | None:
        """Predicted pages for ``query`` as executed (``asr=None`` ⇒ Eqs. 31–32).

        Returns ``None`` for shapes the model does not price (value-range
        queries, ranges outside the profile) — callers skip those.
        """
        if query.kind not in ("fw", "bw"):
            return None
        try:
            if asr is None:
                return self.query_model.qnas(query.i, query.j, query.kind)
            return self.query_model.qsup(
                asr.extension, query.i, query.j, query.kind, type_decomposition(asr)
            )
        except Exception:
            return None

    def predict_update(self, level: int, asr) -> float | None:
        """Predicted maintenance pages of ``ins_level`` against ``asr``."""
        try:
            dec = type_decomposition(asr)
            return self.update_model.search(
                asr.extension, level, dec
            ) + self.update_model.aup(asr.extension, level, dec)
        except Exception:
            return None


class DriftMonitor:
    """Accumulates predicted-vs-observed page accesses per plan shape.

    Parameters
    ----------
    predictor:
        Optional :class:`CostModelPredictor`; required for the
        ``observe_query`` / ``observe_update`` convenience entry points
        (``record`` always works with caller-supplied predictions).
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry` into
        which every recorded pair bumps the ``drift.observations``
        counter; :meth:`publish` writes the ratio gauges.

    Thread-safe: planner threads of a serve run share one monitor.
    """

    def __init__(self, predictor: CostModelPredictor | None = None, registry=None):
        self.predictor = predictor
        self.registry = registry
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str, str], DriftEntry] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(
        self,
        extension: str,
        decomposition: str,
        op: str,
        predicted: float,
        observed: float,
    ) -> None:
        """Fold one executed operation into the drift aggregates."""
        key = (extension, decomposition, op)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = DriftEntry()
            entry.record(predicted, observed)
        if self.registry is not None:
            self.registry.inc(
                "drift.observations",
                extension=extension,
                decomposition=decomposition,
                op=op,
            )

    def observe_query(self, query: Query, asr, observed_pages: float) -> None:
        """Record an executed query plan (``asr=None`` for unsupported)."""
        if self.predictor is None:
            return
        predicted = self.predictor.predict_query(query, asr)
        if predicted is None:
            return
        if asr is None:
            extension, decomposition = UNSUPPORTED, "-"
        else:
            extension = asr.extension.value
            decomposition = str(type_decomposition(asr))
        self.record(extension, decomposition, query.kind, predicted, observed_pages)

    def observe_update(self, level: int, asrs, observed_pages: float) -> None:
        """Record one ``ins_level`` and its measured maintenance pages.

        The measured delta covers every maintained ASR at once, but one
        (extension, decomposition) key must not absorb another's pages:
        the delta is apportioned per ASR by its share of the summed
        per-ASR predictions (evenly when the model predicts zero for
        all), and one sample is recorded per ASR under its own key.
        With a single maintained ASR this is exactly the whole delta
        against the whole prediction.
        """
        if self.predictor is None or not asrs:
            return
        predictions = [self.predictor.predict_update(level, asr) for asr in asrs]
        if any(p is None for p in predictions):
            return
        total_predicted = sum(predictions)
        for asr, predicted in zip(asrs, predictions):
            if total_predicted > 0:
                share = observed_pages * (predicted / total_predicted)
            else:
                share = observed_pages / len(asrs)
            self.record(
                asr.extension.value,
                str(type_decomposition(asr)),
                f"ins_{level}",
                predicted,
                share,
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def report(self) -> dict:
        """The drift report: per-key aggregates plus the overall geomean."""
        with self._lock:
            items = sorted(self._entries.items())
            entries = [
                {
                    "extension": extension,
                    "decomposition": decomposition,
                    "op": op,
                    **entry.as_dict(),
                }
                for (extension, decomposition, op), entry in items
            ]
            finite = sum(e.finite_count for _, e in items)
            log_sum = sum(e.log_ratio_sum for _, e in items)
            overall = {
                "count": sum(e.count for _, e in items),
                "skipped": sum(e.skipped for _, e in items),
                "geo_mean_ratio": (
                    round(math.exp(log_sum / finite), 4) if finite else 1.0
                ),
            }
        overall["finite"] = math.isfinite(overall["geo_mean_ratio"])
        return {"by_key": entries, "overall": overall}

    def publish(self, registry=None) -> None:
        """Write the current ratios into a registry as gauges."""
        registry = registry if registry is not None else self.registry
        if registry is None:
            return
        report = self.report()
        for entry in report["by_key"]:
            labels = {
                "extension": entry["extension"],
                "decomposition": entry["decomposition"],
                "op": entry["op"],
            }
            if entry["ratio"] is not None:
                registry.set_gauge("drift.ratio", entry["ratio"], **labels)
            registry.set_gauge(
                "drift.geo_mean_ratio", entry["geo_mean_ratio"], **labels
            )
        registry.set_gauge(
            "drift.overall_geo_mean_ratio", report["overall"]["geo_mean_ratio"]
        )
