"""A lock-safe metrics registry: counters, gauges, log-scale histograms.

The execution layers built so far *measure* everything — spans carry
page-access deltas, the shared buffer pool counts hits and misses, the
ASR manager counts recovery attempts — but each measurement lives in its
own object and dies with it.  :class:`MetricsRegistry` is the one sink
they all publish into, so a serve run (or a trace) can be summarized,
exported, and compared across runs:

* **counters** — monotonically increasing event counts (operations
  executed, maintenance rows applied, quarantine transitions);
* **gauges** — last-written point-in-time values, or *callable* gauges
  evaluated lazily at snapshot time (pool occupancy, residency) so the
  hot path never pays for them;
* **histograms** — value distributions over **fixed log-scale buckets**
  (base 2): bucket ``i`` covers ``(2^(i-1), 2^i]``, stored sparsely.
  Observing costs one ``log2`` and a dict bump — no wall-clock reads,
  no allocation beyond the first hit of a bucket.

All families support labels (keyword arguments), and every mutating
entry point takes one internal lock, so concurrent workers of a
:class:`~repro.concurrency.ContextPool` can publish without tearing a
histogram mid-update.

Exports: :meth:`MetricsRegistry.snapshot` is the JSON-able form embedded
in ``BENCH_serve.json`` and read back by ``repro stats``;
:meth:`MetricsRegistry.render_prometheus` is the text exposition format
scrape endpoints speak.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "MetricsRegistry",
    "HistogramState",
    "estimate_quantile",
    "QUANTILE_POINTS",
]

#: Log-scale histogram bucket bounds are powers of this base.
BUCKET_BASE = 2.0

#: Bucket indices are clamped to this range: bounds span 2^-20 (~1e-6,
#: fine enough for microsecond latencies in ms) … 2^40 (~1e12 pages).
MIN_BUCKET_INDEX = -20
MAX_BUCKET_INDEX = 40

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric name (dots and dashes become ``_``)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value) -> str:
    """A label value escaped per the Prometheus text exposition spec.

    Inside a quoted label value, backslash, double-quote, and line feed
    must appear as ``\\\\``, ``\\"``, and ``\\n`` — otherwise a value
    like ``dec("a")`` terminates the quote early and the whole sample
    line becomes unparseable.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def bucket_index(value: float) -> int | None:
    """The fixed log-scale bucket holding ``value``.

    Bucket ``i`` has upper bound ``BUCKET_BASE ** i``; values at or
    below zero fall into the dedicated zero bucket (``None``).
    """
    if value <= 0.0:
        return None
    index = math.ceil(math.log(value, BUCKET_BASE))
    # A value landing exactly on a bound belongs to that bound's bucket.
    if BUCKET_BASE ** (index - 1) >= value:
        index -= 1
    return max(MIN_BUCKET_INDEX, min(MAX_BUCKET_INDEX, index))


@dataclass
class HistogramState:
    """One labeled histogram: sparse log-scale buckets plus summaries."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    #: ``bucket index -> observations`` (``None`` is the <= 0 bucket).
    buckets: dict[int | None, int] = field(default_factory=dict)
    #: Newest exemplar: ``{"trace_id", "value", "le"}`` (OpenMetrics
    #: style — one per histogram, attached to its bucket on exposition).
    exemplar: dict | None = None

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation (caller holds the registry lock)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if exemplar is not None:
            le = 0.0 if index is None else BUCKET_BASE**index
            self.exemplar = {"trace_id": exemplar, "value": value, "le": le}

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-able form; bucket bounds are materialized as ``le``."""
        buckets = []
        for index in sorted(
            self.buckets, key=lambda i: -math.inf if i is None else i
        ):
            le = 0.0 if index is None else BUCKET_BASE**index
            buckets.append({"le": le, "count": self.buckets[index]})
        result = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": buckets,
        }
        if self.exemplar is not None:
            result["exemplar"] = dict(self.exemplar)
        return result


#: The quantile points derived on exposition (p50 / p95 / p99).
QUANTILE_POINTS = (0.5, 0.95, 0.99)


def estimate_quantile(hist: dict, q: float) -> float:
    """Estimate the ``q``-quantile of a log-scale histogram.

    ``hist`` is the :meth:`HistogramState.as_dict` form (``count``,
    ``min``, ``max``, cumulative-able ``buckets``).  The target rank
    ``q * count`` is located in its bucket, then interpolated
    **geometrically** (log-linear — the natural assumption inside a
    log-scale bucket ``(le/BASE, le]``), and finally clamped to the
    recorded ``[min, max]`` — so a histogram whose observations all
    share one value reports that value exactly at every quantile.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    count = hist.get("count", 0)
    if not count:
        return 0.0
    lo_clamp = hist.get("min", 0.0)
    hi_clamp = hist.get("max", 0.0)
    target = q * count
    cumulative = 0.0
    for bucket in hist.get("buckets", ()):
        upper = bucket["le"]
        in_bucket = bucket["count"]
        if cumulative + in_bucket >= target and in_bucket:
            if upper <= 0.0:
                # The <= 0 bucket has no geometric span; clamp only.
                return min(max(0.0, lo_clamp), hi_clamp)
            fraction = (target - cumulative) / in_bucket
            lower = upper / BUCKET_BASE
            value = lower * (upper / lower) ** max(0.0, fraction)
            return min(max(value, lo_clamp), hi_clamp)
        cumulative += in_bucket
    return hi_clamp


class MetricsRegistry:
    """The shared sink every layer publishes metrics into.

    One instance per serve run (or per long-lived server).  All methods
    are safe to call from any thread; callable gauges registered with
    :meth:`gauge_fn` are evaluated only inside :meth:`snapshot` /
    :meth:`render_prometheus`, keeping them off the hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[_LabelKey, float]] = {}
        self._gauges: dict[str, dict[_LabelKey, float]] = {}
        self._gauge_fns: dict[str, dict[_LabelKey, Callable[[], float]]] = {}
        self._histograms: dict[str, dict[_LabelKey, HistogramState]] = {}

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: str) -> None:
        """Add ``value`` to the counter ``name`` (per label set)."""
        key = _label_key(labels)
        with self._lock:
            family = self._counters.setdefault(name, {})
            family[key] = family.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set the gauge ``name`` to ``value`` (per label set)."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = value

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: str) -> None:
        """Register a callable gauge, read lazily at snapshot time."""
        key = _label_key(labels)
        with self._lock:
            self._gauge_fns.setdefault(name, {})[key] = fn

    def observe(
        self, name: str, value: float, exemplar: str | None = None, **labels: str
    ) -> None:
        """Record ``value`` into the histogram ``name`` (per label set).

        ``exemplar`` (keyword-only in spirit — reserved before the label
        kwargs) attaches a trace ID exemplar to the observation, exposed
        on the matching ``_bucket`` line in OpenMetrics style.
        """
        key = _label_key(labels)
        with self._lock:
            family = self._histograms.setdefault(name, {})
            state = family.get(key)
            if state is None:
                state = family[key] = HistogramState()
            state.observe(value, exemplar=exemplar)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> float:
        """The current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, {}).get(_label_key(labels), 0)

    def gauge_value(self, name: str, **labels: str) -> float | None:
        """The current value of one gauge (callable gauges evaluated)."""
        key = _label_key(labels)
        with self._lock:
            fn = self._gauge_fns.get(name, {}).get(key)
            if fn is None:
                return self._gauges.get(name, {}).get(key)
        return float(fn())

    def histogram(self, name: str, **labels: str) -> HistogramState | None:
        """The histogram state of one label set, if observed."""
        with self._lock:
            return self._histograms.get(name, {}).get(_label_key(labels))

    def snapshot(self) -> dict:
        """The whole registry as a JSON-able dict.

        Callable gauges are evaluated here (outside the registry lock,
        so a gauge reading a lock-protected pool cannot deadlock a
        concurrent publisher).
        """
        with self._lock:
            counters = {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(family.items())
                ]
                for name, family in sorted(self._counters.items())
            }
            gauges = {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(family.items())
                ]
                for name, family in sorted(self._gauges.items())
            }
            histograms = {
                name: [
                    {"labels": dict(key), **state.as_dict()}
                    for key, state in sorted(family.items())
                ]
                for name, family in sorted(self._histograms.items())
            }
            gauge_fns = [
                (name, key, fn)
                for name, family in sorted(self._gauge_fns.items())
                for key, fn in sorted(family.items())
            ]
        for name, key, fn in gauge_fns:
            gauges.setdefault(name, []).append(
                {"labels": dict(key), "value": float(fn())}
            )
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    @classmethod
    def from_snapshot(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output.

        Callable gauges come back as plain gauges (their last snapshot
        value); histograms keep their buckets, so the Prometheus
        exposition of a restored registry matches the original.
        """
        registry = cls()
        for name, entries in data.get("counters", {}).items():
            for entry in entries:
                registry.inc(name, entry["value"], **entry.get("labels", {}))
        for name, entries in data.get("gauges", {}).items():
            for entry in entries:
                registry.set_gauge(name, entry["value"], **entry.get("labels", {}))
        for name, entries in data.get("histograms", {}).items():
            family = registry._histograms.setdefault(name, {})
            for entry in entries:
                state = HistogramState(
                    count=entry["count"],
                    total=entry["sum"],
                    min=entry["min"] if entry["count"] else math.inf,
                    max=entry["max"] if entry["count"] else -math.inf,
                )
                for bucket in entry.get("buckets", ()):
                    le = bucket["le"]
                    index = None if le <= 0 else round(math.log(le, BUCKET_BASE))
                    state.buckets[index] = bucket["count"]
                if entry.get("exemplar") is not None:
                    state.exemplar = dict(entry["exemplar"])
                family[_label_key(entry.get("labels", {}))] = state
        return registry

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------

    def render_prometheus(self, prefix: str = "repro") -> str:
        """The registry in the Prometheus text exposition format.

        Counter families render as ``<prefix>_<name>_total``, gauges as
        ``<prefix>_<name>``, histograms as the conventional
        ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le``
        bounds (the fixed powers of :data:`BUCKET_BASE`).
        """
        snap = self.snapshot()
        lines: list[str] = []

        def fmt_labels(labels: dict, extra: dict | None = None) -> str:
            merged = dict(labels)
            if extra:
                merged.update(extra)
            if not merged:
                return ""
            inner = ",".join(
                f'{_sanitize(k)}="{_escape_label_value(v)}"'
                for k, v in sorted(merged.items())
            )
            return "{" + inner + "}"

        for name, entries in snap["counters"].items():
            metric = f"{prefix}_{_sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            for entry in entries:
                lines.append(f"{metric}{fmt_labels(entry['labels'])} {entry['value']}")
        for name, entries in snap["gauges"].items():
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            for entry in entries:
                lines.append(f"{metric}{fmt_labels(entry['labels'])} {entry['value']}")
        for name, entries in snap["histograms"].items():
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} histogram")
            for entry in entries:
                exemplar = entry.get("exemplar")
                cumulative = 0
                for bucket in entry["buckets"]:
                    cumulative += bucket["count"]
                    line = (
                        f"{metric}_bucket"
                        f"{fmt_labels(entry['labels'], {'le': bucket['le']})}"
                        f" {cumulative}"
                    )
                    if exemplar is not None and exemplar.get("le") == bucket["le"]:
                        # OpenMetrics exemplar: `# {trace_id="…"} value`.
                        line += (
                            " # {trace_id="
                            f'"{_escape_label_value(exemplar["trace_id"])}"'
                            f"}} {exemplar['value']}"
                        )
                    lines.append(line)
                lines.append(
                    f"{metric}_bucket{fmt_labels(entry['labels'], {'le': '+Inf'})}"
                    f" {entry['count']}"
                )
                lines.append(f"{metric}_sum{fmt_labels(entry['labels'])} {entry['sum']}")
                lines.append(
                    f"{metric}_count{fmt_labels(entry['labels'])} {entry['count']}"
                )
            lines.append(f"# TYPE {metric}_quantile gauge")
            for entry in entries:
                for q in QUANTILE_POINTS:
                    lines.append(
                        f"{metric}_quantile"
                        f"{fmt_labels(entry['labels'], {'quantile': q})}"
                        f" {estimate_quantile(entry, q)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges) + len(self._gauge_fns)}, "
                f"histograms={len(self._histograms)})"
            )
