"""End-to-end request tracing with per-phase latency decomposition.

The serve stack's aggregate histograms (``op.latency_ms``,
``query.latency_ms``) say *that* a request was slow, never *why*: the
time could have gone to the admission queue, a starved ``RWLock``,
planning, ASR traversal, or the simulated device, and the paper's §6
cost-model argument is precisely about attributing access cost to the
individual access path taken.  This module gives every request a causal
trace:

* :class:`Trace` — one request's span tree plus a **phase rollup**: the
  wall time attributed to ``queue``, ``lock.read`` / ``lock.write``
  wait, ``plan`` vs ``cache-hit``, ``execute``, ``device``, and
  ``serialize``.  Phases are recorded over *disjoint* segments of the
  request, so their sum approaches the end-to-end latency from below;
  the remainder is reported as ``unattributed_ms``.
* :class:`Tracer` — issues trace IDs at the front door, decides
  retention.  **Head sampling** keeps a seeded-RNG fraction of traces
  (``--trace-sample-rate``; deterministic per the chaos-layer idiom —
  no unseeded randomness).  **Tail capture** always retains traces that
  exceeded ``--slow-trace-ms`` or ended in a ``shed`` / ``degraded`` /
  ``breaker-open`` / ``error`` outcome, however the head coin landed.
* :class:`TraceStore` — a lock-protected ring buffer of retained
  traces, served by the daemon's ``GET /trace/recent`` and
  ``GET /trace/<id>`` endpoints.

**Cost when off.**  With ``sample_rate == 0`` and no ``slow_trace_ms``
the tracer is disabled: :meth:`Tracer.begin` returns ``None``, every
hot-path hook is guarded by an ``is None`` check (or, for the deep
hooks that cannot take a parameter, a thread-local read on an already
slow path), and no clock is read on behalf of tracing.

**Propagation.**  Traces travel *explicitly* — through the admission
queue tuple, the drive functions, and ``ExecutorWorkers.execute`` —
because ``loop.run_in_executor`` does not copy ``contextvars`` context.
For hooks too deep to thread a parameter into (the ``RWLock`` wait
paths, the evaluator's ASR lookups), :func:`activate` pins the trace to
the executing thread and :func:`current_trace` reads it back; a single
request never runs on two threads at once, so per-trace state needs no
lock of its own.
"""

from __future__ import annotations

import itertools
import json
import logging
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "PHASES",
    "TAIL_OUTCOMES",
    "Trace",
    "TraceStore",
    "Tracer",
    "activate",
    "current_trace",
    "maybe_span",
]

#: Every phase a trace may attribute time to, in pipeline order.
PHASES = (
    "queue",
    "lock.read",
    "lock.write",
    "cache-hit",
    "plan",
    "execute",
    "device",
    "serialize",
)

#: Outcomes tail capture always retains (besides slow traces).
TAIL_OUTCOMES = frozenset({"shed", "degraded", "breaker-open", "error"})

#: Structured slow-query log lines go here (one JSON object per line).
slow_query_logger = logging.getLogger("repro.slowquery")

_ACTIVE = threading.local()


def current_trace() -> "Trace | None":
    """The trace pinned to the calling thread, if any."""
    return getattr(_ACTIVE, "trace", None)


@contextmanager
def activate(trace: "Trace | None") -> Iterator[None]:
    """Pin ``trace`` to the calling thread for the duration of the block.

    ``None`` is accepted and costs one attribute write each way, so call
    sites need no guard of their own.
    """
    previous = getattr(_ACTIVE, "trace", None)
    _ACTIVE.trace = trace
    try:
        yield
    finally:
        _ACTIVE.trace = previous


class Trace:
    """One request's span tree, phase rollup, and outcome.

    All mutation happens from whichever single thread is currently
    executing the request (the serving pipeline hands a request between
    threads but never runs it on two at once), so no lock is taken.
    """

    __slots__ = (
        "trace_id",
        "name",
        "kind",
        "sampled",
        "outcome",
        "started_unix",
        "started",
        "duration_ms",
        "spans",
        "phases",
        "annotations",
        "_stack",
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        kind: str,
        sampled: bool,
        started: float | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.name = name
        self.kind = kind
        self.sampled = sampled
        self.outcome = "ok"
        self.started_unix = time.time()
        #: perf_counter origin; backdated when the request was admitted
        #: before the trace object existed (threaded-core queue wait).
        self.started = time.perf_counter() if started is None else started
        self.duration_ms: float | None = None
        #: ``(name, phase, start_ms, duration_ms, parent_index)`` rows.
        self.spans: list[dict] = []
        self.phases: dict[str, float] = {}
        self.annotations: dict = {}
        self._stack: list[int] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def add_phase(self, phase: str, duration_ms: float, name: str | None = None) -> None:
        """Attribute ``duration_ms`` to ``phase`` as a leaf span.

        The span is backdated so its end coincides with *now*; used by
        hooks that only learn the duration after the fact (lock waits,
        queue waits).
        """
        now_ms = (time.perf_counter() - self.started) * 1e3
        parent = self._stack[-1] if self._stack else None
        self.spans.append(
            {
                "name": name or phase,
                "phase": phase,
                "start_ms": round(max(0.0, now_ms - duration_ms), 4),
                "duration_ms": round(duration_ms, 4),
                "parent": parent,
            }
        )
        self.phases[phase] = self.phases.get(phase, 0.0) + duration_ms

    @contextmanager
    def span(self, name: str, phase: str | None = None) -> Iterator[None]:
        """Record a timed span; attribute it to ``phase`` when given.

        Spans nest: a span opened inside another becomes its child in
        the exported tree.  Only spans with a ``phase`` contribute to
        the rollup, so a nested annotation span (``asr.lookup`` inside
        ``execute``) never double-counts.
        """
        start = time.perf_counter()
        index = len(self.spans)
        parent = self._stack[-1] if self._stack else None
        self.spans.append(
            {
                "name": name,
                "phase": phase,
                "start_ms": round((start - self.started) * 1e3, 4),
                "duration_ms": None,
                "parent": parent,
            }
        )
        self._stack.append(index)
        try:
            yield
        finally:
            self._stack.pop()
            duration_ms = (time.perf_counter() - start) * 1e3
            self.spans[index]["duration_ms"] = round(duration_ms, 4)
            if phase is not None:
                self.phases[phase] = self.phases.get(phase, 0.0) + duration_ms

    def annotate(self, **fields) -> None:
        """Attach request metadata (query text, strategy, pages, …)."""
        self.annotations.update(fields)

    def mark(self, outcome: str) -> None:
        """Record a non-``ok`` outcome; ``ok`` never overwrites one."""
        if outcome != "ok":
            self.outcome = outcome

    def finish(self, outcome: str | None = None) -> float:
        """Close the trace; returns the end-to-end duration in ms."""
        if outcome is not None:
            self.mark(outcome)
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self.started) * 1e3
        return self.duration_ms

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    @property
    def phase_total_ms(self) -> float:
        """Σ of the phase rollup — the attributed share of the latency."""
        return sum(self.phases.values())

    def summary(self) -> dict:
        """The ``GET /trace/recent`` row: rollup without the span tree."""
        duration = self.duration_ms if self.duration_ms is not None else 0.0
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "kind": self.kind,
            "outcome": self.outcome,
            "sampled": self.sampled,
            "started_unix": self.started_unix,
            "duration_ms": round(duration, 4),
            "phases": {k: round(v, 4) for k, v in self.phases.items()},
            "unattributed_ms": round(max(0.0, duration - self.phase_total_ms), 4),
        }

    def as_dict(self) -> dict:
        """The full ``GET /trace/<id>`` payload, span tree included."""
        payload = self.summary()
        payload["spans"] = [dict(span) for span in self.spans]
        payload["annotations"] = dict(self.annotations)
        return payload


@contextmanager
def maybe_span(
    trace: "Trace | None", name: str, phase: str | None = None
) -> Iterator[None]:
    """``trace.span(...)`` that degrades to a no-op when tracing is off."""
    if trace is None:
        yield
    else:
        with trace.span(name, phase):
            yield


class TraceStore:
    """A lock-protected ring buffer of retained traces.

    The newest ``capacity`` retained traces win; eviction also drops the
    ``trace_id`` index entry, so lookups never resurrect an evicted
    trace.  All methods are safe from any thread.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("trace store capacity must be at least one")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[Trace] = deque()
        self._by_id: dict[str, Trace] = {}

    def put(self, trace: Trace) -> None:
        with self._lock:
            if len(self._ring) >= self.capacity:
                evicted = self._ring.popleft()
                self._by_id.pop(evicted.trace_id, None)
            self._ring.append(trace)
            self._by_id[trace.trace_id] = trace

    def get(self, trace_id: str) -> Trace | None:
        with self._lock:
            return self._by_id.get(trace_id)

    def recent(self, limit: int = 50) -> list[Trace]:
        """The newest retained traces, newest first."""
        with self._lock:
            traces = list(self._ring)
        traces.reverse()
        return traces[: max(0, limit)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class Tracer:
    """Issues trace IDs at the front door and decides retention.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry` for
        the ``tracing.sampled`` / ``tracing.slow_captured`` /
        ``tracing.dropped`` counters.
    sample_rate:
        Head-sampling probability in ``[0, 1]``; drawn from a seeded
        :class:`random.Random` so runs replay deterministically.
    slow_trace_ms:
        Tail-capture threshold; ``None`` disables the slow criterion
        (outcome-based tail capture still applies while enabled).
    capacity:
        Ring size of the backing :class:`TraceStore`.
    seed:
        Seed for the head-sampling RNG.
    """

    def __init__(
        self,
        registry=None,
        sample_rate: float = 0.0,
        slow_trace_ms: float | None = None,
        capacity: int = 512,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("trace sample rate must be within [0, 1]")
        self.registry = registry
        self.sample_rate = sample_rate
        self.slow_trace_ms = slow_trace_ms
        self.enabled = sample_rate > 0.0 or slow_trace_ms is not None
        self.store = TraceStore(capacity)
        self._rng = random.Random(seed ^ 0x7ACE)
        self._rng_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._id_prefix = f"t{seed & 0xFFFF:04x}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def begin(
        self, name: str, kind: str, started: float | None = None
    ) -> Trace | None:
        """Open a trace for one request; ``None`` when tracing is off.

        Every request is traced while the tracer is enabled — head
        sampling decides *guaranteed* retention up front, tail capture
        decides the rest at :meth:`finish` — so a shed or degraded
        request is always retrievable even at a low sample rate.
        ``started`` backdates the origin to the admission instant when
        the caller measured queue wait before the trace existed.
        """
        if not self.enabled:
            return None
        if self.sample_rate >= 1.0:
            sampled = True
        elif self.sample_rate <= 0.0:
            sampled = False
        else:
            with self._rng_lock:
                sampled = self._rng.random() < self.sample_rate
        if sampled and self.registry is not None:
            self.registry.inc("tracing.sampled")
        trace_id = f"{self._id_prefix}-{next(self._ids):08x}"
        return Trace(trace_id, name, kind, sampled, started=started)

    def finish(self, trace: Trace | None, outcome: str | None = None) -> None:
        """Close ``trace`` and retain or drop it.

        Retained: head-sampled traces; traces slower than
        ``slow_trace_ms``; traces with a :data:`TAIL_OUTCOMES` outcome.
        Everything else counts into ``tracing.dropped``.
        """
        if trace is None:
            return
        duration_ms = trace.finish(outcome)
        slow = self.slow_trace_ms is not None and duration_ms >= self.slow_trace_ms
        tail = slow or trace.outcome in TAIL_OUTCOMES
        if trace.sampled or tail:
            self.store.put(trace)
            if not trace.sampled and self.registry is not None:
                self.registry.inc("tracing.slow_captured")
        elif self.registry is not None:
            self.registry.inc("tracing.dropped")
        if slow and trace.annotations.get("query") is not None:
            self._log_slow_query(trace)

    def _log_slow_query(self, trace: Trace) -> None:
        """Emit the structured slow-query JSON log line."""
        notes = trace.annotations
        slow_query_logger.info(
            json.dumps(
                {
                    "event": "slow_query",
                    "trace_id": trace.trace_id,
                    "query": notes.get("query"),
                    "strategy": notes.get("strategy"),
                    "cached": notes.get("cached"),
                    "epoch": notes.get("epoch"),
                    "pages": notes.get("pages"),
                    "outcome": trace.outcome,
                    "latency_ms": round(trace.duration_ms or 0.0, 4),
                    "phases": {k: round(v, 4) for k, v in trace.phases.items()},
                },
                sort_keys=True,
            )
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Headline tracer state for reports and ``/trace/recent``."""
        return {
            "enabled": self.enabled,
            "sample_rate": self.sample_rate,
            "slow_trace_ms": self.slow_trace_ms,
            "capacity": self.store.capacity,
            "retained": len(self.store),
        }
