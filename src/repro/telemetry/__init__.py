"""Telemetry: the metrics registry and the cost-model drift monitor.

The observability layer over everything the earlier PRs measure.  Three
pieces:

* :mod:`repro.telemetry.registry` — :class:`MetricsRegistry`, the
  lock-safe sink (counters, gauges, log-scale histograms) every layer
  publishes into, with a JSON snapshot and a Prometheus text exposition;
* :mod:`repro.telemetry.drift` — :class:`DriftMonitor` +
  :class:`CostModelPredictor`, continuously comparing the analytical
  cost model's predicted page accesses (Eqs. 31–36) against the spans'
  measured ones, per (extension, decomposition, op-kind);
* :mod:`repro.telemetry.render` — the text tables behind ``repro
  stats``;
* :mod:`repro.telemetry.tracing` — :class:`Tracer` / :class:`Trace` /
  :class:`TraceStore`, per-request span trees with phase-attributed
  latency, head sampling plus tail-based capture (DESIGN §14).

See ``docs/observability.md`` for the metric name catalogue.
"""

from repro.telemetry.registry import (
    HistogramState,
    MetricsRegistry,
    QUANTILE_POINTS,
    estimate_quantile,
)
from repro.telemetry.tracing import (
    Trace,
    TraceStore,
    Tracer,
    activate,
    current_trace,
    maybe_span,
)

# drift (and render, which uses it) reaches through the ASR layer, which
# in turn needs repro.concurrency — and concurrency needs
# repro.telemetry.tracing for lock-wait attribution.  Loading drift
# lazily (PEP 562) keeps this package importable from concurrency
# without a cycle: ``from repro.telemetry import DriftMonitor`` still
# works, it just resolves on first attribute access.
_LAZY = {
    "CostModelPredictor": "repro.telemetry.drift",
    "DriftMonitor": "repro.telemetry.drift",
    "type_decomposition": "repro.telemetry.drift",
    "format_drift": "repro.telemetry.render",
    "format_metrics": "repro.telemetry.render",
    "format_stats": "repro.telemetry.render",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value

__all__ = [
    "MetricsRegistry",
    "HistogramState",
    "estimate_quantile",
    "QUANTILE_POINTS",
    "Tracer",
    "Trace",
    "TraceStore",
    "activate",
    "current_trace",
    "maybe_span",
    "DriftMonitor",
    "CostModelPredictor",
    "type_decomposition",
    "format_metrics",
    "format_drift",
    "format_stats",
]
