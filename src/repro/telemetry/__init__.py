"""Telemetry: the metrics registry and the cost-model drift monitor.

The observability layer over everything the earlier PRs measure.  Three
pieces:

* :mod:`repro.telemetry.registry` — :class:`MetricsRegistry`, the
  lock-safe sink (counters, gauges, log-scale histograms) every layer
  publishes into, with a JSON snapshot and a Prometheus text exposition;
* :mod:`repro.telemetry.drift` — :class:`DriftMonitor` +
  :class:`CostModelPredictor`, continuously comparing the analytical
  cost model's predicted page accesses (Eqs. 31–36) against the spans'
  measured ones, per (extension, decomposition, op-kind);
* :mod:`repro.telemetry.render` — the text tables behind ``repro
  stats``.

See ``docs/observability.md`` for the metric name catalogue.
"""

from repro.telemetry.drift import CostModelPredictor, DriftMonitor, type_decomposition
from repro.telemetry.registry import HistogramState, MetricsRegistry
from repro.telemetry.render import format_drift, format_metrics, format_stats

__all__ = [
    "MetricsRegistry",
    "HistogramState",
    "DriftMonitor",
    "CostModelPredictor",
    "type_decomposition",
    "format_metrics",
    "format_drift",
    "format_stats",
]
