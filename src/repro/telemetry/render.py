"""Human-readable rendering of metrics snapshots and drift reports.

The backend of ``repro stats``: takes the JSON-able structures a serve
run embeds in ``BENCH_serve.json`` (a
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` and a
:meth:`~repro.telemetry.drift.DriftMonitor.report`) and formats them as
aligned text tables.  Pure functions over plain dicts, so the CLI can
render a snapshot from any run without reconstructing live objects.
"""

from __future__ import annotations

from repro.telemetry.registry import estimate_quantile

__all__ = ["format_metrics", "format_drift", "format_stats"]


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _fmt_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _table(headers: list[str], rows: list[list[str]], title: str) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_metrics(snapshot: dict) -> str:
    """Counters, gauges, and histogram summaries as text tables."""
    sections: list[str] = []
    counters = [
        [name, _fmt_labels(entry.get("labels", {})), _fmt_value(entry["value"])]
        for name, entries in snapshot.get("counters", {}).items()
        for entry in entries
    ]
    if counters:
        sections.append(_table(["counter", "labels", "value"], counters, "counters:"))
    gauges = [
        [name, _fmt_labels(entry.get("labels", {})), _fmt_value(entry["value"])]
        for name, entries in snapshot.get("gauges", {}).items()
        for entry in entries
    ]
    if gauges:
        sections.append(_table(["gauge", "labels", "value"], gauges, "gauges:"))
    histograms = [
        [
            name,
            _fmt_labels(entry.get("labels", {})),
            _fmt_value(entry["count"]),
            _fmt_value(round(entry.get("mean", 0.0), 3)),
            _fmt_value(round(estimate_quantile(entry, 0.5), 3)),
            _fmt_value(round(estimate_quantile(entry, 0.95), 3)),
            _fmt_value(round(estimate_quantile(entry, 0.99), 3)),
            _fmt_value(entry["min"]),
            _fmt_value(entry["max"]),
        ]
        for name, entries in snapshot.get("histograms", {}).items()
        for entry in entries
    ]
    if histograms:
        sections.append(
            _table(
                [
                    "histogram",
                    "labels",
                    "count",
                    "mean",
                    "p50",
                    "p95",
                    "p99",
                    "min",
                    "max",
                ],
                histograms,
                "histograms (log-scale buckets, interpolated quantiles):",
            )
        )
    return "\n\n".join(sections) if sections else "no metrics recorded"


def format_drift(report: dict) -> str:
    """The drift report as a table plus the overall geomean line."""
    rows = [
        [
            entry["extension"],
            entry["decomposition"],
            entry["op"],
            _fmt_value(entry["count"]),
            _fmt_value(entry["predicted_pages"]),
            _fmt_value(entry["observed_pages"]),
            _fmt_value(entry["ratio"]),
            _fmt_value(entry["geo_mean_ratio"]),
        ]
        for entry in report.get("by_key", ())
    ]
    if not rows:
        return "no drift observations recorded"
    table = _table(
        [
            "extension",
            "decomposition",
            "op",
            "n",
            "predicted",
            "observed",
            "ratio",
            "geomean",
        ],
        rows,
        "cost-model drift (observed / predicted page accesses):",
    )
    overall = report.get("overall", {})
    summary = (
        f"overall geometric-mean drift ratio: "
        f"{_fmt_value(overall.get('geo_mean_ratio'))} over "
        f"{_fmt_value(overall.get('count'))} operation(s)"
        f" ({_fmt_value(overall.get('skipped'))} skipped)"
    )
    return table + "\n" + summary


def format_stats(metrics: dict | None, drift: dict | None, accounting: dict | None) -> str:
    """The full ``repro stats`` page: accounting, drift, then metrics."""
    sections: list[str] = []
    if accounting:
        ok = "consistent" if accounting.get("ok") else "INCONSISTENT"
        sections.append(
            "accounting (shared totals == Σ per-worker totals): "
            f"{ok} "
            f"[shared {accounting.get('shared_reads', '?')}r/"
            f"{accounting.get('shared_writes', '?')}w vs workers "
            f"{accounting.get('worker_reads', '?')}r/"
            f"{accounting.get('worker_writes', '?')}w]"
        )
    if drift:
        sections.append(format_drift(drift))
    if metrics:
        sections.append(format_metrics(metrics))
    return "\n\n".join(sections) if sections else "no telemetry found"
